//! Cross-crate integration: the DABench-LLM framework driving every
//! platform model through the same `Platform` / `Scalable` interfaces.

use dabench::core::{tier1, tier2, ParallelStrategy, Platform, Scalable};
use dabench::gpu::GpuCluster;
use dabench::ipu::Ipu;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;

fn probe() -> TrainingWorkload {
    TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 32, 1024, Precision::Fp16)
}

fn all_platforms() -> Vec<Box<dyn Platform>> {
    vec![
        Box::new(Wse::default()),
        Box::new(Rdu::with_mode(CompilationMode::O0)),
        Box::new(Rdu::with_mode(CompilationMode::O1)),
        Box::new(Rdu::with_mode(CompilationMode::O3)),
        Box::new(Ipu::default()),
        Box::new(GpuCluster::default()),
    ]
}

#[test]
fn tier1_runs_on_every_platform() {
    let w = probe();
    for p in all_platforms() {
        let r = tier1::run(p.as_ref(), &w).unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
        assert!(r.achieved_tflops > 0.0, "{}", p.name());
        assert!(r.throughput_tokens_per_s > 0.0, "{}", p.name());
        assert!(r.step_time_s > 0.0, "{}", p.name());
        assert!(
            r.compute_efficiency > 0.0 && r.compute_efficiency < 1.0,
            "{}: {}",
            p.name(),
            r.compute_efficiency
        );
        for (kind, ratio) in &r.allocation {
            assert!((0.0..=1.0).contains(ratio), "{}/{kind}: {ratio}", p.name());
        }
        if let Some(li) = r.load_imbalance {
            assert!((0.0..=1.0 + 1e-9).contains(&li), "{}: {li}", p.name());
        }
    }
}

#[test]
fn tier1_report_debug_is_complete() {
    let r = tier1::run(&Wse::default(), &probe()).unwrap();
    let dump = format!("{r:?}");
    assert!(dump.contains("allocation"));
    assert!(dump.contains("throughput_tokens_per_s"));
}

#[test]
fn tier2_batch_sweeps_are_consistent() {
    let w = probe();
    for p in all_platforms() {
        let pts = tier2::batch_sweep(p.as_ref(), &w, &[8, 16, 32]);
        assert_eq!(pts.len(), 3);
        let ok: Vec<f64> = pts
            .iter()
            .filter_map(|x| x.throughput_tokens_per_s)
            .collect();
        assert!(!ok.is_empty(), "{}", p.name());
        // Throughput never decreases over this small range on any platform.
        assert!(
            ok.windows(2).all(|v| v[1] >= v[0] * 0.99),
            "{}: {ok:?}",
            p.name()
        );
    }
}

#[test]
fn each_platform_supports_exactly_its_strategy() {
    let w = probe();
    let wse = Wse::default();
    let rdu = Rdu::with_mode(CompilationMode::O3);
    let ipu = Ipu::default();

    assert!(wse
        .scale(&w, ParallelStrategy::DataParallel { replicas: 2 })
        .is_ok());
    assert!(wse
        .scale(&w, ParallelStrategy::TensorParallel { degree: 2 })
        .is_err());

    assert!(rdu
        .scale(&w, ParallelStrategy::TensorParallel { degree: 2 })
        .is_ok());
    assert!(rdu
        .scale(&w, ParallelStrategy::DataParallel { replicas: 2 })
        .is_err());

    assert!(ipu
        .scale(&w, ParallelStrategy::PipelineParallel { devices: 4 })
        .is_ok());
    assert!(ipu.scale(&w, ParallelStrategy::WeightStreaming).is_err());
}

#[test]
fn hardware_specs_are_internally_consistent() {
    for p in all_platforms() {
        let spec = p.spec();
        assert!(spec.peak_tflops > 0.0, "{}", p.name());
        assert!(!spec.compute_units.is_empty(), "{}", p.name());
        for level in &spec.memory_levels {
            assert!(level.capacity_bytes > 0, "{}/{}", p.name(), level.name);
            if let Some(bw) = level.bandwidth_bytes_per_s {
                assert!(bw > 0.0, "{}/{}", p.name(), level.name);
            }
        }
        assert!(spec.global_memory().is_some(), "{}", p.name());
    }
}

#[test]
fn oom_errors_identify_the_level() {
    use dabench::core::PlatformError;
    // IPU at 10 layers, WSE at 78 layers: the paper's two failure points.
    let ipu_err = Ipu::default()
        .profile(&TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, 10),
            64,
            1024,
            Precision::Fp16,
        ))
        .unwrap_err();
    match ipu_err {
        PlatformError::OutOfMemory {
            level,
            required_bytes,
            capacity_bytes,
        } => {
            assert_eq!(level, "tile-sram");
            assert!(required_bytes > capacity_bytes);
        }
        other => panic!("unexpected: {other}"),
    }

    let wse_err = Wse::default()
        .profile(&TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, 78),
            256,
            1024,
            Precision::Fp16,
        ))
        .unwrap_err();
    assert!(matches!(wse_err, PlatformError::OutOfMemory { .. }));
}
