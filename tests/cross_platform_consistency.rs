//! Consistency and determinism checks spanning all platform models.

use dabench::core::{tier1, Platform};
use dabench::ipu::Ipu;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;

fn probe(batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, 6),
        batch,
        1024,
        Precision::Fp16,
    )
}

fn platforms() -> Vec<Box<dyn Platform>> {
    vec![
        Box::new(Wse::default()),
        Box::new(Rdu::with_mode(CompilationMode::O3)),
        Box::new(Ipu::default()),
    ]
}

/// The simulators are pure functions: identical inputs produce identical
/// reports.
#[test]
fn profiling_is_deterministic() {
    for p in platforms() {
        let a = tier1::run(p.as_ref(), &probe(32)).unwrap();
        let b = tier1::run(p.as_ref(), &probe(32)).unwrap();
        assert_eq!(a, b, "{}", p.name());
    }
}

/// Achieved TFLOP/s must equal the workload's FLOPs divided by the step
/// time each platform reports — the accounting identity tying the three
/// quantities together.
#[test]
fn tflops_step_time_identity() {
    let w = probe(32);
    for p in platforms() {
        let r = tier1::run(p.as_ref(), &w).unwrap();
        let implied = r.achieved_tflops * r.step_time_s * 1e12;
        let flops = w.training_flops_per_step();
        let err = (implied - flops).abs() / flops;
        // The IPU reports decoder-layer FLOPs only (Fig. 9(d) semantics),
        // so allow its nonlayer share as slack.
        let tolerance = if p.name().contains("ipu") { 0.65 } else { 0.02 };
        assert!(err < tolerance, "{}: {err}", p.name());
    }
}

/// Tokens/s must equal tokens-per-step over step time exactly.
#[test]
fn throughput_identity() {
    let w = probe(32);
    for p in platforms() {
        let r = tier1::run(p.as_ref(), &w).unwrap();
        let implied = w.tokens_per_step() as f64 / r.step_time_s;
        let err = (implied - r.throughput_tokens_per_s).abs() / implied;
        assert!(err < 1e-9, "{}: {err}", p.name());
    }
}

/// Doubling the batch never *reduces* throughput on any platform at
/// moderate batch sizes (all three amortize fixed overheads).
#[test]
fn batch_monotonicity() {
    for p in platforms() {
        let t16 = tier1::run(p.as_ref(), &probe(16))
            .unwrap()
            .throughput_tokens_per_s;
        let t32 = tier1::run(p.as_ref(), &probe(32))
            .unwrap()
            .throughput_tokens_per_s;
        assert!(t32 >= t16 * 0.999, "{}: {t16} → {t32}", p.name());
    }
}

/// Halving precision from FP32 never hurts and never more than doubles
/// throughput.
#[test]
fn precision_speedup_is_bounded() {
    for p in platforms() {
        let full = tier1::run(p.as_ref(), &probe(32).with_precision(Precision::Fp32));
        let half = tier1::run(p.as_ref(), &probe(32).with_precision(Precision::Fp16));
        let (Ok(full), Ok(half)) = (full, half) else {
            continue; // FP32 may OOM on SRAM-bound chips — that's fine.
        };
        let ratio = half.throughput_tokens_per_s / full.throughput_tokens_per_s;
        assert!((1.0..=2.2).contains(&ratio), "{}: {ratio}", p.name());
    }
}

/// Reports are JSON-serializable end to end (all report types derive
/// serde traits; round-trip through the debug formatter is covered
/// elsewhere).
#[test]
fn reports_expose_consistent_memory_levels() {
    let w = probe(32);
    for p in platforms() {
        let spec = p.spec();
        let r = tier1::run(p.as_ref(), &w).unwrap();
        for m in &r.memory {
            assert!(
                spec.memory_level(&m.name).is_some(),
                "{}: usage reported for unknown level {}",
                p.name(),
                m.name
            );
            assert!(m.used_bytes <= m.capacity_bytes, "{}: {}", p.name(), m.name);
        }
    }
}
