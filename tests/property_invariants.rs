//! Property-based tests over the framework's core invariants, driven by
//! randomized model/workload configurations.

use dabench::core::metrics::{
    allocation_ratio, load_imbalance, weighted_allocation_ratio, weighted_load_imbalance, Roofline,
};
use dabench::core::TaskProfile;
use dabench::graph::partition::{balanced_contiguous, bottleneck, capacity_contiguous};
use dabench::graph::GraphBuilder;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::sim::{steady_state_analysis, PipelineStage};
use proptest::prelude::*;

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Fp32),
        Just(Precision::Fp16),
        Just(Precision::Bf16),
        Just(Precision::Cb16),
    ]
}

proptest! {
    /// Any GPT-style probe builds a valid DAG whose op count and FLOPs are
    /// linear in depth.
    #[test]
    fn training_graphs_are_valid_dags(
        hs_mult in 1u64..8,
        layers in 1u64..10,
        batch in 1u64..8,
        seq_log in 5u32..9,
    ) {
        let hs = 64 * hs_mult;
        let cfg = ModelConfig::gpt2_probe(hs, layers);
        let g = GraphBuilder::training_step(&cfg, batch, 1 << seq_log);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.topological_order().len(), g.node_count());
        prop_assert!(g.total_flops() > 0.0);
    }

    /// FLOPs scale exactly linearly in batch (minus the constant optimizer
    /// term).
    #[test]
    fn flops_linear_in_batch(hs_mult in 1u64..6, layers in 1u64..8, b in 1u64..16) {
        let cfg = ModelConfig::gpt2_probe(64 * hs_mult, layers);
        let w1 = TrainingWorkload::new(cfg.clone(), b, 256, Precision::Fp16);
        let w2 = TrainingWorkload::new(cfg, 2 * b, 256, Precision::Fp16);
        let opt = 10.0 * w1.model().parameter_count() as f64;
        let f1 = w1.training_flops_per_step() - opt;
        let f2 = w2.training_flops_per_step() - opt;
        prop_assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    /// The load-imbalance metric is always in (0, 1] and invariant to
    /// uniform throughput scaling.
    #[test]
    fn li_bounds_and_scale_invariance(
        tps in prop::collection::vec(0.1f64..1000.0, 1..20),
        res in prop::collection::vec(0.1f64..100.0, 1..20),
        scale in 0.01f64..100.0,
    ) {
        let n = tps.len().min(res.len());
        let tasks: Vec<TaskProfile> = (0..n)
            .map(|i| TaskProfile::new(format!("t{i}"), tps[i], res[i]))
            .collect();
        let li = load_imbalance(&tasks).unwrap();
        prop_assert!(li > 0.0 && li <= 1.0 + 1e-12);
        let scaled: Vec<TaskProfile> = tasks
            .iter()
            .map(|t| TaskProfile::new(t.name.clone(), t.throughput * scale, t.resources))
            .collect();
        let li2 = load_imbalance(&scaled).unwrap();
        prop_assert!((li - li2).abs() < 1e-9);
    }

    /// Weighted allocation is a convex combination: it lies between the
    /// min and max per-section ratios.
    #[test]
    fn weighted_allocation_is_convex(
        sections in prop::collection::vec((0.001f64..100.0, 0u64..640, 1u64..=640), 1..20),
    ) {
        let recs: Vec<(f64, u64, u64)> = sections
            .iter()
            .map(|&(l, used, avail)| (l, used.min(avail), avail))
            .collect();
        let w = weighted_allocation_ratio(&recs).unwrap();
        let ratios: Vec<f64> = recs
            .iter()
            .map(|&(_, u, a)| allocation_ratio(u, a).unwrap())
            .collect();
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(w >= lo - 1e-12 && w <= hi + 1e-12);
    }

    /// Weighted LI is likewise a convex combination.
    #[test]
    fn weighted_li_is_convex(
        sections in prop::collection::vec((0.001f64..100.0, 0.0f64..1.0), 1..20),
    ) {
        let w = weighted_load_imbalance(&sections).unwrap();
        let lo = sections.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let hi = sections.iter().map(|s| s.1).fold(0.0f64, f64::max);
        prop_assert!(w >= lo - 1e-12 && w <= hi + 1e-12);
    }

    /// Roofline attainable throughput is monotone in intensity and capped
    /// at peak; classification flips exactly at the ridge.
    #[test]
    fn roofline_monotone(peak in 1.0f64..1e4, bw in 1e9f64..1e16, ai in 0.01f64..1e5) {
        let r = Roofline::new(peak, bw);
        let a1 = r.attainable_tflops(ai);
        let a2 = r.attainable_tflops(ai * 2.0);
        prop_assert!(a2 >= a1 - 1e-12);
        prop_assert!(a1 <= peak + 1e-12);
        let ridge = r.ridge_intensity();
        prop_assert_eq!(
            r.classify(ai) == dabench::core::BoundKind::ComputeBound,
            ai >= ridge
        );
    }

    /// Balanced contiguous partitioning covers every item exactly once and
    /// its bottleneck never beats the theoretical lower bound.
    #[test]
    fn balanced_partition_invariants(
        weights in prop::collection::vec(0.01f64..100.0, 1..40),
        k_seed in 1usize..40,
    ) {
        let k = 1 + k_seed % weights.len();
        let p = balanced_contiguous(&weights, k).unwrap();
        prop_assert_eq!(p.group_count(), k);
        prop_assert_eq!(p.len(), weights.len());
        prop_assert_eq!(p.sizes().iter().sum::<usize>(), weights.len());
        let total: f64 = weights.iter().sum();
        let max_w = weights.iter().cloned().fold(0.0f64, f64::max);
        let lower = (total / k as f64).max(max_w);
        prop_assert!(bottleneck(&p, &weights) >= lower - 1e-9);
    }

    /// Capacity partitioning never exceeds the cap except for single
    /// oversized items.
    #[test]
    fn capacity_partition_respects_cap(
        weights in prop::collection::vec(0.01f64..10.0, 1..40),
        cap in 0.5f64..20.0,
    ) {
        let p = capacity_contiguous(&weights, cap);
        prop_assert_eq!(p.len(), weights.len());
        for (s, e) in p.groups() {
            let w: f64 = weights[s..e].iter().sum();
            prop_assert!(w <= cap + 1e-9 || e - s == 1);
        }
    }

    /// Pipeline algebra: total time equals fill + (n-1)·bottleneck, and
    /// efficiency approaches 1 as items grow.
    #[test]
    fn pipeline_algebra(
        times in prop::collection::vec(0.001f64..10.0, 1..20),
        items in 1u64..500,
    ) {
        let stages: Vec<PipelineStage> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| PipelineStage::new(format!("s{i}"), t))
            .collect();
        let r = steady_state_analysis(&stages, items);
        let expect = times.iter().sum::<f64>() + (items - 1) as f64 * r.bottleneck_time;
        prop_assert!((r.total_time - expect).abs() < 1e-9);
        prop_assert!(r.pipeline_efficiency > 0.0 && r.pipeline_efficiency <= 1.0 + 1e-12);
        let more = steady_state_analysis(&stages, items + 100);
        prop_assert!(more.pipeline_efficiency >= r.pipeline_efficiency - 1e-12);
    }

    /// Workload accounting: state bytes follow the precision and the
    /// arithmetic intensity is finite and positive.
    #[test]
    fn workload_accounting(
        hs_mult in 1u64..8,
        layers in 1u64..8,
        batch in 1u64..16,
        precision in arb_precision(),
    ) {
        let w = TrainingWorkload::new(
            ModelConfig::gpt2_probe(64 * hs_mult, layers),
            batch,
            256,
            precision,
        );
        let per_param = 2 * precision.bytes_per_element() + 8;
        prop_assert_eq!(
            w.training_state_bytes(),
            per_param * w.model().parameter_count()
        );
        let ai = w.arithmetic_intensity();
        prop_assert!(ai.is_finite() && ai > 0.0);
    }
}
