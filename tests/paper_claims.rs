//! End-to-end checks of the paper's headline claims (the "Insight" boxes
//! of Secs. V and VI), each verified through the public experiment API.

use dabench::core::BoundKind;
use dabench::experiments::{fig10, fig11, fig12, fig7, fig8, table1, table3, table4};

/// Sec. V-A insight: the WSE-2 reaches a 92-93% allocation plateau but
/// fails around ~500M parameters (78 layers at HS 768).
#[test]
fn wse_allocation_plateau_and_failure() {
    let rows = table1::run();
    let plateau: Vec<f64> = rows
        .iter()
        .filter(|r| (36..=72).contains(&r.layers))
        .filter_map(|r| r.allocation_pct)
        .collect();
    assert!(!plateau.is_empty());
    for v in &plateau {
        assert!((0.85..0.95).contains(v), "{v}");
    }
    assert!(rows
        .iter()
        .any(|r| r.layers == 78 && r.allocation_pct.is_none()));
}

/// Sec. V-A insight: RDU allocation stays below ~60% despite unlimited
/// scalability, with O3 highest and O0 lowest.
#[test]
fn rdu_allocation_ceiling_and_mode_order() {
    let rows = fig7::run_layers();
    let series = |m: &str| -> Vec<f64> {
        rows.iter()
            .filter(|r| r.mode == m)
            .map(|r| r.pcu_allocation)
            .collect()
    };
    let o0 = series("o0");
    let o3 = series("o3");
    for (a, b) in o0.iter().zip(&o3) {
        assert!(a < b, "O0 {a} !< O3 {b}");
    }
    for v in o3 {
        assert!(v < 0.70, "{v}");
    }
}

/// Sec. V-B insight: WSE-2 balances well at kernel level; O1 balances far
/// better than O3 at operator level.
#[test]
fn load_balance_hierarchy() {
    let rows = fig8::run_layers();
    let min_of = |s: &str| {
        rows.iter()
            .filter(|r| r.series == s)
            .map(|r| r.li)
            .fold(f64::INFINITY, f64::min)
    };
    let max_of = |s: &str| {
        rows.iter()
            .filter(|r| r.series == s)
            .map(|r| r.li)
            .fold(0.0f64, f64::max)
    };
    assert!(min_of("wse") > 0.94);
    assert!(min_of("rdu-o1") > max_of("rdu-o3"));
}

/// Sec. V-C insight: only the WSE stays compute-bound; RDU and IPU are
/// memory-bound at the global-memory level.
#[test]
fn roofline_classification() {
    for p in fig10::run() {
        let expect = if p.platform.contains("wse") {
            BoundKind::ComputeBound
        } else {
            BoundKind::MemoryBound
        };
        assert_eq!(p.bound, expect, "{p:?}");
    }
}

/// Sec. VI-A insights: WSE DP comm grows with replicas; RDU cross-machine
/// TP collapses both throughput and per-chip utilization; IPU throughput
/// is set by the most-loaded device.
#[test]
fn scalability_insights() {
    let wse = fig11::run_wse();
    assert!(wse
        .windows(2)
        .all(|w| w[1].comm_fraction >= w[0].comm_fraction));

    let rdu = fig11::run_rdu();
    let tp2 = rdu.iter().find(|r| r.degree == 2).unwrap();
    let tp4 = rdu.iter().find(|r| r.degree == 4).unwrap();
    assert!(tp4.pcu < tp2.pcu * 0.8);

    let ipu = fig11::run_ipu();
    let best = ipu.iter().map(|r| r.max_layers).min().unwrap();
    let best_t = ipu
        .iter()
        .filter(|r| r.max_layers == best)
        .map(|r| r.throughput)
        .fold(0.0f64, f64::max);
    for r in &ipu {
        assert!(r.throughput <= best_t * 1.0001, "{r:?}");
    }
}

/// Sec. VI-B insight: batch ≥ ~200 on the WSE; near-linear elsewhere.
#[test]
fn batch_size_guidance() {
    let series = fig12::run();
    let wse = series.iter().find(|s| s.platform.contains("wse")).unwrap();
    let knee = wse.saturation_batch(0.85).unwrap();
    assert!((100..=300).contains(&knee), "{knee}");
}

/// Sec. VI-B insight: precision sensitivity orders RDU > IPU > WSE.
#[test]
fn precision_sensitivity_order() {
    let rows = table4::run();
    let rdu = table4::gain(&rows, "RDU (7B)").unwrap();
    let ipu = table4::gain(&rows, "IPU").unwrap();
    let wse = table4::gain(&rows, "WSE").unwrap();
    assert!(rdu > ipu && ipu > wse, "rdu={rdu} ipu={ipu} wse={wse}");
}

/// Table III shape: every configured column produces a value (no silent
/// holes), and the full table renders.
#[test]
fn table3_is_fully_populated() {
    let rows = table3::run();
    assert_eq!(rows.len(), 22);
    for r in &rows {
        assert!(
            r.throughput.is_some(),
            "{} {} missing",
            r.device,
            r.configuration
        );
    }
    let rendered = table3::render(&rows).to_string();
    assert!(rendered.lines().count() >= 24);
}
