//! Execution-trace rendering: per-resource timelines and a text Gantt
//! chart for inspecting simulated schedules.

use crate::stats::SimResult;
use serde::{Deserialize, Serialize};

/// One busy interval on a resource's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Task that occupied the slot.
    pub task: String,
    /// Start time, seconds.
    pub start: f64,
    /// Finish time, seconds.
    pub finish: f64,
}

/// Per-resource timeline extracted from a [`SimResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Resource name.
    pub resource: String,
    /// Intervals sorted by start time.
    pub intervals: Vec<Interval>,
}

impl Timeline {
    /// Total idle time inside the resource's active span.
    ///
    /// The span runs from the earliest interval start to the latest
    /// finish — computed as a min/max over all intervals, so the result
    /// does not depend on interval order (the sorted-by-start invariant
    /// of [`timelines`] is *not* required). Empty timelines have no span
    /// and report zero idle; zero-length intervals contribute no busy
    /// time but still extend the span.
    #[must_use]
    pub fn idle_within_span(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let span_start = self
            .intervals
            .iter()
            .map(|i| i.start)
            .fold(f64::INFINITY, f64::min);
        let span_end = self
            .intervals
            .iter()
            .map(|i| i.finish)
            .fold(f64::NEG_INFINITY, f64::max);
        let busy: f64 = self.intervals.iter().map(|i| i.finish - i.start).sum();
        (span_end - span_start - busy).max(0.0)
    }
}

/// Feed timelines into the observability recorder as simulated-time
/// slices (`dabench_core::obs::slice`), one track per resource.
///
/// No-op when the recorder is disabled, so simulation callers can invoke
/// it unconditionally after [`timelines`].
pub fn record_timelines(timelines: &[Timeline]) {
    if !dabench_core::obs::is_enabled() {
        return;
    }
    for tl in timelines {
        for iv in &tl.intervals {
            dabench_core::obs::slice(&tl.resource, &iv.task, iv.start, iv.finish - iv.start);
        }
    }
}

/// Extract per-resource timelines from a simulation result.
///
/// # Example
///
/// ```
/// use dabench_sim::{trace, Resource, Simulation, TaskSpec};
///
/// let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
/// sim.add_task(TaskSpec::new("a", 0, 1.0));
/// sim.add_task(TaskSpec::new("b", 0, 2.0));
/// let res = sim.run().unwrap();
/// let tl = trace::timelines(&res);
/// assert_eq!(tl[0].intervals.len(), 2);
/// assert_eq!(tl[0].idle_within_span(), 0.0);
/// ```
#[must_use]
pub fn timelines(result: &SimResult) -> Vec<Timeline> {
    result
        .resource_names()
        .iter()
        .enumerate()
        .map(|(r, name)| {
            let mut intervals: Vec<Interval> = result
                .timings()
                .iter()
                .filter(|t| t.resource == r)
                .map(|t| Interval {
                    task: t.name.clone(),
                    start: t.start,
                    finish: t.finish,
                })
                .collect();
            intervals.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
            Timeline {
                resource: name.clone(),
                intervals,
            }
        })
        .collect()
}

/// Render a fixed-width text Gantt chart (`width` columns spanning the
/// makespan). Each resource is one row; `#` marks busy cells.
///
/// # Example
///
/// ```
/// use dabench_sim::{trace, Resource, Simulation, TaskSpec};
///
/// let mut sim = Simulation::new(vec![Resource::new("cpu", 1)]);
/// let a = sim.add_task(TaskSpec::new("a", 0, 1.0));
/// sim.add_task(TaskSpec::new("b", 0, 1.0).after(a));
/// let chart = trace::gantt(&sim.run().unwrap(), 20);
/// assert!(chart.contains("cpu"));
/// assert!(chart.contains('#'));
/// ```
#[must_use]
pub fn gantt(result: &SimResult, width: usize) -> String {
    let width = width.max(1);
    let makespan = result.makespan().max(f64::MIN_POSITIVE);
    let name_w = result
        .resource_names()
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for tl in timelines(result) {
        let mut cells = vec![' '; width];
        for iv in &tl.intervals {
            let a = ((iv.start / makespan) * width as f64).floor() as usize;
            let b = ((iv.finish / makespan) * width as f64).ceil() as usize;
            for c in cells.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *c = '#';
            }
        }
        out.push_str(&format!(
            "{:name_w$} |{}|\n",
            tl.resource,
            cells.into_iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Resource, Simulation, TaskSpec};

    fn pipeline_sim() -> SimResult {
        let mut sim = Simulation::new(vec![Resource::new("p", 1), Resource::new("c", 1)]);
        let a = sim.add_task(TaskSpec::new("a", 0, 1.0));
        let b = sim.add_task(TaskSpec::new("b", 0, 1.0).after(a));
        sim.add_task(TaskSpec::new("ca", 1, 1.0).after(a));
        sim.add_task(TaskSpec::new("cb", 1, 1.0).after(b));
        sim.run().unwrap()
    }

    #[test]
    fn timelines_are_sorted_and_complete() {
        let tl = timelines(&pipeline_sim());
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].intervals.len() + tl[1].intervals.len(), 4);
        for t in &tl {
            for w in t.intervals.windows(2) {
                assert!(w[0].start <= w[1].start);
            }
        }
    }

    #[test]
    fn consumer_has_initial_idle() {
        let tl = timelines(&pipeline_sim());
        let consumer = tl.iter().find(|t| t.resource == "c").unwrap();
        // Consumer starts at t=1 and runs back-to-back: no idle inside span.
        assert_eq!(consumer.intervals[0].start, 1.0);
        assert_eq!(consumer.idle_within_span(), 0.0);
    }

    #[test]
    fn idle_detected_in_gappy_schedules() {
        let mut sim = Simulation::new(vec![Resource::new("a", 1), Resource::new("b", 1)]);
        let long = sim.add_task(TaskSpec::new("long", 0, 5.0));
        sim.add_task(TaskSpec::new("early", 1, 1.0));
        sim.add_task(TaskSpec::new("late", 1, 1.0).after(long));
        let res = sim.run().unwrap();
        let tl = timelines(&res);
        let b = tl.iter().find(|t| t.resource == "b").unwrap();
        assert!((b.idle_within_span() - 4.0).abs() < 1e-12);
    }

    fn iv(task: &str, start: f64, finish: f64) -> Interval {
        Interval {
            task: task.to_owned(),
            start,
            finish,
        }
    }

    #[test]
    fn empty_timeline_has_zero_idle() {
        let tl = Timeline {
            resource: "r".to_owned(),
            intervals: vec![],
        };
        assert_eq!(tl.idle_within_span(), 0.0);
    }

    #[test]
    fn zero_length_intervals_extend_the_span_without_busy_time() {
        // A zero-length marker at t=0 plus one unit of work in [3,4]:
        // the span is [0,4], busy is 1, idle is 3.
        let tl = Timeline {
            resource: "r".to_owned(),
            intervals: vec![iv("marker", 0.0, 0.0), iv("work", 3.0, 4.0)],
        };
        assert!((tl.idle_within_span() - 3.0).abs() < 1e-12);
        // All-zero-length intervals: span collapses, no idle.
        let degenerate = Timeline {
            resource: "r".to_owned(),
            intervals: vec![iv("m1", 2.0, 2.0), iv("m2", 2.0, 2.0)],
        };
        assert_eq!(degenerate.idle_within_span(), 0.0);
    }

    #[test]
    fn idle_within_span_is_order_independent() {
        // Unsorted input: the first interval is *not* the earliest. A
        // first-element span start would misreport idle as 0 here.
        let unsorted = Timeline {
            resource: "r".to_owned(),
            intervals: vec![iv("late", 5.0, 6.0), iv("early", 0.0, 1.0)],
        };
        let sorted = Timeline {
            resource: "r".to_owned(),
            intervals: vec![iv("early", 0.0, 1.0), iv("late", 5.0, 6.0)],
        };
        assert!((unsorted.idle_within_span() - 4.0).abs() < 1e-12);
        assert_eq!(unsorted.idle_within_span(), sorted.idle_within_span());
    }

    #[test]
    fn record_timelines_is_inert_when_recorder_is_off() {
        // Must not panic or record anything without an enabled recorder.
        dabench_core::obs::disable();
        record_timelines(&timelines(&pipeline_sim()));
        assert!(dabench_core::obs::take().is_empty());
    }

    #[test]
    fn gantt_rows_match_resources() {
        let chart = gantt(&pipeline_sim(), 40);
        assert_eq!(chart.lines().count(), 2);
        for line in chart.lines() {
            assert!(line.contains('|'));
        }
    }

    #[test]
    fn gantt_handles_empty_simulation() {
        let sim = Simulation::new(vec![Resource::new("r", 1)]);
        let chart = gantt(&sim.run().unwrap(), 10);
        assert!(chart.contains('r'));
    }
}
