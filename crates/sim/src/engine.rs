//! The event-driven execution engine.

use crate::stats::{SimResult, TaskTiming};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;

/// Identifier of a task within a [`Simulation`] (dense, insertion order).
pub type TaskId = usize;

/// A finite-capacity execution resource (a kernel region, a section
/// executor, an IPU, a link…). `capacity` tasks may run concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resource {
    name: String,
    capacity: u32,
}

impl Resource {
    /// Create a resource with `capacity` concurrent slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; use [`Resource::try_new`] to handle
    /// invalid capacities gracefully.
    #[must_use]
    pub fn new(name: impl Into<String>, capacity: u32) -> Self {
        match Self::try_new(name, capacity) {
            Ok(r) => r,
            Err(e) => panic!("resource capacity must be positive: {e}"),
        }
    }

    /// Create a resource with `capacity` concurrent slots, rejecting
    /// invalid capacities instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidCapacity`] if `capacity` is zero.
    pub fn try_new(name: impl Into<String>, capacity: u32) -> Result<Self, SimError> {
        let name = name.into();
        if capacity == 0 {
            return Err(SimError::InvalidCapacity { resource: name });
        }
        Ok(Self { name, capacity })
    }

    /// Resource name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Concurrent slots.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

/// A unit of work: runs for `duration` seconds on resource `resource`,
/// after all of its dependencies have completed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    name: String,
    resource: usize,
    duration: f64,
    deps: Vec<TaskId>,
}

impl TaskSpec {
    /// Create a task bound to resource index `resource` lasting `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or non-finite; use
    /// [`TaskSpec::try_new`] to handle invalid durations gracefully.
    #[must_use]
    pub fn new(name: impl Into<String>, resource: usize, duration: f64) -> Self {
        match Self::try_new(name, resource, duration) {
            Ok(t) => t,
            Err(e) => panic!("duration must be finite and non-negative: {e}"),
        }
    }

    /// Create a task bound to resource index `resource` lasting `duration`,
    /// rejecting invalid durations instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDuration`] if `duration` is negative or
    /// non-finite.
    pub fn try_new(
        name: impl Into<String>,
        resource: usize,
        duration: f64,
    ) -> Result<Self, SimError> {
        let name = name.into();
        if !(duration.is_finite() && duration >= 0.0) {
            return Err(SimError::InvalidDuration {
                task: name,
                duration,
            });
        }
        Ok(Self {
            name,
            resource,
            duration,
            deps: Vec::new(),
        })
    }

    /// Add a dependency on an earlier task.
    #[must_use]
    pub fn after(mut self, dep: TaskId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Add several dependencies.
    #[must_use]
    pub fn after_all(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        self.deps.extend(deps);
        self
    }

    /// Task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Service duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Bound resource index.
    #[must_use]
    pub fn resource(&self) -> usize {
        self.resource
    }

    /// Declared dependencies.
    #[must_use]
    pub fn deps(&self) -> &[TaskId] {
        &self.deps
    }
}

/// Errors reported by [`Simulation::run`] and the fallible constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A resource was declared with zero capacity.
    InvalidCapacity {
        /// Offending resource name.
        resource: String,
    },
    /// A task was declared with a negative or non-finite duration.
    InvalidDuration {
        /// Offending task name.
        task: String,
        /// The rejected duration value.
        duration: f64,
    },
    /// A task references a resource index that was never registered.
    UnknownResource {
        /// Offending task name.
        task: String,
        /// The out-of-range resource index.
        resource: usize,
    },
    /// A task depends on a task id not yet added.
    UnknownDependency {
        /// Offending task name.
        task: String,
        /// The missing dependency id.
        dep: TaskId,
    },
    /// The dependency graph contains a cycle (or a forward reference).
    Deadlock {
        /// Number of tasks that never became ready.
        stuck: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidCapacity { resource } => {
                write!(f, "resource `{resource}` declared with zero capacity")
            }
            SimError::InvalidDuration { task, duration } => {
                write!(f, "task `{task}` declared with invalid duration {duration}")
            }
            SimError::UnknownResource { task, resource } => {
                write!(f, "task `{task}` references unknown resource {resource}")
            }
            SimError::UnknownDependency { task, dep } => {
                write!(f, "task `{task}` depends on unknown task {dep}")
            }
            SimError::Deadlock { stuck } => {
                write!(f, "simulation deadlocked with {stuck} tasks never ready")
            }
        }
    }
}

impl Error for SimError {}

/// A completion event in the pending-event heap (min-heap by time).
#[derive(Debug, PartialEq)]
struct Completion {
    time: f64,
    task: TaskId,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        // Tie-break on task id for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event simulation: resources plus a task DAG.
///
/// Add resources at construction, tasks with [`Simulation::add_task`], then
/// call [`Simulation::run`]. Scheduling is work-conserving FIFO per
/// resource: when a slot frees up, the longest-waiting ready task bound to
/// that resource starts.
///
/// # Example
///
/// ```
/// use dabench_sim::{Resource, Simulation, TaskSpec};
///
/// let mut sim = Simulation::new(vec![Resource::new("a", 1), Resource::new("b", 1)]);
/// let first = sim.add_task(TaskSpec::new("produce", 0, 2.0));
/// sim.add_task(TaskSpec::new("consume", 1, 1.0).after(first));
/// let res = sim.run().unwrap();
/// assert!((res.makespan() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct Simulation {
    resources: Vec<Resource>,
    tasks: Vec<TaskSpec>,
}

impl Simulation {
    /// Create a simulation over the given resources.
    #[must_use]
    pub fn new(resources: Vec<Resource>) -> Self {
        Self {
            resources,
            tasks: Vec::new(),
        }
    }

    /// Register a task, returning its id for use in dependencies.
    pub fn add_task(&mut self, task: TaskSpec) -> TaskId {
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Number of registered tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The registered tasks, in id order.
    #[must_use]
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The registered resources, in index order.
    #[must_use]
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Execute the simulation to completion.
    ///
    /// Recorded as an `execute`-phase span (`sim.run`) with `sim.tasks` /
    /// `sim.makespan_s` counters when the observability recorder is on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on invalid resource/dependency references or if
    /// the dependency graph deadlocks.
    pub fn run(&self) -> Result<SimResult, SimError> {
        use dabench_core::obs;
        obs::span(obs::Phase::Execute, "sim.run", || {
            let result = self.run_inner();
            if let Ok(res) = &result {
                obs::counter("sim.tasks", self.tasks.len() as f64);
                obs::counter("sim.makespan_s", res.makespan());
            }
            result
        })
    }

    fn run_inner(&self) -> Result<SimResult, SimError> {
        let n = self.tasks.len();
        let nr = self.resources.len();

        for t in &self.tasks {
            if t.resource >= nr {
                return Err(SimError::UnknownResource {
                    task: t.name.clone(),
                    resource: t.resource,
                });
            }
        }

        let mut remaining_deps: Vec<usize> = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                if d >= n {
                    return Err(SimError::UnknownDependency {
                        task: t.name.clone(),
                        dep: d,
                    });
                }
                dependents[d].push(i);
            }
            remaining_deps.push(t.deps.len());
        }

        let mut ready: Vec<VecDeque<TaskId>> = vec![VecDeque::new(); nr];
        for (i, t) in self.tasks.iter().enumerate() {
            if t.deps.is_empty() {
                ready[t.resource].push_back(i);
            }
        }

        let mut free_slots: Vec<u32> = self.resources.iter().map(Resource::capacity).collect();
        let mut start = vec![f64::NAN; n];
        let mut finish = vec![f64::NAN; n];
        let mut busy = vec![0.0f64; nr];
        let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
        let mut now = 0.0f64;
        let mut completed = 0usize;

        let start_ready = |now: f64,
                           ready: &mut [VecDeque<TaskId>],
                           free_slots: &mut [u32],
                           start: &mut [f64],
                           heap: &mut BinaryHeap<Completion>,
                           tasks: &[TaskSpec],
                           r: usize| {
            while free_slots[r] > 0 {
                let Some(t) = ready[r].pop_front() else { break };
                free_slots[r] -= 1;
                start[t] = now;
                heap.push(Completion {
                    time: now + tasks[t].duration,
                    task: t,
                });
            }
        };

        for r in 0..nr {
            start_ready(
                now,
                &mut ready,
                &mut free_slots,
                &mut start,
                &mut heap,
                &self.tasks,
                r,
            );
        }

        while let Some(Completion { time, task }) = heap.pop() {
            now = time;
            finish[task] = now;
            completed += 1;
            let r = self.tasks[task].resource;
            free_slots[r] += 1;
            busy[r] += self.tasks[task].duration;

            let mut touched: Vec<usize> = vec![r];
            for &dep in &dependents[task] {
                remaining_deps[dep] -= 1;
                if remaining_deps[dep] == 0 {
                    let tr = self.tasks[dep].resource;
                    ready[tr].push_back(dep);
                    touched.push(tr);
                }
            }
            touched.sort_unstable();
            touched.dedup();
            for r in touched {
                start_ready(
                    now,
                    &mut ready,
                    &mut free_slots,
                    &mut start,
                    &mut heap,
                    &self.tasks,
                    r,
                );
            }
        }

        if completed != n {
            return Err(SimError::Deadlock {
                stuck: n - completed,
            });
        }

        let timings = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskTiming {
                name: t.name.clone(),
                resource: t.resource,
                start: start[i],
                finish: finish[i],
            })
            .collect();
        Ok(SimResult::new(
            timings,
            self.resources.iter().map(|r| r.name.clone()).collect(),
            busy,
            now,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes_at_zero() {
        let sim = Simulation::new(vec![Resource::new("r", 1)]);
        let res = sim.run().unwrap();
        assert_eq!(res.makespan(), 0.0);
    }

    #[test]
    fn serial_on_one_slot() {
        let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
        for i in 0..4 {
            sim.add_task(TaskSpec::new(format!("t{i}"), 0, 1.0));
        }
        assert!((sim.run().unwrap().makespan() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_on_wide_resource() {
        let mut sim = Simulation::new(vec![Resource::new("r", 4)]);
        for i in 0..4 {
            sim.add_task(TaskSpec::new(format!("t{i}"), 0, 1.0));
        }
        assert!((sim.run().unwrap().makespan() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependency_chains_serialize() {
        let mut sim = Simulation::new(vec![Resource::new("r", 8)]);
        let a = sim.add_task(TaskSpec::new("a", 0, 1.0));
        let b = sim.add_task(TaskSpec::new("b", 0, 2.0).after(a));
        sim.add_task(TaskSpec::new("c", 0, 3.0).after(b));
        assert!((sim.run().unwrap().makespan() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_overlaps_branches() {
        let mut sim = Simulation::new(vec![Resource::new("r", 2)]);
        let a = sim.add_task(TaskSpec::new("a", 0, 1.0));
        let b = sim.add_task(TaskSpec::new("b", 0, 5.0).after(a));
        let c = sim.add_task(TaskSpec::new("c", 0, 2.0).after(a));
        sim.add_task(TaskSpec::new("d", 0, 1.0).after_all([b, c]));
        assert!((sim.run().unwrap().makespan() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
        sim.add_task(TaskSpec::new("t", 3, 1.0));
        assert!(matches!(
            sim.run(),
            Err(SimError::UnknownResource { resource: 3, .. })
        ));
    }

    #[test]
    fn forward_dependency_rejected() {
        let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
        sim.add_task(TaskSpec::new("t", 0, 1.0).after(7));
        assert!(matches!(
            sim.run(),
            Err(SimError::UnknownDependency { dep: 7, .. })
        ));
    }

    #[test]
    fn cyclic_deps_deadlock() {
        // Two tasks each depending on the other can only be expressed by a
        // forward reference; build the cycle with ids after both exist.
        let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
        sim.add_task(TaskSpec::new("a", 0, 1.0).after(1));
        sim.add_task(TaskSpec::new("b", 0, 1.0).after(0));
        assert!(matches!(sim.run(), Err(SimError::Deadlock { stuck: 2 })));
    }

    #[test]
    fn busy_time_equals_sum_of_durations() {
        let mut sim = Simulation::new(vec![Resource::new("r", 2)]);
        sim.add_task(TaskSpec::new("a", 0, 1.5));
        sim.add_task(TaskSpec::new("b", 0, 2.5));
        let res = sim.run().unwrap();
        assert!((res.resource_busy(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let mut sim = Simulation::new(vec![Resource::new("r", 2)]);
        for i in 0..8 {
            sim.add_task(TaskSpec::new(format!("t{i}"), 0, 1.0));
        }
        let res = sim.run().unwrap();
        // Multi-slot utilization is per-resource, so divide by capacity.
        let util = res.resource_utilization(0) / 2.0;
        assert!(util > 0.99 && util <= 1.0 + 1e-12, "{util}");
    }

    #[test]
    fn cross_resource_pipeline() {
        // prod -> cons on different resources; second prod overlaps first cons.
        let mut sim = Simulation::new(vec![Resource::new("p", 1), Resource::new("c", 1)]);
        let p0 = sim.add_task(TaskSpec::new("p0", 0, 1.0));
        let p1 = sim.add_task(TaskSpec::new("p1", 0, 1.0).after(p0));
        sim.add_task(TaskSpec::new("c0", 1, 1.0).after(p0));
        sim.add_task(TaskSpec::new("c1", 1, 1.0).after(p1));
        let res = sim.run().unwrap();
        assert!((res.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Resource::new("r", 0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn negative_duration_rejected() {
        let _ = TaskSpec::new("t", 0, -1.0);
    }

    #[test]
    fn try_new_rejects_zero_capacity_without_panicking() {
        assert!(matches!(
            Resource::try_new("r", 0),
            Err(SimError::InvalidCapacity { .. })
        ));
        assert!(Resource::try_new("r", 1).is_ok());
    }

    #[test]
    fn try_new_rejects_bad_durations_without_panicking() {
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                TaskSpec::try_new("t", 0, bad),
                Err(SimError::InvalidDuration { .. })
            ));
        }
        assert!(TaskSpec::try_new("t", 0, 0.0).is_ok());
    }

    #[test]
    fn constructor_error_display_names_offender() {
        let e = Resource::try_new("wafer", 0).unwrap_err();
        assert!(e.to_string().contains("wafer"));
        let e = TaskSpec::try_new("stream3", 0, f64::NAN).unwrap_err();
        assert!(e.to_string().contains("stream3"));
    }

    #[test]
    fn equal_time_completions_pop_in_task_id_order() {
        // a and b run concurrently and finish at the same instant; their
        // dependents contend for one downstream slot. The tie must break
        // on task id — a's dependent (queued first) starts first — so the
        // schedule is a pure function of the task list.
        let mut sim = Simulation::new(vec![Resource::new("up", 2), Resource::new("down", 1)]);
        let a = sim.add_task(TaskSpec::new("a", 0, 1.0));
        let b = sim.add_task(TaskSpec::new("b", 0, 1.0));
        sim.add_task(TaskSpec::new("da", 1, 1.0).after(a));
        sim.add_task(TaskSpec::new("db", 1, 1.0).after(b));
        let res = sim.run().unwrap();
        let da = res.timing_of("da").unwrap();
        let db = res.timing_of("db").unwrap();
        assert!((da.start - 1.0).abs() < 1e-12, "{}", da.start);
        assert!((db.start - 2.0).abs() < 1e-12, "{}", db.start);
    }

    #[test]
    fn heap_order_is_time_then_task_id() {
        let mut heap = BinaryHeap::new();
        heap.push(Completion { time: 2.0, task: 0 });
        heap.push(Completion { time: 1.0, task: 2 });
        heap.push(Completion { time: 1.0, task: 1 });
        let order: Vec<TaskId> = std::iter::from_fn(|| heap.pop()).map(|c| c.task).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
