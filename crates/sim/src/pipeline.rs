//! Closed-form pipeline steady-state analysis.
//!
//! Spatial dataflow executions are pipelines: the WSE-2 streams batches
//! through a chain of on-chip kernels, the IPU streams micro-batches
//! through layer-grouped devices. For a linear pipeline the discrete-event
//! engine is unnecessary — fill/drain plus bottleneck arithmetic is exact —
//! so this module provides the closed form (validated against the engine in
//! the crate's tests).

use serde::{Deserialize, Serialize};

/// One stage of a linear pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineStage {
    /// Stage label.
    pub name: String,
    /// Time one item spends in this stage, seconds.
    pub stage_time: f64,
}

impl PipelineStage {
    /// Create a stage.
    #[must_use]
    pub fn new(name: impl Into<String>, stage_time: f64) -> Self {
        Self {
            name: name.into(),
            stage_time,
        }
    }
}

/// Result of [`steady_state_analysis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Index of the slowest stage.
    pub bottleneck_index: usize,
    /// Time of the slowest stage (the steady-state period), seconds.
    pub bottleneck_time: f64,
    /// Latency of one item through the empty pipeline, seconds.
    pub fill_time: f64,
    /// Asymptotic throughput, items/second.
    pub steady_throughput: f64,
    /// Total time to push `items` through, seconds.
    pub total_time: f64,
    /// Achieved throughput for the finite batch, items/second.
    pub effective_throughput: f64,
    /// Fraction of the asymptotic throughput achieved (`0..=1`).
    pub pipeline_efficiency: f64,
}

/// Analyze a linear pipeline processing `items` items.
///
/// Total time is `fill + (items - 1) · bottleneck`: the first item pays the
/// full latency, every further item emerges one bottleneck period later.
///
/// # Panics
///
/// Panics if `stages` is empty or `items` is zero.
///
/// # Example
///
/// ```
/// use dabench_sim::{steady_state_analysis, PipelineStage};
///
/// let stages = vec![
///     PipelineStage::new("a", 1.0),
///     PipelineStage::new("b", 2.0),
///     PipelineStage::new("c", 1.0),
/// ];
/// let r = steady_state_analysis(&stages, 100);
/// assert_eq!(r.bottleneck_index, 1);
/// // Asymptotically one item per 2 seconds.
/// assert!((r.steady_throughput - 0.5).abs() < 1e-12);
/// // 100 items: 4s fill + 99 * 2s = 202s.
/// assert!((r.total_time - 202.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn steady_state_analysis(stages: &[PipelineStage], items: u64) -> PipelineReport {
    assert!(!stages.is_empty(), "pipeline needs at least one stage");
    assert!(items > 0, "need at least one item");
    let (bottleneck_index, bottleneck_time) = stages
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s.stage_time))
        .fold(
            (0, 0.0f64),
            |acc, cur| if cur.1 > acc.1 { cur } else { acc },
        );
    let fill_time: f64 = stages.iter().map(|s| s.stage_time).sum();
    let total_time = fill_time + (items - 1) as f64 * bottleneck_time;
    let steady_throughput = if bottleneck_time > 0.0 {
        1.0 / bottleneck_time
    } else {
        f64::INFINITY
    };
    let effective_throughput = if total_time > 0.0 {
        items as f64 / total_time
    } else {
        f64::INFINITY
    };
    let pipeline_efficiency = if steady_throughput.is_finite() && steady_throughput > 0.0 {
        effective_throughput / steady_throughput
    } else {
        1.0
    };
    PipelineReport {
        bottleneck_index,
        bottleneck_time,
        fill_time,
        steady_throughput,
        total_time,
        effective_throughput,
        pipeline_efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Resource, Simulation, TaskSpec};

    #[test]
    fn single_stage_has_no_pipelining() {
        let r = steady_state_analysis(&[PipelineStage::new("only", 3.0)], 10);
        assert!((r.total_time - 30.0).abs() < 1e-12);
        assert!((r.pipeline_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_grows_with_items() {
        let stages = vec![PipelineStage::new("a", 1.0), PipelineStage::new("b", 1.0)];
        let few = steady_state_analysis(&stages, 2);
        let many = steady_state_analysis(&stages, 200);
        assert!(many.pipeline_efficiency > few.pipeline_efficiency);
        assert!(many.pipeline_efficiency > 0.99);
    }

    #[test]
    fn closed_form_matches_event_simulation() {
        // 3-stage pipeline, 5 items, one resource slot per stage.
        let times = [1.0, 2.5, 0.5];
        let items = 5usize;
        let stages: Vec<PipelineStage> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| PipelineStage::new(format!("s{i}"), t))
            .collect();
        let analytic = steady_state_analysis(&stages, items as u64);

        let mut sim = Simulation::new(
            (0..times.len())
                .map(|i| Resource::new(format!("s{i}"), 1))
                .collect(),
        );
        let mut prev: Vec<Option<usize>> = vec![None; times.len()];
        for item in 0..items {
            for (s, &t) in times.iter().enumerate() {
                let mut spec = TaskSpec::new(format!("i{item}s{s}"), s, t);
                if s > 0 {
                    spec = spec.after(prev[s - 1].unwrap());
                }
                if let Some(p) = prev[s] {
                    spec = spec.after(p);
                }
                prev[s] = Some(sim.add_task(spec));
            }
        }
        let sim_res = sim.run().unwrap();
        assert!(
            (sim_res.makespan() - analytic.total_time).abs() < 1e-9,
            "sim {} vs analytic {}",
            sim_res.makespan(),
            analytic.total_time
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let _ = steady_state_analysis(&[], 1);
    }
}
