//! Fault-aware execution: retry-with-backoff and checkpoint/restart cost.
//!
//! Dataflow runtimes recover from *transient* faults (a stalled fabric
//! section, a dropped link packet burst) by re-enqueueing the affected task
//! after a backoff, and from *permanent* faults by remapping the workload
//! and restarting from the last checkpoint. [`run_with_faults`] models the
//! first mechanism directly in the event engine — every failed attempt and
//! its backoff is folded into the task's service time, so retries are
//! visible in the resulting [`TaskTiming`]s — while [`CheckpointModel`]
//! prices the second for platform-level recovery accounting.

use crate::engine::{SimError, Simulation, TaskId, TaskSpec};
use crate::stats::SimResult;
use serde::{Deserialize, Serialize};

/// A fault injected into one simulated task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskFault {
    /// The task stalls for `stall_s` on each of `failures` attempts before
    /// succeeding; each failed attempt is followed by a backoff delay.
    Transient {
        /// Stall duration of each failed attempt, seconds.
        stall_s: f64,
        /// Number of failed attempts before the task succeeds.
        failures: u32,
    },
    /// The task's home unit is permanently dead: the run cannot proceed
    /// without a remap, which the engine cannot perform itself.
    Permanent,
}

/// Exponential-backoff retry policy for transient faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Backoff after the first failed attempt, seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub multiplier: f64,
    /// Attempts after which the task is declared permanently failed.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            max_retries: 8,
        }
    }
}

impl RetryPolicy {
    /// Total extra time `failures` failed attempts cost: each attempt
    /// stalls for `stall_s` and is followed by its backoff delay.
    #[must_use]
    pub fn retry_penalty_s(&self, stall_s: f64, failures: u32) -> f64 {
        let mut penalty = 0.0;
        let mut backoff = self.base_backoff_s;
        for _ in 0..failures {
            penalty += stall_s + backoff;
            backoff *= self.multiplier;
        }
        penalty
    }
}

/// Checkpoint/restart cost model for permanent-fault recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointModel {
    /// Time between checkpoints, seconds.
    pub interval_s: f64,
    /// Cost of writing one checkpoint, seconds.
    pub save_cost_s: f64,
    /// Cost of restoring from a checkpoint after a fault, seconds.
    pub restore_cost_s: f64,
}

impl Default for CheckpointModel {
    fn default() -> Self {
        Self {
            interval_s: 600.0,
            save_cost_s: 5.0,
            restore_cost_s: 15.0,
        }
    }
}

impl CheckpointModel {
    /// Steady-state fraction of wall-clock time spent writing checkpoints.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        if self.interval_s <= 0.0 {
            0.0
        } else {
            self.save_cost_s / (self.interval_s + self.save_cost_s)
        }
    }

    /// Expected work lost to one permanent fault: restore cost plus half a
    /// checkpoint interval of replayed steps (faults land uniformly within
    /// the interval).
    #[must_use]
    pub fn expected_lost_work_s(&self) -> f64 {
        self.restore_cost_s + self.interval_s / 2.0
    }
}

/// Retry bookkeeping for one faulted task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryRecord {
    /// Id of the faulted task.
    pub task: TaskId,
    /// Task name.
    pub name: String,
    /// Total attempts (failures + the final success).
    pub attempts: u32,
    /// Extra service time the retries added, seconds.
    pub penalty_s: f64,
}

/// Outcome of a fault-injected run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyRun {
    /// Timings with retry penalties folded into faulted tasks.
    pub result: SimResult,
    /// One record per transiently-faulted task.
    pub retries: Vec<RetryRecord>,
    /// Makespan the same DAG achieves with no faults, for comparison.
    pub fault_free_makespan: f64,
}

impl FaultyRun {
    /// Slowdown relative to the fault-free run (`>= 1`).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.fault_free_makespan <= 0.0 {
            1.0
        } else {
            self.result.makespan() / self.fault_free_makespan
        }
    }
}

/// Execute `sim` with transient faults injected into the listed tasks.
///
/// Each `(task, fault)` pair stretches that task's service time by the
/// retry penalty under `policy`, then the whole DAG is re-simulated, so
/// downstream tasks see realistic queueing delay from the retries.
///
/// # Errors
///
/// - [`SimError::UnknownDependency`] when a fault names a task id that was
///   never registered.
/// - [`SimError::Deadlock`] when a [`TaskFault::Transient`] exceeds
///   `policy.max_retries` or a [`TaskFault::Permanent`] is injected — the
///   engine cannot remap, so the task never completes; callers recover via
///   `Degradable::degrade` and price the restart with [`CheckpointModel`].
/// - Any error the underlying [`Simulation::run`] reports.
pub fn run_with_faults(
    sim: &Simulation,
    faults: &[(TaskId, TaskFault)],
    policy: &RetryPolicy,
) -> Result<FaultyRun, SimError> {
    let baseline = sim.run()?;

    let mut penalties: Vec<f64> = vec![0.0; sim.task_count()];
    let mut retries = Vec::new();
    for &(task, fault) in faults {
        let Some(spec) = sim.tasks().get(task) else {
            return Err(SimError::UnknownDependency {
                task: "<fault injection>".into(),
                dep: task,
            });
        };
        match fault {
            TaskFault::Transient { stall_s, failures } => {
                if failures > policy.max_retries {
                    return Err(SimError::Deadlock { stuck: 1 });
                }
                let penalty = policy.retry_penalty_s(stall_s, failures);
                penalties[task] += penalty;
                retries.push(RetryRecord {
                    task,
                    name: spec.name().to_string(),
                    attempts: failures + 1,
                    penalty_s: penalty,
                });
            }
            TaskFault::Permanent => {
                return Err(SimError::Deadlock { stuck: 1 });
            }
        }
    }

    let mut faulty = Simulation::new(sim.resources().to_vec());
    for (i, t) in sim.tasks().iter().enumerate() {
        let spec = TaskSpec::try_new(t.name(), t.resource(), t.duration() + penalties[i])?
            .after_all(t.deps().iter().copied());
        faulty.add_task(spec);
    }
    let result = faulty.run()?;

    Ok(FaultyRun {
        result,
        retries,
        fault_free_makespan: baseline.makespan(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Resource;

    fn two_task_sim() -> Simulation {
        let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
        let a = sim.add_task(TaskSpec::new("a", 0, 1.0));
        sim.add_task(TaskSpec::new("b", 0, 1.0).after(a));
        sim
    }

    #[test]
    fn fault_free_run_matches_baseline() {
        let sim = two_task_sim();
        let run = run_with_faults(&sim, &[], &RetryPolicy::default()).unwrap();
        assert!((run.result.makespan() - run.fault_free_makespan).abs() < 1e-12);
        assert!((run.slowdown() - 1.0).abs() < 1e-12);
        assert!(run.retries.is_empty());
    }

    #[test]
    fn transient_fault_stretches_task_and_downstream() {
        let sim = two_task_sim();
        let policy = RetryPolicy {
            base_backoff_s: 0.5,
            multiplier: 2.0,
            max_retries: 8,
        };
        let fault = TaskFault::Transient {
            stall_s: 1.0,
            failures: 2,
        };
        let run = run_with_faults(&sim, &[(0, fault)], &policy).unwrap();
        // Penalty = (1.0 + 0.5) + (1.0 + 1.0) = 3.5 on task a.
        let a = run.result.timing_of("a").unwrap();
        assert!((a.duration() - 4.5).abs() < 1e-12);
        // Task b starts only after the retried a completes.
        let b = run.result.timing_of("b").unwrap();
        assert!((b.start - 4.5).abs() < 1e-12);
        assert!((run.result.makespan() - 5.5).abs() < 1e-12);
        assert!((run.slowdown() - 2.75).abs() < 1e-12);
        assert_eq!(run.retries.len(), 1);
        assert_eq!(run.retries[0].attempts, 3);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let policy = RetryPolicy {
            base_backoff_s: 1.0,
            multiplier: 3.0,
            max_retries: 8,
        };
        // Failures cost (s + 1) + (s + 3) + (s + 9) with s = 0.
        assert!((policy.retry_penalty_s(0.0, 3) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn permanent_fault_is_unrecoverable_in_engine() {
        let sim = two_task_sim();
        let res = run_with_faults(&sim, &[(0, TaskFault::Permanent)], &RetryPolicy::default());
        assert!(matches!(res, Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn retries_beyond_policy_limit_fail() {
        let sim = two_task_sim();
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let fault = TaskFault::Transient {
            stall_s: 0.1,
            failures: 3,
        };
        assert!(run_with_faults(&sim, &[(0, fault)], &policy).is_err());
    }

    #[test]
    fn unknown_task_fault_rejected() {
        let sim = two_task_sim();
        let fault = TaskFault::Transient {
            stall_s: 0.1,
            failures: 1,
        };
        assert!(matches!(
            run_with_faults(&sim, &[(9, fault)], &RetryPolicy::default()),
            Err(SimError::UnknownDependency { dep: 9, .. })
        ));
    }

    #[test]
    fn checkpoint_costs_are_positive_and_bounded() {
        let cp = CheckpointModel::default();
        let f = cp.overhead_fraction();
        assert!(f > 0.0 && f < 1.0);
        assert!(cp.expected_lost_work_s() > cp.restore_cost_s);
        let degenerate = CheckpointModel {
            interval_s: 0.0,
            ..cp
        };
        assert_eq!(degenerate.overhead_fraction(), 0.0);
    }
}
