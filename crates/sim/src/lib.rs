//! # dabench-sim
//!
//! A small discrete-event simulation engine for dataflow execution.
//!
//! Dataflow hardware fires an operator as soon as (a) all of its input data
//! is available and (b) the hardware region it is mapped to is free. This
//! crate models exactly that: tasks with dependencies and durations compete
//! for finite-capacity [`Resource`]s, and the engine reports when
//! everything started and finished.
//!
//! The platform models in `dabench-wse` / `dabench-rdu` / `dabench-ipu` use
//! it for the paper's *runtime* metrics (per-task throughput feeding the
//! load-imbalance computation, pipeline steady-state throughput) while
//! their analytic compilers supply the *compile-time* metrics.
//!
//! # Example
//!
//! ```
//! use dabench_sim::{Resource, Simulation, TaskSpec};
//!
//! // Two independent 1s tasks on a 1-slot resource run back to back.
//! let r = Resource::new("pe", 1);
//! let mut sim = Simulation::new(vec![r]);
//! sim.add_task(TaskSpec::new("a", 0, 1.0));
//! sim.add_task(TaskSpec::new("b", 0, 1.0));
//! let result = sim.run().unwrap();
//! assert!((result.makespan() - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod faulty;
mod pipeline;
mod stats;
pub mod trace;

pub use engine::{Resource, SimError, Simulation, TaskId, TaskSpec};
pub use faulty::{
    run_with_faults, CheckpointModel, FaultyRun, RetryPolicy, RetryRecord, TaskFault,
};
pub use pipeline::{steady_state_analysis, PipelineReport, PipelineStage};
pub use stats::{SimResult, TaskTiming};
