//! Simulation results and derived statistics.

use serde::{Deserialize, Serialize};

/// Start/finish record of one simulated task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTiming {
    /// Task name as registered.
    pub name: String,
    /// Resource index the task ran on.
    pub resource: usize,
    /// Simulation time the task started.
    pub start: f64,
    /// Simulation time the task finished.
    pub finish: f64,
}

impl TaskTiming {
    /// Task service time.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// Outcome of a [`crate::Simulation`] run.
///
/// # Example
///
/// ```
/// use dabench_sim::{Resource, Simulation, TaskSpec};
/// let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
/// sim.add_task(TaskSpec::new("t", 0, 2.0));
/// let res = sim.run().unwrap();
/// assert_eq!(res.timings().len(), 1);
/// assert!((res.resource_utilization(0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    timings: Vec<TaskTiming>,
    resource_names: Vec<String>,
    resource_busy: Vec<f64>,
    makespan: f64,
}

impl SimResult {
    pub(crate) fn new(
        timings: Vec<TaskTiming>,
        resource_names: Vec<String>,
        resource_busy: Vec<f64>,
        makespan: f64,
    ) -> Self {
        Self {
            timings,
            resource_names,
            resource_busy,
            makespan,
        }
    }

    /// Total simulated time until the last completion.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Per-task timing records, in task-id order.
    #[must_use]
    pub fn timings(&self) -> &[TaskTiming] {
        &self.timings
    }

    /// Names of the registered resources.
    #[must_use]
    pub fn resource_names(&self) -> &[String] {
        &self.resource_names
    }

    /// Total busy time of resource `r` (sum over its slots).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn resource_busy(&self, r: usize) -> f64 {
        self.resource_busy[r]
    }

    /// Busy fraction of resource `r` over the makespan (per single slot the
    /// value may exceed 1 for multi-slot resources; divide by capacity at
    /// the call site if needed).
    ///
    /// Returns 0 for an idle simulation (zero makespan).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn resource_utilization(&self, r: usize) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.resource_busy[r] / self.makespan
        }
    }

    /// Timing of the task named `name`, if present.
    #[must_use]
    pub fn timing_of(&self, name: &str) -> Option<&TaskTiming> {
        self.timings.iter().find(|t| t.name == name)
    }

    /// Interval between the first start and last finish on resource `r`,
    /// or `None` when no task ran there.
    #[must_use]
    pub fn resource_span(&self, r: usize) -> Option<(f64, f64)> {
        let mut first = f64::INFINITY;
        let mut last = f64::NEG_INFINITY;
        for t in self.timings.iter().filter(|t| t.resource == r) {
            first = first.min(t.start);
            last = last.max(t.finish);
        }
        (first.is_finite() && last.is_finite()).then_some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Resource, Simulation, TaskSpec};

    #[test]
    fn timing_lookup_by_name() {
        let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
        sim.add_task(TaskSpec::new("alpha", 0, 1.0));
        let res = sim.run().unwrap();
        assert!(res.timing_of("alpha").is_some());
        assert!(res.timing_of("beta").is_none());
    }

    #[test]
    fn span_covers_resource_activity() {
        let mut sim = Simulation::new(vec![Resource::new("a", 1), Resource::new("b", 1)]);
        let p = sim.add_task(TaskSpec::new("p", 0, 2.0));
        sim.add_task(TaskSpec::new("c", 1, 1.0).after(p));
        let res = sim.run().unwrap();
        assert_eq!(res.resource_span(0), Some((0.0, 2.0)));
        assert_eq!(res.resource_span(1), Some((2.0, 3.0)));
    }

    #[test]
    fn duration_is_finish_minus_start() {
        let mut sim = Simulation::new(vec![Resource::new("r", 1)]);
        sim.add_task(TaskSpec::new("t", 0, 2.5));
        let res = sim.run().unwrap();
        assert!((res.timings()[0].duration() - 2.5).abs() < 1e-12);
    }
}
