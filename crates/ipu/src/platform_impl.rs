//! [`Platform`] and [`Scalable`] implementations for the IPU model.

use crate::bsp::{layer_compute_time, layer_flops_per_step, nonlayer_stage_time, tiles_for_layer};
use crate::memory::decoder_ipu_memory;
use crate::pipeline::pipeline_parallel;
use crate::Ipu;
use dabench_core::{
    ChipProfile, ComputeUnitSpec, HardwareSpec, Memoizable, MemoryLevelSpec, MemoryLevelUsage,
    MemoryScope, ParallelStrategy, Platform, PlatformError, Scalable, ScalingProfile, TaskProfile,
};
use dabench_model::TrainingWorkload;
use dabench_sim::{steady_state_analysis, PipelineStage};

impl Platform for Ipu {
    fn name(&self) -> &str {
        "graphcore-bow-ipu"
    }

    fn spec(&self) -> HardwareSpec {
        let s = self.ipu_spec();
        HardwareSpec {
            name: "Graphcore Bow IPU".to_owned(),
            compute_units: vec![ComputeUnitSpec {
                kind: "tile".to_owned(),
                count: s.tiles,
            }],
            peak_tflops: s.peak_tflops(),
            memory_levels: vec![
                MemoryLevelSpec {
                    name: "tile-sram".to_owned(),
                    scope: MemoryScope::OnChip,
                    capacity_bytes: s.sram_per_ipu_bytes(),
                    // On-tile bandwidth is not public.
                    bandwidth_bytes_per_s: None,
                },
                MemoryLevelSpec {
                    name: "ddr".to_owned(),
                    scope: MemoryScope::OffChip,
                    capacity_bytes: s.external_ddr_bytes,
                    bandwidth_bytes_per_s: Some(s.external_ddr_bw_bytes_per_s),
                },
            ],
        }
    }

    /// Tier-1 profiling of a single decoder IPU holding all of the model's
    /// layers — the Fig. 9(d) configuration: tile allocation saturates near
    /// four GPT-2-small layers and SRAM overflows at ten.
    fn profile(&self, workload: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
        use dabench_core::obs;
        obs::span(obs::Phase::Execute, "ipu.bsp", || {
            let p = self.profile_inner(workload);
            if let Ok(p) = &p {
                obs::counter("ipu.step_time_s", p.step_time_s);
                obs::counter("ipu.achieved_tflops", p.achieved_tflops);
            }
            p
        })
    }
}

impl Ipu {
    fn profile_inner(&self, workload: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
        let spec = self.ipu_spec();
        let params = self.compiler_params();
        let layers = workload.model().num_layers;

        let mem = decoder_ipu_memory(workload, layers, spec, params);
        if !mem.fits() {
            return Err(PlatformError::OutOfMemory {
                level: "tile-sram".to_owned(),
                required_bytes: mem.total_bytes(),
                capacity_bytes: mem.capacity_bytes,
            });
        }

        // Layers map to disjoint tile regions and pipeline across them;
        // per-layer parallelism is capped by layer scalability and by the
        // equal split of the chip.
        let cap = tiles_for_layer(workload, spec, params);
        let per_layer_tiles = cap.min(spec.tiles / layers.max(1)).max(1);
        let costs = layer_compute_time(workload, per_layer_tiles, spec, params);

        // A companion IPU handles embedding/head/loss; its stage bounds
        // the pipeline for shallow models.
        let mut stages = vec![PipelineStage::new(
            "embedding+head".to_owned(),
            nonlayer_stage_time(workload, spec, params),
        )];
        stages.extend((0..layers).map(|l| PipelineStage::new(format!("l{l}"), costs.total())));
        let report = steady_state_analysis(&stages, workload.batch_size());
        let step_time = report.total_time + params.step_fixed_overhead_s;

        let tiles_used = (per_layer_tiles * layers).min(spec.tiles);
        let tasks: Vec<TaskProfile> = (0..layers)
            .map(|l| TaskProfile::new(format!("l{l}"), 1.0 / costs.total(), per_layer_tiles as f64))
            .collect();

        Ok(ChipProfile {
            unit_usage: vec![("tile".to_owned(), tiles_used, spec.tiles)],
            tasks,
            sections: vec![],
            memory: vec![MemoryLevelUsage {
                name: "tile-sram".to_owned(),
                used_bytes: mem.total_bytes(),
                capacity_bytes: mem.capacity_bytes,
            }],
            // Fig. 9(d) charts the decoder IPU, so efficiency counts the
            // decoder-layer FLOPs only.
            achieved_tflops: layer_flops_per_step(workload) / step_time / 1e12,
            throughput_tokens_per_s: workload.tokens_per_step() as f64 / step_time,
            step_time_s: step_time,
        })
    }
}

impl Memoizable for Ipu {
    fn cache_token(&self) -> String {
        crate::cache_token_of(self.ipu_spec(), self.compiler_params())
    }

    fn cache_key(&self) -> dabench_core::CacheKey {
        self.cache_key
    }
}

impl Scalable for Ipu {
    fn scale(
        &self,
        workload: &TrainingWorkload,
        strategy: ParallelStrategy,
    ) -> Result<ScalingProfile, PlatformError> {
        match strategy {
            ParallelStrategy::PipelineParallel { devices } => {
                let plan =
                    pipeline_parallel(self.ipu_spec(), self.compiler_params(), workload, devices)?;
                let max_layers = plan.stages.iter().map(|s| s.layers).max().unwrap_or(0);
                Ok(ScalingProfile {
                    strategy,
                    throughput_tokens_per_s: plan.throughput_tokens_per_s,
                    communication_fraction: plan.overhead_fraction,
                    per_unit_allocation: plan
                        .stages
                        .iter()
                        .map(|s| {
                            (
                                s.name.clone(),
                                s.tiles_used as f64 / self.ipu_spec().tiles as f64,
                            )
                        })
                        .collect(),
                    detail: vec![("max_layers_per_ipu".to_owned(), max_layers as f64)],
                })
            }
            _ => Err(PlatformError::Unsupported(
                "the IPU scales via pipeline parallelism".to_owned(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::tier1;
    use dabench_model::{ModelConfig, Precision};

    fn w(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            64,
            1024,
            Precision::Fp16,
        )
    }

    #[test]
    fn tflops_rise_then_plateau() {
        // Paper Fig. 9(d): TFLOPs rise to ~4 layers, then plateau.
        let ipu = Ipu::default();
        let t1 = tier1::run(&ipu, &w(1)).unwrap().achieved_tflops;
        let t4 = tier1::run(&ipu, &w(4)).unwrap().achieved_tflops;
        let t8 = tier1::run(&ipu, &w(8)).unwrap().achieved_tflops;
        assert!(t4 > 2.5 * t1, "{t4} vs {t1}");
        let plateau = t8 / t4;
        assert!((0.75..1.25).contains(&plateau), "{plateau}");
    }

    #[test]
    fn plateau_tflops_in_paper_band() {
        // Paper: 91-143 TFLOPs, peak efficiency ~41%.
        let r = tier1::run(&Ipu::default(), &w(6)).unwrap();
        assert!(
            (80.0..160.0).contains(&r.achieved_tflops),
            "{}",
            r.achieved_tflops
        );
        assert!(
            (0.2..0.48).contains(&r.compute_efficiency),
            "{}",
            r.compute_efficiency
        );
    }

    #[test]
    fn memory_grows_linearly_and_fails_at_ten() {
        let ipu = Ipu::default();
        let m4 = tier1::run(&ipu, &w(4))
            .unwrap()
            .memory_utilization_of("tile-sram")
            .unwrap();
        let m8 = tier1::run(&ipu, &w(8))
            .unwrap()
            .memory_utilization_of("tile-sram")
            .unwrap();
        assert!(m8 > 1.8 * m4 * 0.8, "{m4} {m8}");
        let err = ipu.profile(&w(10)).unwrap_err();
        assert!(matches!(err, PlatformError::OutOfMemory { .. }));
    }

    #[test]
    fn roofline_is_memory_bound_at_ddr() {
        let r = tier1::run(&Ipu::default(), &w(6)).unwrap();
        assert_eq!(r.bound, Some(dabench_core::BoundKind::MemoryBound));
    }

    #[test]
    fn scale_supports_only_pp() {
        let ipu = Ipu::default();
        assert!(ipu
            .scale(&w(12), ParallelStrategy::PipelineParallel { devices: 4 })
            .is_ok());
        assert!(matches!(
            ipu.scale(&w(12), ParallelStrategy::TensorParallel { degree: 2 }),
            Err(PlatformError::Unsupported(_))
        ));
    }

    #[test]
    fn tile_allocation_saturates() {
        let ipu = Ipu::default();
        let a2 = tier1::run(&ipu, &w(2))
            .unwrap()
            .allocation_of("tile")
            .unwrap();
        let a6 = tier1::run(&ipu, &w(6))
            .unwrap()
            .allocation_of("tile")
            .unwrap();
        assert!(a6 > a2);
        assert!(a6 > 0.9, "{a6}");
    }
}
