//! Bow-2000 hardware description and compiler tuning parameters.

use serde::{Deserialize, Serialize};

/// Static hardware description of one IPU (a Bow-2000 carries four).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpuSpec {
    /// Tiles per IPU.
    pub tiles: u64,
    /// On-tile SRAM, bytes (Bow: ~624 KB/tile ≈ 900 MB per IPU).
    pub sram_per_tile_bytes: u64,
    /// Hardware threads per tile core.
    pub threads_per_tile: u64,
    /// Peak 16-bit FLOP/s per tile.
    pub peak_flops_per_tile: f64,
    /// All-to-all IPU-Exchange bandwidth, bytes/second.
    pub exchange_bw_bytes_per_s: f64,
    /// IPU-Link bandwidth between IPUs in a Bow-2000, bytes/second.
    pub link_bw_bytes_per_s: f64,
    /// Link bandwidth between chassis (gateway hops), bytes/second.
    pub inter_chassis_bw_bytes_per_s: f64,
    /// Shared external DDR of the Bow-2000, bytes.
    pub external_ddr_bytes: u64,
    /// Effective aggregate streaming bandwidth to the external DDR over
    /// the gateway links, bytes/second.
    pub external_ddr_bw_bytes_per_s: f64,
    /// IPUs per Bow-2000 chassis.
    pub ipus_per_chassis: u64,
}

impl IpuSpec {
    /// The Bow-2000 configuration.
    #[must_use]
    pub fn bow2000() -> Self {
        Self {
            tiles: 1472,
            sram_per_tile_bytes: 624 * 1024,
            threads_per_tile: 6,
            // 1472 tiles × ~238 GFLOP/s ≈ 350 TFLOP/s peak — consistent
            // with the paper's 41% peak efficiency at 143 TFLOPs.
            peak_flops_per_tile: 2.38e11,
            exchange_bw_bytes_per_s: 8e12,
            link_bw_bytes_per_s: 320e9,
            inter_chassis_bw_bytes_per_s: 100e9,
            external_ddr_bytes: 256 << 30,
            external_ddr_bw_bytes_per_s: 180e9,
            ipus_per_chassis: 4,
        }
    }

    /// Total on-tile SRAM per IPU, bytes.
    #[must_use]
    pub fn sram_per_ipu_bytes(&self) -> u64 {
        self.tiles * self.sram_per_tile_bytes
    }

    /// Peak IPU throughput at 16-bit precision, TFLOP/s.
    #[must_use]
    pub fn peak_tflops(&self) -> f64 {
        self.tiles as f64 * self.peak_flops_per_tile / 1e12
    }
}

impl Default for IpuSpec {
    fn default() -> Self {
        Self::bow2000()
    }
}

/// Tuning constants of the (modelled) Poplar compiler and PopTorch runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpuCompilerParams {
    /// FLOPs-per-token one tile should own before extra tiles stop paying
    /// off; sets the per-layer tile demand (the Fig. 9(d) plateau at ~4
    /// GPT-2-small layers comes from `4 × demand ≈ 1472`).
    pub flops_per_token_per_tile: f64,
    /// Sustained fraction of tile peak during compute supersteps.
    pub sustained_tile_efficiency: f64,
    /// Exchange bytes per FLOP of layer work (BSP exchange phases).
    pub exchange_bytes_per_flop: f64,
    /// Fixed BSP sync cost per superstep, seconds.
    pub bsp_sync_s: f64,
    /// Supersteps per decoder layer per pass.
    pub supersteps_per_layer: f64,
    /// Fixed per-step host I/O + weight-update overhead, seconds (drives
    /// the near-linear batch scaling of Fig. 12).
    pub step_fixed_overhead_s: f64,
    /// Per-tile code + runtime reservation, bytes.
    pub code_reserve_bytes_per_ipu: f64,
    /// Fraction of a micro-batch's stored activations resident per layer
    /// (Poplar recomputes the rest).
    pub activation_residency_factor: f64,
    /// Relative compute rate of FP32 versus 16-bit formats (exchange and
    /// sync do not speed up, so the paper's mixed-precision gain is ~22%).
    pub fp32_rate_factor: f64,
    /// Minimum tiles any layer receives.
    pub min_tiles_per_layer: u64,
}

impl Default for IpuCompilerParams {
    fn default() -> Self {
        Self {
            flops_per_token_per_tile: 141_000.0,
            sustained_tile_efficiency: 0.45,
            exchange_bytes_per_flop: 0.001,
            bsp_sync_s: 1.0e-6,
            supersteps_per_layer: 6.0,
            step_fixed_overhead_s: 10.0e-3,
            code_reserve_bytes_per_ipu: 30.0e6,
            activation_residency_factor: 0.2,
            fp32_rate_factor: 0.82,
            min_tiles_per_layer: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bow2000_matches_spec() {
        let s = IpuSpec::bow2000();
        assert_eq!(s.tiles, 1472);
        // ~900 MB of on-tile SRAM.
        let sram = s.sram_per_ipu_bytes() as f64;
        assert!((sram - 900e6).abs() / 900e6 < 0.1, "{sram}");
        assert!((300.0..400.0).contains(&s.peak_tflops()));
    }

    #[test]
    fn defaults_are_sane() {
        let p = IpuCompilerParams::default();
        assert!(p.sustained_tile_efficiency < 1.0);
        assert!(p.fp32_rate_factor < 1.0);
        // Four GPT-2-small layers should roughly fill the chip:
        // layer flops/token ≈ 52M → demand ≈ 368 tiles.
        let demand = 52.0e6 / p.flops_per_token_per_tile;
        assert!((320.0..420.0).contains(&demand), "{demand}");
    }
}
