//! Per-IPU memory accounting (the Fig. 9(d) OOM mechanism).

use crate::chip::{IpuCompilerParams, IpuSpec};
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};

/// Memory footprint of one IPU's assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpuMemoryUse {
    /// Weights + gradients + optimizer state, bytes.
    pub state_bytes: u64,
    /// Resident activations, bytes.
    pub activation_bytes: u64,
    /// Code and runtime reservation, bytes.
    pub code_bytes: u64,
    /// IPU SRAM capacity, bytes.
    pub capacity_bytes: u64,
}

impl IpuMemoryUse {
    /// Total bytes in use.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.state_bytes + self.activation_bytes + self.code_bytes
    }

    /// Whether the assignment fits in SRAM.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.total_bytes() <= self.capacity_bytes
    }

    /// Used fraction of the IPU's SRAM.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.total_bytes() as f64 / self.capacity_bytes as f64
    }
}

/// Memory footprint of an IPU holding `layers` decoder layers.
///
/// The IPU keeps weights, gradients and FP32 optimizer moments entirely in
/// SRAM (no flexible spill path — the paper's stated limitation), plus the
/// resident share of one in-flight micro-batch's activations per layer.
#[must_use]
pub fn decoder_ipu_memory(
    workload: &TrainingWorkload,
    layers: u64,
    spec: &IpuSpec,
    params: &IpuCompilerParams,
) -> IpuMemoryUse {
    let eb = workload.precision().bytes_per_element();
    let layer_params = workload.model().layer_parameter_count();
    let state = layers * layer_params * (2 * eb + 8);

    // Stored activations of one layer for ONE sequence, at the residency
    // factor (Poplar recomputes the rest for backward).
    let per_layer_act_elems: u64 = dabench_core::compile::training_graph(workload)
        .summary()
        .layer0_forward_out_elems
        / workload.batch_size();
    let acts = (layers as f64
        * per_layer_act_elems as f64
        * eb as f64
        * params.activation_residency_factor) as u64;

    IpuMemoryUse {
        state_bytes: state,
        activation_bytes: acts,
        code_bytes: params.code_reserve_bytes_per_ipu as u64,
        capacity_bytes: spec.sram_per_ipu_bytes(),
    }
}

/// Memory footprint of the dedicated embedding IPU.
#[must_use]
pub fn embedding_ipu_memory(
    workload: &TrainingWorkload,
    spec: &IpuSpec,
    params: &IpuCompilerParams,
) -> IpuMemoryUse {
    let eb = workload.precision().bytes_per_element();
    let emb = workload.model().embedding_parameter_count();
    IpuMemoryUse {
        state_bytes: emb * (2 * eb + 8),
        activation_bytes: (workload.seq_len() * workload.model().hidden_size * eb * 2),
        code_bytes: params.code_reserve_bytes_per_ipu as u64,
        capacity_bytes: spec.sram_per_ipu_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn w(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            16,
            1024,
            Precision::Fp16,
        )
    }

    fn mem(layers: u64) -> IpuMemoryUse {
        decoder_ipu_memory(
            &w(layers),
            layers,
            &IpuSpec::bow2000(),
            &IpuCompilerParams::default(),
        )
    }

    #[test]
    fn memory_grows_linearly_with_layers() {
        let m2 = mem(2).total_bytes();
        let m4 = mem(4).total_bytes();
        let m6 = mem(6).total_bytes();
        assert_eq!(m6 - m4, m4 - m2);
    }

    #[test]
    fn fails_at_ten_gpt2_small_layers() {
        // The paper's Fig. 9(d): execution fails at 10 layers (~70M params).
        assert!(mem(9).fits(), "9 layers should fit: {:?}", mem(9));
        assert!(!mem(10).fits(), "10 layers should OOM: {:?}", mem(10));
    }

    #[test]
    fn fp32_ooms_earlier() {
        let w32 = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 16, 1024, Precision::Fp32);
        let m = decoder_ipu_memory(&w32, 6, &IpuSpec::bow2000(), &IpuCompilerParams::default());
        assert!(m.total_bytes() > mem(6).total_bytes());
    }

    #[test]
    fn embedding_ipu_fits_comfortably() {
        let m = embedding_ipu_memory(&w(4), &IpuSpec::bow2000(), &IpuCompilerParams::default());
        assert!(m.fits());
        assert!(m.utilization() > 0.3, "{}", m.utilization());
    }

    #[test]
    fn activations_are_batch_independent() {
        // Only the in-flight micro-batch is resident.
        let a = decoder_ipu_memory(
            &w(4).with_batch_size(4),
            4,
            &IpuSpec::bow2000(),
            &IpuCompilerParams::default(),
        );
        let b = decoder_ipu_memory(
            &w(4).with_batch_size(64),
            4,
            &IpuSpec::bow2000(),
            &IpuCompilerParams::default(),
        );
        assert_eq!(a.activation_bytes, b.activation_bytes);
    }
}
