//! BSP (bulk-synchronous parallel) cost model for IPU compute.

use crate::chip::{IpuCompilerParams, IpuSpec};
use dabench_model::{Precision, TrainingWorkload};
use serde::{Deserialize, Serialize};

/// Decomposed BSP costs of one decoder layer processing one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BspCosts {
    /// Compute-phase time, seconds.
    pub compute_s: f64,
    /// Exchange-phase time, seconds.
    pub exchange_s: f64,
    /// Sync-phase time, seconds.
    pub sync_s: f64,
}

impl BspCosts {
    /// Total superstep time.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute_s + self.exchange_s + self.sync_s
    }
}

pub(crate) fn precision_rate_factor(p: Precision, params: &IpuCompilerParams) -> f64 {
    match p {
        Precision::Fp32 => params.fp32_rate_factor,
        // FP8 is a KV-cache storage format; tile compute still runs at
        // the half-width rate.
        Precision::Fp16 | Precision::Bf16 | Precision::Cb16 | Precision::Fp8 => 1.0,
    }
}

/// Tiles the compiler assigns to one decoder layer (per-layer parallelism
/// is capped by communication, so small layer counts under-fill the chip —
/// the rising edge of Fig. 9(d)).
#[must_use]
pub fn tiles_for_layer(
    workload: &TrainingWorkload,
    spec: &IpuSpec,
    params: &IpuCompilerParams,
) -> u64 {
    let model = workload.model();
    // Per-token training FLOPs of one layer (fwd + bwd ≈ 3 × fwd).
    let layer_flops_per_token = 3.0
        * dabench_core::compile::training_graph(workload)
            .summary()
            .layer0_forward_flops
        / workload.tokens_per_step() as f64;
    let demand = (layer_flops_per_token / params.flops_per_token_per_tile).ceil() as u64;
    // The chip-share clamp caps elastic demand; the minimum wins last so a
    // layer never drops below the schedulable floor.
    demand
        .min(spec.tiles / model.num_layers.min(spec.tiles).max(1))
        .max(params.min_tiles_per_layer)
}

/// BSP cost of one decoder layer processing one sequence on `tiles` tiles.
#[must_use]
pub fn layer_compute_time(
    workload: &TrainingWorkload,
    tiles: u64,
    spec: &IpuSpec,
    params: &IpuCompilerParams,
) -> BspCosts {
    let rate = precision_rate_factor(workload.precision(), params);
    let tokens = workload.tokens_per_step() as f64;
    let layer_flops_per_seq = 3.0
        * dabench_core::compile::training_graph(workload)
            .summary()
            .layer0_forward_flops
        / tokens
        * workload.seq_len() as f64;
    let compute = layer_flops_per_seq
        / (tiles as f64 * spec.peak_flops_per_tile * params.sustained_tile_efficiency * rate);
    let exchange =
        layer_flops_per_seq * params.exchange_bytes_per_flop / spec.exchange_bw_bytes_per_s;
    let sync = params.supersteps_per_layer * params.bsp_sync_s;
    BspCosts {
        compute_s: compute,
        exchange_s: exchange,
        sync_s: sync,
    }
}

/// Total FLOPs per step attributable to decoder layers (all phases).
#[must_use]
pub fn layer_flops_per_step(workload: &TrainingWorkload) -> f64 {
    dabench_core::compile::training_graph(workload)
        .summary()
        .layer_flops
}

/// Stage time of the embedding/head IPU processing one sequence: all
/// non-decoder work (embedding, final norm, LM head, loss) mapped across
/// the full tile array.
#[must_use]
pub fn nonlayer_stage_time(
    workload: &TrainingWorkload,
    spec: &IpuSpec,
    params: &IpuCompilerParams,
) -> f64 {
    let rate = precision_rate_factor(workload.precision(), params);
    let nonlayer_flops = workload.training_flops_per_step() - layer_flops_per_step(workload);
    let per_item = nonlayer_flops / workload.batch_size() as f64;
    per_item
        / (spec.tiles as f64 * spec.peak_flops_per_tile * params.sustained_tile_efficiency * rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::ModelConfig;

    fn w(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            16,
            1024,
            Precision::Fp16,
        )
    }

    #[test]
    fn layer_demand_near_quarter_chip() {
        let spec = IpuSpec::bow2000();
        let tiles = tiles_for_layer(&w(1), &spec, &IpuCompilerParams::default());
        assert!((300..450).contains(&tiles), "{tiles}");
    }

    #[test]
    fn tiles_shrink_when_many_layers_share_the_chip() {
        let spec = IpuSpec::bow2000();
        let p = IpuCompilerParams::default();
        let few = tiles_for_layer(&w(2), &spec, &p);
        let many = tiles_for_layer(&w(9), &spec, &p);
        assert!(many < few, "{many} !< {few}");
    }

    #[test]
    fn more_tiles_means_faster_compute() {
        let spec = IpuSpec::bow2000();
        let p = IpuCompilerParams::default();
        let slow = layer_compute_time(&w(4), 100, &spec, &p);
        let fast = layer_compute_time(&w(4), 400, &spec, &p);
        assert!(fast.compute_s < slow.compute_s);
        // Exchange does not depend on the tile count.
        assert!((fast.exchange_s - slow.exchange_s).abs() < 1e-12);
    }

    #[test]
    fn compute_dominates_supersteps() {
        let spec = IpuSpec::bow2000();
        let p = IpuCompilerParams::default();
        let c = layer_compute_time(&w(4), 368, &spec, &p);
        assert!(c.compute_s > c.sync_s);
        assert!(c.total() > c.compute_s);
    }

    #[test]
    fn fp32_is_slower() {
        let spec = IpuSpec::bow2000();
        let p = IpuCompilerParams::default();
        let w32 = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 4), 16, 1024, Precision::Fp32);
        let half = layer_compute_time(&w(4), 368, &spec, &p);
        let full = layer_compute_time(&w32, 368, &spec, &p);
        assert!(full.compute_s > half.compute_s);
    }
}
