//! # dabench-ipu
//!
//! A performance model of the Graphcore Bow-2000 / IPU platform, faithful
//! to the execution strategy of Sec. III-C of the DABench-LLM paper:
//!
//! - each IPU is a 1,472-tile MIMD processor executing in BSP supersteps
//!   (compute → sync → exchange);
//! - training a language model uses **pipeline parallelism**: the embedding
//!   layer gets a dedicated IPU, decoder layers are grouped onto the
//!   remaining IPUs, and overall throughput is set by the most heavily
//!   loaded IPU (Fig. 11(c));
//! - all weights, gradients and optimizer state must live in on-tile SRAM;
//!   there is no flexible spill path, so the decoder IPU runs out of memory
//!   at ~10 GPT-2-small layers (~70M parameters), the paper's Fig. 9(d)
//!   failure;
//! - tile allocation saturates around four decoder layers, below which
//!   compute is tile-starved (the rising edge of Fig. 9(d)).
//!
//! On-tile memory note: the paper's Fig. 3 text says 64 KB/tile, but the
//! Bow product spec (and the paper's own OOM point) imply ~624 KB/tile;
//! we use the latter (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use dabench_core::tier1;
//! use dabench_model::{ModelConfig, Precision, TrainingWorkload};
//! use dabench_ipu::Ipu;
//!
//! let ipu = Ipu::default();
//! let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 16, 1024, Precision::Fp16);
//! let report = tier1::run(&ipu, &w).unwrap();
//! assert!(report.achieved_tflops > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsp;
mod chip;
mod degrade;
mod infer;
mod memory;
mod pipeline;
mod platform_impl;

pub use bsp::{
    layer_compute_time, layer_flops_per_step, nonlayer_stage_time, tiles_for_layer, BspCosts,
};
pub use chip::{IpuCompilerParams, IpuSpec};
pub use degrade::surviving_devices;
pub use infer::{admission_probe, infer_model};
pub use memory::{decoder_ipu_memory, embedding_ipu_memory, IpuMemoryUse};
pub use pipeline::{pipeline_parallel, pipeline_with_allocation, PipelinePlan, StageLoad};

/// The Graphcore Bow-2000 / IPU platform model.
#[derive(Debug, Clone)]
pub struct Ipu {
    spec: IpuSpec,
    params: IpuCompilerParams,
    // Precomputed at construction so memo-cache lookups allocate nothing.
    cache_key: dabench_core::CacheKey,
}

impl Default for Ipu {
    fn default() -> Self {
        Self::new(IpuSpec::default(), IpuCompilerParams::default())
    }
}

pub(crate) fn cache_token_of(spec: &IpuSpec, params: &IpuCompilerParams) -> String {
    format!("ipu|{spec:?}|{params:?}")
}

impl Ipu {
    /// Create an IPU model with explicit hardware/compiler parameters.
    #[must_use]
    pub fn new(spec: IpuSpec, params: IpuCompilerParams) -> Self {
        let cache_key = dabench_core::CacheKey::of_token(&cache_token_of(&spec, &params));
        Self {
            spec,
            params,
            cache_key,
        }
    }

    /// Hardware description in use.
    #[must_use]
    pub fn ipu_spec(&self) -> &IpuSpec {
        &self.spec
    }

    /// Compiler parameters in use.
    #[must_use]
    pub fn compiler_params(&self) -> &IpuCompilerParams {
        &self.params
    }
}
