//! Fault remapping: rebalancing the BSP pipeline over surviving IPUs.
//!
//! The IPU's pipeline-parallel execution recovers from a lost device by
//! re-grouping decoder layers over the chassis' surviving IPUs — the same
//! balanced-contiguous split Poplar would recompile, only with one fewer
//! stage. Tile faults thin every surviving IPU's fabric (layer compute
//! slows as per-layer tile caps shrink), and link faults stretch the
//! stage-to-stage boundary transfers.

use crate::chip::IpuSpec;
use crate::pipeline::{pipeline_parallel, PipelinePlan};
use crate::Ipu;
use dabench_core::{
    ChipProfile, Degradable, DegradedProfile, FaultKind, FaultSet, MemoryLevelUsage, PlatformError,
    RecoveryCost, TaskProfile,
};
use dabench_model::TrainingWorkload;
use dabench_sim::{CheckpointModel, RetryPolicy};

/// Coarse wall-clock cost of re-compiling one pipeline stage's Poplar
/// program, seconds.
const RECOMPILE_S_PER_STAGE: f64 = 25.0;

/// IPUs of one chassis still usable under `faults`.
#[must_use]
pub fn surviving_devices(spec: &IpuSpec, faults: &FaultSet) -> u32 {
    let chassis = spec.ipus_per_chassis as u32;
    let dropped = faults
        .dropped_devices()
        .iter()
        .filter(|&&i| i < chassis)
        .count() as u32;
    chassis - dropped
}

/// Build the surviving per-IPU hardware description under `faults`.
///
/// # Errors
///
/// [`PlatformError::DeviceFault`] when no tiles survive.
fn degraded_ipu_spec(spec: &IpuSpec, faults: &FaultSet) -> Result<IpuSpec, PlatformError> {
    let tile_loss = (faults.dead_unit_fraction("tile") + faults.dead_pe_fraction()).min(1.0);
    let link = faults.link_retained_fraction();
    let tiles = ((spec.tiles as f64) * (1.0 - tile_loss)).floor() as u64;
    if tiles == 0 {
        return Err(PlatformError::DeviceFault {
            unit: "tile".to_owned(),
            detail: "no usable tiles survive on any IPU".to_owned(),
        });
    }
    let mut out = spec.clone();
    out.tiles = tiles;
    out.link_bw_bytes_per_s *= link;
    out.inter_chassis_bw_bytes_per_s *= link;
    out.external_ddr_bw_bytes_per_s *= link;
    Ok(out)
}

/// Synthesize a [`ChipProfile`] from a pipeline plan over `devices` IPUs.
fn profile_of(plan: &PipelinePlan, spec: &IpuSpec, devices: u32) -> ChipProfile {
    let tiles_used: u64 = plan.stages.iter().map(|s| s.tiles_used).sum();
    let peak_util = plan
        .stages
        .iter()
        .map(|s| s.memory_utilization)
        .fold(0.0f64, f64::max);
    let capacity = spec.sram_per_ipu_bytes();
    ChipProfile {
        unit_usage: vec![(
            "tile".to_owned(),
            tiles_used,
            u64::from(devices) * spec.tiles,
        )],
        tasks: plan
            .stages
            .iter()
            .map(|s| {
                TaskProfile::new(
                    s.name.clone(),
                    1.0 / s.stage_time_s.max(f64::MIN_POSITIVE),
                    s.tiles_used as f64,
                )
            })
            .collect(),
        sections: vec![],
        memory: vec![MemoryLevelUsage {
            name: "tile-sram".to_owned(),
            used_bytes: (peak_util * capacity as f64) as u64,
            capacity_bytes: capacity,
        }],
        achieved_tflops: plan.achieved_tflops,
        throughput_tokens_per_s: plan.throughput_tokens_per_s,
        step_time_s: plan.step_time_s,
    }
}

impl Degradable for Ipu {
    fn fault_kind(&self) -> FaultKind {
        FaultKind::BspPipeline
    }

    fn degrade(
        &self,
        workload: &TrainingWorkload,
        faults: &FaultSet,
    ) -> Result<DegradedProfile, PlatformError> {
        let spec = self.ipu_spec();
        let layers = workload.model().num_layers;
        // Healthy baseline: a full chassis pipeline (never more decoder
        // IPUs than layers), so healthy and degraded are apples-to-apples
        // and deep models need not fit a single tier-1 decoder IPU.
        let chassis = spec.ipus_per_chassis.min(layers + 1).max(2) as u32;
        let healthy_plan = pipeline_parallel(spec, self.compiler_params(), workload, chassis)?;
        let healthy = profile_of(&healthy_plan, spec, chassis);
        if faults.is_empty() {
            return Ok(DegradedProfile {
                degraded: healthy.clone(),
                healthy,
                recovery_cost: RecoveryCost::default(),
            });
        }

        let survivors = surviving_devices(spec, faults).min(chassis);
        if survivors < 2 {
            return Err(PlatformError::DeviceFault {
                unit: "ipu".to_owned(),
                detail: format!(
                    "{survivors} of {chassis} IPUs survive; training needs an \
                     embedding IPU plus at least one decoder IPU"
                ),
            });
        }
        let degraded_spec = degraded_ipu_spec(spec, faults)?;
        let devices = u32::try_from(u64::from(survivors).min(layers + 1)).unwrap_or(2);
        let plan = pipeline_parallel(&degraded_spec, self.compiler_params(), workload, devices)?;
        let degraded = profile_of(&plan, &degraded_spec, devices);

        let policy = RetryPolicy::default();
        let transient_penalty: f64 = faults
            .transient_stalls()
            .iter()
            .map(|&(_, stall)| policy.retry_penalty_s(stall, 1))
            .sum();
        let recovery_cost = RecoveryCost {
            remap_time_s: if faults.has_permanent() {
                plan.stages.len() as f64 * RECOMPILE_S_PER_STAGE
            } else {
                0.0
            },
            lost_work_s: transient_penalty
                + if faults.has_permanent() {
                    CheckpointModel::default().expected_lost_work_s()
                } else {
                    0.0
                },
        };
        Ok(DegradedProfile {
            healthy,
            degraded,
            recovery_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::Fault;
    use dabench_model::{ModelConfig, Precision};

    fn w(layers: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            64,
            1024,
            Precision::Fp16,
        )
    }

    #[test]
    fn dropped_ipu_rebalances_pipeline() {
        let ipu = Ipu::default();
        let faults = FaultSet::new(vec![Fault::DroppedDevice { index: 1 }]);
        let d = ipu.degrade(&w(12), &faults).unwrap();
        // 12 layers over 2 decoder IPUs (6 each) instead of 3 (4 each).
        assert!(d.degraded.throughput_tokens_per_s < d.healthy.throughput_tokens_per_s);
        assert!(d.degraded.throughput_tokens_per_s > 0.0);
        assert_eq!(d.degraded.tasks.len(), 3); // embedding + 2 decoder stages
        assert!(d.recovery_cost.remap_time_s > 0.0);
    }

    #[test]
    fn tile_loss_slows_stages() {
        let ipu = Ipu::default();
        let faults = FaultSet::new(vec![Fault::DeadUnits {
            kind: "tile".to_owned(),
            fraction: 0.3,
        }]);
        let d = ipu.degrade(&w(12), &faults).unwrap();
        let retention = d.throughput_retention();
        assert!(retention < 1.0, "{retention}");
        assert!(retention > 0.0);
    }

    #[test]
    fn link_degradation_stretches_boundary_transfers() {
        let ipu = Ipu::default();
        let faults = FaultSet::new(vec![Fault::LinkDegraded {
            retained_fraction: 0.1,
        }]);
        let d = ipu.degrade(&w(12), &faults).unwrap();
        assert!(d.throughput_retention() < 1.0);
        // Links are not the bottleneck: a 10x link cut costs far less than
        // a 10x throughput hit.
        assert!(d.throughput_retention() > 0.5);
    }

    #[test]
    fn losing_the_chassis_is_a_device_fault() {
        let ipu = Ipu::default();
        let faults = FaultSet::new(vec![
            Fault::DroppedDevice { index: 1 },
            Fault::DroppedDevice { index: 2 },
            Fault::DroppedDevice { index: 3 },
        ]);
        assert!(matches!(
            ipu.degrade(&w(12), &faults),
            Err(PlatformError::DeviceFault { .. })
        ));
    }

    #[test]
    fn empty_fault_set_is_identity() {
        let ipu = Ipu::default();
        let d = ipu.degrade(&w(6), &FaultSet::default()).unwrap();
        assert_eq!(d.healthy, d.degraded);
        assert_eq!(d.recovery_cost.total_s(), 0.0);
    }
}
