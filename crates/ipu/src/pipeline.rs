//! Pipeline-parallel execution across IPUs (Sec. III-C / VI-A.3c).

use crate::bsp::{layer_compute_time, nonlayer_stage_time, tiles_for_layer};
use crate::chip::{IpuCompilerParams, IpuSpec};
use crate::memory::{decoder_ipu_memory, embedding_ipu_memory};
use dabench_core::PlatformError;
use dabench_graph::partition::balanced_contiguous;
use dabench_model::TrainingWorkload;
use dabench_sim::{steady_state_analysis, PipelineStage};
use serde::{Deserialize, Serialize};

/// Load and timing of one pipeline stage (one IPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLoad {
    /// Stage label, e.g. `"ipu1 (4 layers)"`.
    pub name: String,
    /// Decoder layers assigned (0 for the embedding IPU).
    pub layers: u64,
    /// Stage time for one micro-batch (one sequence), seconds.
    pub stage_time_s: f64,
    /// Tiles in use on the IPU.
    pub tiles_used: u64,
    /// SRAM utilization (`0..=1`).
    pub memory_utilization: f64,
}

/// Outcome of a pipeline-parallel execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// Per-IPU stage loads (embedding IPU first).
    pub stages: Vec<StageLoad>,
    /// Index of the bottleneck stage.
    pub bottleneck_stage: usize,
    /// Wall-clock time of one optimizer step, seconds.
    pub step_time_s: f64,
    /// Training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Achieved compute throughput over all IPUs, TFLOP/s.
    pub achieved_tflops: f64,
    /// Fraction of the step lost to pipeline fill/drain and host I/O.
    pub overhead_fraction: f64,
}

/// Run `workload` with its decoder layers distributed per `allocation`
/// (layers per decoder IPU); an embedding IPU is always prepended.
///
/// This is the Fig. 11(c) interface: explicit, possibly unbalanced layer
/// allocations. Throughput is set by the most heavily loaded IPU.
///
/// # Errors
///
/// - [`PlatformError::Unsupported`] if the allocation does not cover the
///   model's layers;
/// - [`PlatformError::OutOfMemory`] if any IPU's assignment exceeds SRAM.
pub fn pipeline_with_allocation(
    spec: &IpuSpec,
    params: &IpuCompilerParams,
    workload: &TrainingWorkload,
    allocation: &[u64],
) -> Result<PipelinePlan, PlatformError> {
    use dabench_core::obs;
    obs::span(obs::Phase::Execute, "ipu.pipeline", || {
        let plan = pipeline_with_allocation_inner(spec, params, workload, allocation);
        if let Ok(p) = &plan {
            obs::counter("ipu.stages", p.stages.len() as f64);
            obs::counter("ipu.step_time_s", p.step_time_s);
            obs::counter("ipu.overhead_fraction", p.overhead_fraction);
        }
        plan
    })
}

fn pipeline_with_allocation_inner(
    spec: &IpuSpec,
    params: &IpuCompilerParams,
    workload: &TrainingWorkload,
    allocation: &[u64],
) -> Result<PipelinePlan, PlatformError> {
    let total: u64 = allocation.iter().sum();
    if total != workload.model().num_layers || allocation.is_empty() {
        return Err(PlatformError::Unsupported(format!(
            "allocation covers {total} layers, model has {}",
            workload.model().num_layers
        )));
    }

    // Embedding IPU.
    let emb_mem = embedding_ipu_memory(workload, spec, params);
    if !emb_mem.fits() {
        return Err(PlatformError::OutOfMemory {
            level: "ipu-sram".to_owned(),
            required_bytes: emb_mem.total_bytes(),
            capacity_bytes: emb_mem.capacity_bytes,
        });
    }
    // IPU0 handles the embedding, final norm, LM head and loss.
    let layer_tiles = tiles_for_layer(workload, spec, params);
    let mut stages = vec![StageLoad {
        name: "ipu0 (embedding+head)".to_owned(),
        layers: 0,
        stage_time_s: nonlayer_stage_time(workload, spec, params),
        tiles_used: spec.tiles,
        memory_utilization: emb_mem.utilization(),
    }];

    // Per-item boundary tensor shipped between consecutive stages.
    let boundary_bytes = (workload.seq_len()
        * workload.model().hidden_size
        * workload.precision().bytes_per_element()) as f64;
    for (i, &layers) in allocation.iter().enumerate() {
        let mem = decoder_ipu_memory(workload, layers, spec, params);
        if !mem.fits() {
            return Err(PlatformError::OutOfMemory {
                level: "ipu-sram".to_owned(),
                required_bytes: mem.total_bytes(),
                capacity_bytes: mem.capacity_bytes,
            });
        }
        // Layers on one IPU share its tiles; per-layer parallelism is
        // capped by the layer's own scalability.
        let per_layer_tiles = layer_tiles.min(spec.tiles / layers.max(1)).max(1);
        let costs = layer_compute_time(workload, per_layer_tiles, spec, params);
        // Stage-to-stage transfer: IPU-Link inside a chassis, the slower
        // gateway hop when the pipeline spans chassis (fwd + bwd tensors).
        let link_bw = if (i + 1) as u64 >= spec.ipus_per_chassis {
            spec.inter_chassis_bw_bytes_per_s
        } else {
            spec.link_bw_bytes_per_s
        };
        let transfer = 2.0 * boundary_bytes / link_bw;
        stages.push(StageLoad {
            name: format!("ipu{} ({layers} layers)", i + 1),
            layers,
            stage_time_s: layers as f64 * costs.total() + transfer,
            tiles_used: (per_layer_tiles * layers).min(spec.tiles),
            memory_utilization: mem.utilization(),
        });
    }

    let pipeline: Vec<PipelineStage> = stages
        .iter()
        .map(|s| PipelineStage::new(s.name.clone(), s.stage_time_s))
        .collect();
    let report = steady_state_analysis(&pipeline, workload.batch_size());
    let step_time = report.total_time + params.step_fixed_overhead_s;

    let flops = dabench_core::compile::training_graph(workload)
        .summary()
        .total_flops;
    Ok(PipelinePlan {
        bottleneck_stage: report.bottleneck_index,
        step_time_s: step_time,
        throughput_tokens_per_s: workload.tokens_per_step() as f64 / step_time,
        achieved_tflops: flops / step_time / 1e12,
        overhead_fraction: 1.0
            - (workload.batch_size() as f64 * report.bottleneck_time) / step_time,
        stages,
    })
}

/// Run `workload` pipeline-parallel over `devices` IPUs with balanced layer
/// grouping (one embedding IPU + `devices − 1` decoder IPUs).
///
/// # Errors
///
/// [`PlatformError::Unsupported`] for fewer than two devices (training
/// needs an embedding IPU plus at least one decoder IPU), or more decoder
/// IPUs than layers; [`PlatformError::OutOfMemory`] as in
/// [`pipeline_with_allocation`].
pub fn pipeline_parallel(
    spec: &IpuSpec,
    params: &IpuCompilerParams,
    workload: &TrainingWorkload,
    devices: u32,
) -> Result<PipelinePlan, PlatformError> {
    if devices < 2 {
        return Err(PlatformError::Unsupported(
            "IPU training needs ≥ 2 devices (embedding + decoders)".to_owned(),
        ));
    }
    let decoder_ipus = u64::from(devices) - 1;
    let layers = workload.model().num_layers;
    if decoder_ipus > layers {
        return Err(PlatformError::Unsupported(format!(
            "{decoder_ipus} decoder IPUs for only {layers} layers"
        )));
    }
    let weights = vec![1.0; layers as usize];
    let partition =
        balanced_contiguous(&weights, decoder_ipus as usize).expect("valid partition arguments");
    let allocation: Vec<u64> = partition.sizes().iter().map(|&s| s as u64).collect();
    pipeline_with_allocation(spec, params, workload, &allocation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn w(layers: u64, batch: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            batch,
            1024,
            Precision::Fp16,
        )
    }

    fn spec() -> IpuSpec {
        IpuSpec::bow2000()
    }

    fn params() -> IpuCompilerParams {
        IpuCompilerParams::default()
    }

    #[test]
    fn throughput_inverse_in_max_layers() {
        // Paper Fig. 11(c): throughput is set by the most loaded IPU.
        let balanced =
            pipeline_with_allocation(&spec(), &params(), &w(12, 64), &[4, 4, 4]).unwrap();
        let skewed = pipeline_with_allocation(&spec(), &params(), &w(12, 64), &[6, 3, 3]).unwrap();
        assert!(balanced.throughput_tokens_per_s > skewed.throughput_tokens_per_s);
        let ratio = balanced.throughput_tokens_per_s / skewed.throughput_tokens_per_s;
        // Bottleneck 4 vs 6 layers → ≈ 1.5× before overheads.
        assert!((1.15..1.55).contains(&ratio), "{ratio}");
    }

    #[test]
    fn bottleneck_is_most_loaded_ipu() {
        let plan = pipeline_with_allocation(&spec(), &params(), &w(12, 64), &[2, 7, 3]).unwrap();
        assert_eq!(plan.bottleneck_stage, 2); // ipu2 holds 7 layers
    }

    #[test]
    fn balanced_grouping_from_devices() {
        let plan = pipeline_parallel(&spec(), &params(), &w(12, 64), 4).unwrap();
        let layers: Vec<u64> = plan.stages.iter().map(|s| s.layers).collect();
        assert_eq!(layers, vec![0, 4, 4, 4]);
    }

    #[test]
    fn oom_when_one_ipu_holds_ten_layers() {
        let err =
            pipeline_with_allocation(&spec(), &params(), &w(12, 64), &[10, 1, 1]).unwrap_err();
        assert!(matches!(err, PlatformError::OutOfMemory { .. }));
    }

    #[test]
    fn too_few_devices_rejected() {
        let err = pipeline_parallel(&spec(), &params(), &w(4, 16), 1).unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
    }

    #[test]
    fn allocation_must_cover_model() {
        let err = pipeline_with_allocation(&spec(), &params(), &w(12, 16), &[4, 4]).unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
    }

    #[test]
    fn batch_scaling_near_linear() {
        // Paper Fig. 12: IPU throughput scales near-linearly with batch in
        // the measured range (pipeline fill and host overhead amortize).
        let t1 = pipeline_parallel(&spec(), &params(), &w(8, 1), 3)
            .unwrap()
            .throughput_tokens_per_s;
        let t8 = pipeline_parallel(&spec(), &params(), &w(8, 8), 3)
            .unwrap()
            .throughput_tokens_per_s;
        let scaling = t8 / t1;
        // Fill/drain and host overhead amortize strongly at small batch.
        assert!(scaling > 2.2, "{scaling}");
    }

    #[test]
    fn mixed_precision_gain_about_22_percent() {
        // Paper Table IV: Full 154k vs Mixed 188k (+22%).
        let full =
            TrainingWorkload::new(ModelConfig::gpt2_probe(768, 8), 64, 1024, Precision::Fp32);
        let mixed = full.with_precision(Precision::Fp16);
        let t_full = pipeline_parallel(&spec(), &params(), &full, 4)
            .unwrap()
            .throughput_tokens_per_s;
        let t_mixed = pipeline_parallel(&spec(), &params(), &mixed, 4)
            .unwrap()
            .throughput_tokens_per_s;
        let gain = t_mixed / t_full - 1.0;
        assert!((0.1..0.35).contains(&gain), "{gain}");
    }

    #[test]
    fn deeper_models_need_more_ipus() {
        // 30 layers across 16 IPUs (15 decoder IPUs) works; across 4 IPUs
        // (3 decoder IPUs → 10 layers each) OOMs — the Table III pattern.
        assert!(pipeline_parallel(&spec(), &params(), &w(30, 32), 16).is_ok());
        assert!(matches!(
            pipeline_parallel(&spec(), &params(), &w(30, 32), 4),
            Err(PlatformError::OutOfMemory { .. })
        ));
    }
}
