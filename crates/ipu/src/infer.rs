//! IPU serving model: tile SRAM when the model fits, external DDR when not.
//!
//! The Bow IPU has the sharpest memory cliff of the four platforms. A model
//! whose weights + KV cache fit in the ~900 MB of tile SRAM decodes at the
//! 8 TB/s exchange rate; one byte past that and everything streams from the
//! chassis DDR at 180 GB/s — a 40× bandwidth drop, not a gradual slide.

use crate::chip::{IpuCompilerParams, IpuSpec};
use dabench_core::{max_admissible_batch, AdmissionProbe, InferModel};
use dabench_model::InferenceWorkload;

/// Build the serving model of one IPU for `workload`.
///
/// The workload picks the memory level: its weights + peak KV cache either
/// fit in tile SRAM or force the external-DDR path. Per-step overhead is
/// the BSP sync chain through every layer.
#[must_use]
pub fn infer_model(
    spec: &IpuSpec,
    params: &IpuCompilerParams,
    workload: &InferenceWorkload,
) -> InferModel {
    let footprint = workload
        .weight_bytes()
        .saturating_add(workload.kv_cache_peak_bytes());
    let sram = spec.tiles * spec.sram_per_tile_bytes;
    let (level, capacity, bw) = if footprint <= sram {
        ("tile-sram", sram, spec.exchange_bw_bytes_per_s)
    } else {
        (
            "external-ddr",
            spec.external_ddr_bytes,
            spec.external_ddr_bw_bytes_per_s,
        )
    };
    let sync_chain =
        workload.model().num_layers as f64 * params.supersteps_per_layer * params.bsp_sync_s;
    InferModel {
        platform: "ipu".into(),
        peak_tflops: spec.peak_tflops(),
        sustained_efficiency: params.sustained_tile_efficiency,
        mem_bw_bytes_per_s: bw,
        kv_level: level.into(),
        kv_capacity_bytes: capacity,
        step_overhead_s: sync_chain,
    }
}

/// Probe the IPU's admission wall for `workload`'s shape: the largest
/// batch in `1..=limit` that fits *some* memory level. The model is
/// re-derived per candidate batch because the level choice (tile SRAM vs
/// external DDR) is itself workload-dependent — the wall is the DDR
/// capacity, but small shapes must still be checked against the level
/// they would actually serve from.
#[must_use]
pub fn admission_probe(
    spec: &IpuSpec,
    params: &IpuCompilerParams,
    workload: &InferenceWorkload,
    limit: u64,
) -> AdmissionProbe {
    max_admissible_batch(workload, limit, |w| infer_model(spec, params, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_core::profile_inference;
    use dabench_model::{ModelConfig, Precision};

    fn w(cfg: ModelConfig, batch: u64) -> InferenceWorkload {
        InferenceWorkload::new(cfg, batch, 512, 128, Precision::Fp16).unwrap()
    }

    #[test]
    fn small_models_serve_from_tile_sram() {
        let spec = IpuSpec::bow2000();
        let m = infer_model(
            &spec,
            &IpuCompilerParams::default(),
            &w(ModelConfig::gpt2_tiny(), 1),
        );
        assert_eq!(m.kv_level, "tile-sram");
        assert_eq!(m.mem_bw_bytes_per_s, spec.exchange_bw_bytes_per_s);
    }

    #[test]
    fn llama_7b_falls_off_the_sram_cliff() {
        let spec = IpuSpec::bow2000();
        let m = infer_model(
            &spec,
            &IpuCompilerParams::default(),
            &w(ModelConfig::llama2_7b(), 1),
        );
        assert_eq!(m.kv_level, "external-ddr");
        assert_eq!(m.mem_bw_bytes_per_s, spec.external_ddr_bw_bytes_per_s);
    }

    #[test]
    fn the_cliff_is_a_bandwidth_not_a_capacity_story() {
        // Both sides of the cliff still *run*; throughput collapses.
        let spec = IpuSpec::bow2000();
        let p = IpuCompilerParams::default();
        let small = w(ModelConfig::gpt2_tiny(), 1);
        let big = w(ModelConfig::llama2_7b(), 1);
        let fast = profile_inference(&infer_model(&spec, &p, &small), &small).unwrap();
        let slow = profile_inference(&infer_model(&spec, &p, &big), &big).unwrap();
        // Per-token decode latency (normalize out model size by comparing
        // bandwidth-limited decode throughput ratios beyond the flop gap).
        assert!(fast.decode_tokens_per_s > 20.0 * slow.decode_tokens_per_s);
    }

    #[test]
    fn sync_overhead_scales_with_depth() {
        let spec = IpuSpec::bow2000();
        let p = IpuCompilerParams::default();
        let shallow = infer_model(&spec, &p, &w(ModelConfig::gpt2_probe(768, 4), 1));
        let deep = infer_model(&spec, &p, &w(ModelConfig::gpt2_probe(768, 24), 1));
        assert!((deep.step_overhead_s / shallow.step_overhead_s - 6.0).abs() < 1e-9);
    }
}
