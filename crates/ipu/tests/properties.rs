//! Property-based tests of the IPU pipeline model.

use dabench_ipu::{decoder_ipu_memory, pipeline_with_allocation, IpuCompilerParams, IpuSpec};
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use proptest::prelude::*;

fn workload(layers: u64, batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, layers),
        batch,
        512,
        Precision::Fp16,
    )
}

/// Random allocation of `layers` over up to 4 decoder IPUs.
fn arb_allocation() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..6, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Throughput is anti-monotone in the bottleneck load: adding a layer
    /// to the most loaded IPU never helps.
    #[test]
    fn bottleneck_anti_monotonicity(alloc in arb_allocation(), batch in 1u64..32) {
        let spec = IpuSpec::bow2000();
        let params = IpuCompilerParams::default();
        let layers: u64 = alloc.iter().sum();
        let w = workload(layers, batch);
        let Ok(base) = pipeline_with_allocation(&spec, &params, &w, &alloc) else {
            return Ok(());
        };
        // Grow the heaviest stage by one layer.
        let mut worse = alloc.clone();
        let imax = (0..worse.len())
            .max_by_key(|&i| worse[i])
            .expect("non-empty");
        worse[imax] += 1;
        let w2 = workload(layers + 1, batch);
        if let Ok(plan) = pipeline_with_allocation(&spec, &params, &w2, &worse) {
            prop_assert!(plan.throughput_tokens_per_s <= base.throughput_tokens_per_s * 1.001);
        }
    }

    /// Pipeline plans respect accounting identities.
    #[test]
    fn plan_identities(alloc in arb_allocation(), batch in 1u64..32) {
        let spec = IpuSpec::bow2000();
        let params = IpuCompilerParams::default();
        let layers: u64 = alloc.iter().sum();
        let w = workload(layers, batch);
        let Ok(plan) = pipeline_with_allocation(&spec, &params, &w, &alloc) else {
            return Ok(());
        };
        prop_assert_eq!(plan.stages.len(), alloc.len() + 1); // + embedding IPU
        let implied = w.tokens_per_step() as f64 / plan.step_time_s;
        prop_assert!((implied - plan.throughput_tokens_per_s).abs() / implied < 1e-9);
        prop_assert!((0.0..1.0).contains(&plan.overhead_fraction));
        let bottleneck = &plan.stages[plan.bottleneck_stage];
        for s in &plan.stages {
            prop_assert!(s.stage_time_s <= bottleneck.stage_time_s + 1e-15);
            prop_assert!(s.tiles_used <= spec.tiles);
            prop_assert!(s.memory_utilization <= 1.0 + 1e-12);
        }
    }

    /// Memory accounting is additive in layers and independent of batch.
    #[test]
    fn memory_accounting(layers in 1u64..10, batch in 1u64..64) {
        let spec = IpuSpec::bow2000();
        let params = IpuCompilerParams::default();
        let w = workload(layers, batch);
        let m = decoder_ipu_memory(&w, layers, &spec, &params);
        prop_assert_eq!(
            m.total_bytes(),
            m.state_bytes + m.activation_bytes + m.code_bytes
        );
        let other = decoder_ipu_memory(&workload(layers, batch + 1), layers, &spec, &params);
        prop_assert_eq!(m.total_bytes(), other.total_bytes());
    }
}
