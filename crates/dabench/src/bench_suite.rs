//! The `dabench bench` macro-benchmark suite: named benchmark bodies over
//! the real experiment suite plus hot-path micro/compile benchmarks, run
//! under the deterministic harness of [`crate::core::bench`].
//!
//! Design notes (see `docs/benchmarking.md`):
//!
//! - every *experiment* benchmark times [`crate::suite::render_experiment`]
//!   — the exact text path the CLI prints, so the harness and the CLI can
//!   never drift apart;
//! - the Tier-1 memo cache and the incremental compile cache are cleared
//!   before each benchmark and repopulated by the warmup batches, so timed
//!   samples measure the deterministic steady state;
//! - `cache_lookup_legacy` is a pinned replica of the string-keyed memo
//!   lookup this repository used before the [`CacheKey`] rework; it stays
//!   in the suite permanently so the before/after of that optimization
//!   remains measurable on any machine, not just the one that recorded the
//!   trajectory;
//! - cases run sequentially (timing under contention is noise), but the
//!   bodies themselves use `par_map` internally, and the obs-bridged
//!   per-phase breakdown is byte-identical at any `--jobs`.

use crate::core::bench::{
    iter_plan, regressions, run_samples, summarize, BenchKind, BenchRecord, BenchReport,
    CounterRow, PhaseRow,
};
use crate::core::cache::clear_tier1_cache;
use crate::core::shard::{merge_journals, plan_shards};
use crate::core::supervise::{
    JournalRecord, ParsedJournal, SHARD_CONTROL_LABEL, STATUS_HEARTBEAT, STATUS_SHARD_META,
    STATUS_STARTED,
};
use crate::core::{obs, tier1_cached, Memoizable, PlatformError, Tier1Report};
use crate::experiments::validation;
use crate::model::{InferenceWorkload, ModelConfig, Precision, TrainingWorkload};
use crate::suite::render_experiment;
use crate::wse::{compile, Wse, WseCompilerParams, WseSpec};
use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;
use std::sync::Mutex;

/// One named benchmark in the suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchCase {
    /// Stable benchmark name (also the `DABENCH_INJECT` / `--filter` key).
    pub name: &'static str,
    /// Kind, which fixes the iteration plan.
    pub kind: BenchKind,
}

/// The full suite, in report order: every paper artifact, the scorecard,
/// then the hot-path compile and micro benchmarks.
pub const CASES: [BenchCase; 23] = [
    BenchCase {
        name: "table1",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "table2",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "table3",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "table4",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "fig6",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "fig7",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "fig8",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "fig9",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "fig10",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "fig11",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "fig12",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "check",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "ablations",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "sensitivity",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "infer",
        kind: BenchKind::Experiment,
    },
    BenchCase {
        name: "wse_compile_deep",
        kind: BenchKind::Compile,
    },
    BenchCase {
        name: "graph_build_interned",
        kind: BenchKind::Compile,
    },
    BenchCase {
        name: "sweep_incremental_compile",
        kind: BenchKind::Compile,
    },
    BenchCase {
        name: "journal_merge_1k",
        kind: BenchKind::Compile,
    },
    BenchCase {
        name: "cache_lookup_hit",
        kind: BenchKind::Micro,
    },
    BenchCase {
        name: "cache_lookup_legacy",
        kind: BenchKind::Micro,
    },
    BenchCase {
        name: "infer_decode_step",
        kind: BenchKind::Micro,
    },
    BenchCase {
        name: "shard_partition_plan",
        kind: BenchKind::Micro,
    },
];

/// The probe workloads cycled through by the cache-lookup benchmarks.
fn cache_probe_workloads() -> Vec<TrainingWorkload> {
    [2u64, 3, 4, 6]
        .iter()
        .map(|&l| TrainingWorkload::new(ModelConfig::gpt2_probe(768, l), 8, 512, Precision::Fp16))
        .collect()
}

/// The deep-model workload of `wse_compile_deep` — 72 decoder layers, the
/// deepest passing point of Table I, where the elastic compiler's
/// budget-shrink retry loop fires 3 times before placement fits.
fn deep_compile_workload() -> TrainingWorkload {
    TrainingWorkload::new(ModelConfig::gpt2_probe(768, 72), 256, 1024, Precision::Fp16)
}

/// Build the body closure of one benchmark. Setup (platform construction,
/// cache warming) happens here, outside the timed region; the caller is
/// expected to have cleared the Tier-1 memo cache first so every run sees
/// the same cache state.
///
/// # Panics
///
/// Panics on an unknown name — [`CASES`] is the authoritative list.
#[must_use]
pub fn make_body(name: &str) -> Box<dyn FnMut()> {
    match name {
        "check" => Box::new(|| {
            let checks = validation::run();
            black_box(validation::render(&checks));
        }),
        "wse_compile_deep" => {
            let spec = WseSpec::default();
            let params = WseCompilerParams::default();
            let w = deep_compile_workload();
            Box::new(move || {
                black_box(compile(&spec, &params, &w, None)).expect("deep compile succeeds");
            })
        }
        "graph_build_interned" => {
            // Cold construction of the interned arena graph for the deep
            // 72-layer workload: one interner, contiguous node/edge
            // storage, CSR adjacency — no memoization in the loop (the
            // compile cache is bypassed by calling the builder directly).
            let w = deep_compile_workload();
            Box::new(move || {
                black_box(crate::graph::GraphBuilder::for_workload(&w));
            })
        }
        "sweep_incremental_compile" => {
            // A 16-point batch-size sweep compiled through the incremental
            // cache: the body clears the compile cache, pays one full
            // build, then 15 diff-and-patch recompilations (same topology,
            // costs patched in place). This is the sweep-side win of the
            // interned-graph rework; compare against `graph_build_interned`
            // × 16 for the non-incremental cost.
            let points: Vec<TrainingWorkload> = (1..=16)
                .map(|i| {
                    TrainingWorkload::new(
                        ModelConfig::gpt2_probe(768, 72),
                        16 * i,
                        1024,
                        Precision::Fp16,
                    )
                })
                .collect();
            Box::new(move || {
                crate::core::clear_compile_cache();
                for w in &points {
                    black_box(crate::core::training_graph(w));
                }
            })
        }
        "journal_merge_1k" => {
            // The shard merge hot path: 1000 points spread across 4 shard
            // journals (with started/heartbeat control noise and a sprinkle
            // of failure records), folded back into the canonical combined
            // journal. All sources are built here, outside the timed region.
            let order: Vec<String> = (0..1000).map(|i| format!("point-{i:04}")).collect();
            let sources: Vec<ParsedJournal> = plan_shards(&order, 4)
                .iter()
                .enumerate()
                .map(|(k, labels)| {
                    let mut records = vec![JournalRecord {
                        label: SHARD_CONTROL_LABEL.to_owned(),
                        status: Some(STATUS_SHARD_META.to_owned()),
                        data: Some(format!("shard={k}")),
                    }];
                    for (j, label) in labels.iter().enumerate() {
                        records.push(JournalRecord {
                            label: label.clone(),
                            status: Some(STATUS_STARTED.to_owned()),
                            data: Some("life=0".to_owned()),
                        });
                        if j % 97 == 5 {
                            records.push(JournalRecord {
                                label: label.clone(),
                                status: Some("failed".to_owned()),
                                data: Some("injected failure".to_owned()),
                            });
                        } else {
                            records.push(JournalRecord {
                                label: label.clone(),
                                status: Some("completed".to_owned()),
                                data: Some(format!("rendered output for {label}\n")),
                            });
                            records.push(JournalRecord {
                                label: label.clone(),
                                status: Some("metrics".to_owned()),
                                data: Some(format!("point/{label} spans=3 counters=2")),
                            });
                        }
                        if j % 13 == 0 {
                            records.push(JournalRecord {
                                label: SHARD_CONTROL_LABEL.to_owned(),
                                status: Some(STATUS_HEARTBEAT.to_owned()),
                                data: Some(format!("beat={j}")),
                            });
                        }
                    }
                    ParsedJournal {
                        records,
                        valid_bytes: 0,
                        dropped_tail: None,
                    }
                })
                .collect();
            let synthetic = BTreeMap::new();
            Box::new(move || {
                black_box(merge_journals(&order, &sources, &synthetic));
            })
        }
        "cache_lookup_hit" => {
            let wse = Wse::default();
            let workloads = cache_probe_workloads();
            for w in &workloads {
                tier1_cached(&wse, w).expect("probe workload profiles");
            }
            let mut i = 0usize;
            Box::new(move || {
                let w = &workloads[i % workloads.len()];
                i += 1;
                black_box(tier1_cached(&wse, w)).expect("warm lookup");
            })
        }
        "cache_lookup_legacy" => {
            // Pinned replica of the pre-CacheKey lookup: token string +
            // workload Debug string allocated on every hit. Do not
            // "optimize" this body — it IS the baseline.
            let wse = Wse::default();
            let workloads = cache_probe_workloads();
            let store: Mutex<HashMap<(String, String), Result<Tier1Report, PlatformError>>> =
                Mutex::new(HashMap::new());
            for w in &workloads {
                let key = (wse.cache_token(), format!("{w:?}"));
                let result = tier1_cached(&wse, w);
                store.lock().expect("legacy store").insert(key, result);
            }
            let mut i = 0usize;
            Box::new(move || {
                let w = &workloads[i % workloads.len()];
                i += 1;
                let key = (wse.cache_token(), format!("{w:?}"));
                let hit = store.lock().expect("legacy store").get(&key).cloned();
                black_box(hit).expect("warm lookup").expect("warm lookup");
            })
        }
        "infer_decode_step" => {
            // Hot inner loop of the inference profiler: summing per-step
            // decode costs over a growing KV cache, priced at the storage
            // precision. No platform in the loop — this pins the model-side
            // accounting alone.
            let w =
                InferenceWorkload::new(ModelConfig::llama2_7b(), 32, 2048, 128, Precision::Fp16)
                    .expect("decode bench workload is valid")
                    .with_kv_precision(Precision::Fp8);
            Box::new(move || {
                black_box(w.decode_cost());
            })
        }
        "shard_partition_plan" => {
            // Deterministic round-robin partition of a large sweep into 7
            // worker shards — the parent-side planning step of
            // `dabench all --shards N`. Label construction stays outside
            // the timed region; the body pays only the plan (and its
            // per-shard label clones, which the real parent pays too).
            let labels: Vec<String> = (0..256).map(|i| format!("sweep-point-{i:03}")).collect();
            Box::new(move || {
                black_box(plan_shards(&labels, 7));
            })
        }
        experiment => {
            let name = experiment.to_owned();
            assert!(
                render_experiment(&name).is_some(),
                "unknown benchmark `{name}`"
            );
            Box::new(move || {
                black_box(render_experiment(&name));
            })
        }
    }
}

/// Run one extra, untimed execution of `body` with the obs recorder on and
/// bridge the trace into the report's per-phase breakdown: completed spans
/// per phase and counter totals per key. Deterministic and `--jobs`-
/// invariant because the recorder merges traces by point path.
pub fn profile_case(
    index: u64,
    name: &str,
    body: &mut dyn FnMut(),
) -> (Vec<PhaseRow>, Vec<CounterRow>) {
    obs::enable();
    obs::with_point(index, name, body);
    let traces = obs::take();
    obs::disable();

    let mut phase_acc: BTreeMap<&'static str, u64> = BTreeMap::new();
    for row in obs::span_rows(&traces) {
        *phase_acc.entry(row.phase).or_insert(0) += row.samples;
    }
    let mut counter_acc: BTreeMap<String, f64> = BTreeMap::new();
    for row in obs::counter_rows(&traces) {
        *counter_acc.entry(row.name).or_insert(0.0) += row.total;
    }
    (
        phase_acc
            .into_iter()
            .map(|(phase, spans)| PhaseRow {
                phase: phase.to_owned(),
                spans,
            })
            .collect(),
        counter_acc
            .into_iter()
            .map(|(key, total)| CounterRow { key, total })
            .collect(),
    )
}

/// Options of the `bench` subcommand.
#[derive(Debug)]
pub struct BenchOpts {
    /// Use the CI-sized iteration plans.
    pub quick: bool,
    /// Print the suite (names, kinds, full-mode plans) and exit.
    pub list: bool,
    /// Report destination (default `BENCH_sweeps.json`).
    pub out: std::path::PathBuf,
    /// Baseline report to gate against.
    pub baseline: Option<std::path::PathBuf>,
    /// Regression tolerance in percent (with `--baseline`).
    pub gate_pct: f64,
    /// Only run benchmarks whose name contains this substring.
    pub filter: Option<String>,
    /// Append `(bench, label, median)` trajectory entries for this run.
    pub record: Option<String>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            quick: false,
            list: false,
            out: "BENCH_sweeps.json".into(),
            baseline: None,
            gate_pct: 25.0,
            filter: None,
            record: None,
        }
    }
}

/// Parse `bench` flags.
///
/// # Errors
///
/// Unknown flags, missing values, or a non-positive/non-finite `--gate`.
pub fn parse_bench_opts(args: &[String]) -> Result<BenchOpts, String> {
    let mut opts = BenchOpts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--out" => opts.out = value()?.into(),
            "--baseline" => opts.baseline = Some(value()?.into()),
            "--gate" => {
                let pct: f64 = value()?.parse().map_err(|e| format!("--gate: {e}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("--gate: {pct} is not a non-negative percentage"));
                }
                opts.gate_pct = pct;
            }
            "--filter" => opts.filter = Some(value()?),
            "--record" => opts.record = Some(value()?),
            other => return Err(format!("unknown flag `{other}` for bench")),
        }
    }
    Ok(opts)
}

/// Parse `DABENCH_INJECT` for the bench runner: `name=sleep:SECS` clauses
/// slow the named benchmark down inside its timed window (one sleep per
/// timed sample) — the hook the regression-gate integration tests use.
/// `panic` injections are rejected: the bench runner has no isolation
/// layer to catch them.
fn parse_sleep_injections() -> Result<BTreeMap<String, f64>, String> {
    let mut map = BTreeMap::new();
    let Ok(raw) = std::env::var("DABENCH_INJECT") else {
        return Ok(map);
    };
    for clause in raw.split(',').filter(|c| !c.trim().is_empty()) {
        let (name, action) = clause
            .split_once('=')
            .ok_or_else(|| format!("DABENCH_INJECT `{clause}`: expected name=action"))?;
        let Some(secs) = action.strip_prefix("sleep:") else {
            return Err(format!(
                "DABENCH_INJECT `{clause}`: bench supports sleep:SECS only"
            ));
        };
        let secs: f64 = secs
            .parse()
            .map_err(|e| format!("DABENCH_INJECT `{clause}`: {e}"))?;
        map.insert(name.trim().to_owned(), secs);
    }
    Ok(map)
}

/// The `--list` text: one line per benchmark with its kind and full-mode
/// iteration plan (quick plans shown alongside). Pure function of the
/// suite — this is what the golden snapshot pins.
#[must_use]
pub fn render_list() -> String {
    let mut out = String::new();
    out.push_str("benchmark            kind        full (warmup/iters/inner)  quick\n");
    for case in CASES {
        let full = iter_plan(case.kind, false);
        let quick = iter_plan(case.kind, true);
        out.push_str(&format!(
            "{:<20} {:<11} {:>3}/{}/{:<18} {}/{}/{}\n",
            case.name,
            case.kind.as_str(),
            full.warmup,
            full.iters,
            full.inner,
            quick.warmup,
            quick.iters,
            quick.inner,
        ));
    }
    out
}

/// Run the `bench` subcommand. Returns the process exit code: 0 on
/// success, 3 when `--baseline` gating found regressions.
///
/// # Errors
///
/// Flag errors, unreadable/malformed baseline or output files, and bad
/// `DABENCH_INJECT` clauses.
pub fn run_bench(args: &[String]) -> Result<u8, String> {
    let opts = parse_bench_opts(args)?;
    if opts.list {
        print!("{}", render_list());
        return Ok(0);
    }
    let injections = parse_sleep_injections()?;
    // The bench runner owns the recorder: timing runs with it off (the
    // memo cache stays active, as in production), profile passes toggle
    // it per case.
    obs::disable();

    let selected: Vec<BenchCase> = CASES
        .iter()
        .copied()
        .filter(|c| opts.filter.as_deref().is_none_or(|f| c.name.contains(f)))
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "--filter {:?} matches no benchmark (see `dabench bench --list`)",
            opts.filter.unwrap_or_default()
        ));
    }

    let mut benchmarks = Vec::with_capacity(selected.len());
    for (i, case) in selected.iter().enumerate() {
        let plan = iter_plan(case.kind, opts.quick);
        // Identical cache state for every run: cleared here, repopulated
        // by setup + warmup, hit during timed samples.
        clear_tier1_cache();
        crate::core::clear_compile_cache();
        let mut body = make_body(case.name);
        let sleep = injections.get(case.name).copied();
        let pre = move || {
            if let Some(secs) = sleep {
                std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            }
        };
        let samples = run_samples(plan, pre, &mut *body);
        let summary = summarize(&samples);
        // Micro benchmarks skip the profile pass: with the recorder on the
        // memo cache is bypassed, so the trace would describe a cold
        // profile, not the lookup the timed samples measured.
        let (phases, counters) = if case.kind == BenchKind::Micro {
            (Vec::new(), Vec::new())
        } else {
            profile_case(i as u64, case.name, &mut *body)
        };
        eprintln!(
            "bench {:<20} median {} ns (mad {}, kept {}/{})",
            case.name, summary.median_ns, summary.mad_ns, summary.kept, plan.iters
        );
        benchmarks.push(BenchRecord {
            name: case.name.to_owned(),
            kind: case.kind,
            plan,
            summary,
            phases,
            counters,
        });
    }

    // Carry the perf trajectory forward from the previous report at the
    // same path, then append this run's medians under `--record LABEL`.
    let mut trajectory = match std::fs::read_to_string(&opts.out) {
        Ok(text) => {
            BenchReport::parse(&text)
                .map_err(|e| format!("existing {} is not a bench report: {e}", opts.out.display()))?
                .trajectory
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", opts.out.display())),
    };
    if let Some(label) = &opts.record {
        for b in &benchmarks {
            trajectory.push(crate::core::bench::TrajectoryEntry {
                bench: b.name.clone(),
                label: label.clone(),
                median_ns: b.summary.median_ns,
            });
        }
    }

    let report = BenchReport {
        quick: opts.quick,
        benchmarks,
        trajectory,
    };
    std::fs::write(&opts.out, report.to_json())
        .map_err(|e| format!("{}: {e}", opts.out.display()))?;
    println!(
        "wrote {} ({} benchmarks)",
        opts.out.display(),
        report.benchmarks.len()
    );

    if let Some(baseline_path) = &opts.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("--baseline {}: {e}", baseline_path.display()))?;
        let baseline = BenchReport::parse(&text)
            .map_err(|e| format!("--baseline {}: {e}", baseline_path.display()))?;
        let found = regressions(&report, &baseline, opts.gate_pct);
        if found.is_empty() {
            println!(
                "gate: no regressions beyond {}% against {}",
                opts.gate_pct,
                baseline_path.display()
            );
        } else {
            for r in &found {
                eprintln!(
                    "regression: {} {} ns -> {} ns (+{:.1}%, gate {}%)",
                    r.name, r.baseline_ns, r.current_ns, r.slowdown_pct, opts.gate_pct
                );
            }
            return Ok(3);
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_has_a_body() {
        // Bodies for micro/compile cases do real setup work; just check
        // the experiment names resolve (cheap) and the special names are
        // distinct from the experiment namespace.
        for case in CASES {
            if case.kind == BenchKind::Experiment && case.name != "check" {
                assert!(render_experiment(case.name).is_some(), "{}", case.name);
            }
        }
        let mut names: Vec<&str> = CASES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CASES.len(), "duplicate benchmark names");
    }

    #[test]
    fn list_is_stable_and_covers_all_cases() {
        let listing = render_list();
        assert_eq!(listing, render_list());
        for case in CASES {
            assert!(listing.contains(case.name), "{}", case.name);
        }
    }

    #[test]
    fn parse_bench_opts_round_trip() {
        let args: Vec<String> = [
            "--quick",
            "--out",
            "x.json",
            "--baseline",
            "b.json",
            "--gate",
            "50",
            "--filter",
            "cache",
            "--record",
            "pre",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let opts = parse_bench_opts(&args).unwrap();
        assert!(opts.quick);
        assert_eq!(opts.out, std::path::PathBuf::from("x.json"));
        assert_eq!(opts.baseline, Some("b.json".into()));
        assert!((opts.gate_pct - 50.0).abs() < f64::EPSILON);
        assert_eq!(opts.filter.as_deref(), Some("cache"));
        assert_eq!(opts.record.as_deref(), Some("pre"));
        assert!(parse_bench_opts(&["--gate".to_owned(), "nan".to_owned()]).is_err());
        assert!(parse_bench_opts(&["--bogus".to_owned()]).is_err());
    }
}
