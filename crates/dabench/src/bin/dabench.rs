//! `dabench` — command-line front end for the DABench-LLM reproduction.
//!
//! ```text
//! dabench table1|table2|table3|table4        reproduce a paper table
//! dabench fig6|fig7|fig8|fig9|fig10|fig11|fig12   reproduce a paper figure
//! dabench all                                everything above, supervised
//! dabench serve                              benchmark-as-a-service daemon
//! dabench ablations                          design-choice ablations
//! dabench tier1 <platform> [opts]            profile one workload
//! dabench summary [opts]                     all platforms, one workload
//!
//! platforms: wse | rdu-o0 | rdu-o1 | rdu-o3 | ipu | gpu
//! opts: --hidden N  --layers N  --batch N  --seq N
//!       --precision fp16|bf16|cb16|fp32  --model gpt2-small|gpt2-xl|llama2-7b
//!       --jobs N   (worker threads; DABENCH_JOBS env var also honored)
//!       --trace-out FILE  (Chrome trace_event JSON)  --metrics (stderr table)
//! all opts: --run-dir D  --resume D  --deadline-s S  --max-retries N
//! ```
//!
//! All commands produce byte-identical output regardless of `--jobs`:
//! parallel work is collected back in input order before printing.
//!
//! `all` runs under the supervision layer (`dabench_core::supervise`, see
//! docs/supervision.md): each paper artifact is one supervised point with
//! panic isolation, an optional wall-clock deadline, deterministic
//! retries, and — with `--run-dir` — a crash-safe journal that `--resume`
//! replays to produce byte-identical output after a mid-run kill. Exit
//! code 2 flags a run that completed with failed/panicked/timed-out
//! points.
//!
//! `serve` turns the same supervised machinery into a long-running daemon
//! speaking JSONL over TCP, with admission control, load shedding, a
//! shared result cache, graceful drain on SIGTERM/SIGINT, and crash-safe
//! `--resume` (see docs/serve.md).

use dabench::bench_suite::run_bench;
use dabench::core::obs;
use dabench::core::shard::{
    emit_shard_counters, list_shard_journals, merge_journals, plan_shards, read_journal,
    remove_shard_journals, render_rollups, shard_journal_name, supervise_shards, write_merged,
    ShardConfig, ShardOutcome, SyntheticFailure,
};
use dabench::core::supervise::{
    parse_injections, Injection, Replay, RunJournal, RunReport, SupervisePolicy,
    SHARD_CONTROL_LABEL, STATUS_SHARD_META,
};
use dabench::core::{jobs, set_jobs, tier1, Degradable, Platform, PointTrace};
use dabench::experiments::{gen as genx, infer, summary, validation};
use dabench::faults::{render_report, resilience_sweep, PlanSpec};
use dabench::gpu::GpuCluster;
use dabench::ipu::Ipu;
use dabench::model::{BatchingMode, InferenceWorkload, ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::runner::{run_supervised_points, RunnerConfig};
use dabench::serve::run_serve;
use dabench::suite::{experiment_tables, point_index, render_experiment, EXPERIMENTS};
use dabench::wse::Wse;
use std::process::ExitCode;

struct Opts {
    hidden: u64,
    layers: u64,
    batch: u64,
    seq: u64,
    precision: Precision,
    model: Option<ModelConfig>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            hidden: 768,
            layers: 12,
            batch: 32,
            seq: 1024,
            precision: Precision::Fp16,
            model: None,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--hidden" => opts.hidden = value()?.parse().map_err(|e| format!("--hidden: {e}"))?,
            "--layers" => opts.layers = value()?.parse().map_err(|e| format!("--layers: {e}"))?,
            "--batch" => opts.batch = value()?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--seq" => opts.seq = value()?.parse().map_err(|e| format!("--seq: {e}"))?,
            "--precision" => {
                opts.precision = match value()?.as_str() {
                    "fp16" => Precision::Fp16,
                    "bf16" => Precision::Bf16,
                    "cb16" => Precision::Cb16,
                    "fp32" => Precision::Fp32,
                    other => return Err(format!("unknown precision `{other}`")),
                }
            }
            "--model" => opts.model = Some(parse_model(&value()?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_model(name: &str) -> Result<ModelConfig, String> {
    Ok(match name {
        "gpt2-mini" => ModelConfig::gpt2_mini(),
        "gpt2-tiny" => ModelConfig::gpt2_tiny(),
        "gpt2-small" => ModelConfig::gpt2_small(),
        "gpt2-medium" => ModelConfig::gpt2_medium(),
        "gpt2-large" => ModelConfig::gpt2_large(),
        "gpt2-xl" => ModelConfig::gpt2_xl(),
        "llama2-7b" => ModelConfig::llama2_7b(),
        "llama2-13b" => ModelConfig::llama2_13b(),
        "llama2-70b" => ModelConfig::llama2_70b(),
        other => return Err(format!("unknown model `{other}`")),
    })
}

/// `dabench infer`: no flags prints the default sweep (byte-identical to
/// `csv infer`'s tables); flags profile one explicit serving workload on
/// all four platforms.
fn run_infer(rest: &[String]) -> Result<(), String> {
    if rest.is_empty() {
        print!(
            "{}",
            render_experiment("infer").expect("infer is a registered experiment")
        );
        return Ok(());
    }
    let mut model = ModelConfig::llama2_7b();
    let mut batch = 8u64;
    let mut prompt = 512u64;
    let mut decode = 128u64;
    let mut precision = Precision::Fp16;
    let mut kv_precision = None;
    let mut batching = BatchingMode::Static;
    let parse_precision = |v: &str| -> Result<Precision, String> {
        Ok(match v {
            "fp16" => Precision::Fp16,
            "bf16" => Precision::Bf16,
            "cb16" => Precision::Cb16,
            "fp32" => Precision::Fp32,
            "fp8" => Precision::Fp8,
            other => return Err(format!("unknown precision `{other}`")),
        })
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--model" => model = parse_model(&value()?)?,
            "--batch" => batch = value()?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--prompt" => prompt = value()?.parse().map_err(|e| format!("--prompt: {e}"))?,
            "--decode" => decode = value()?.parse().map_err(|e| format!("--decode: {e}"))?,
            "--precision" => precision = parse_precision(&value()?)?,
            "--kv-precision" => kv_precision = Some(parse_precision(&value()?)?),
            "--continuous" => batching = BatchingMode::Continuous,
            other => return Err(format!("unknown flag `{other}` for infer")),
        }
    }
    let mut w = InferenceWorkload::new(model, batch, prompt, decode, precision)
        .map_err(|e| e.to_string())?
        .with_batching(batching);
    if let Some(kv) = kv_precision {
        w = w.with_kv_precision(kv);
    }
    println!("Workload: {w}\n");
    println!("{}", infer::render_single(&infer::run_single(&w)));
    Ok(())
}

fn workload(opts: &Opts) -> Result<TrainingWorkload, String> {
    if opts.batch == 0 || opts.seq == 0 || opts.layers == 0 || opts.hidden == 0 {
        return Err("--hidden, --layers, --batch and --seq must be positive".to_owned());
    }
    let model = opts
        .model
        .clone()
        .unwrap_or_else(|| ModelConfig::gpt2_probe(opts.hidden, opts.layers));
    Ok(TrainingWorkload::new(
        model,
        opts.batch,
        opts.seq,
        opts.precision,
    ))
}

fn platform(name: &str) -> Result<Box<dyn Platform>, String> {
    Ok(match name {
        "wse" => Box::new(Wse::default()),
        "rdu-o0" => Box::new(Rdu::with_mode(CompilationMode::O0)),
        "rdu-o1" => Box::new(Rdu::with_mode(CompilationMode::O1)),
        "rdu" | "rdu-o3" => Box::new(Rdu::with_mode(CompilationMode::O3)),
        "ipu" => Box::new(Ipu::default()),
        "gpu" => Box::new(GpuCluster::default()),
        other => return Err(format!("unknown platform `{other}`")),
    })
}

fn degradable(name: &str) -> Result<Box<dyn Degradable + Sync>, String> {
    Ok(match name {
        "wse" => Box::new(Wse::default()),
        "rdu-o0" => Box::new(Rdu::with_mode(CompilationMode::O0)),
        "rdu-o1" => Box::new(Rdu::with_mode(CompilationMode::O1)),
        "rdu" | "rdu-o3" => Box::new(Rdu::with_mode(CompilationMode::O3)),
        "ipu" => Box::new(Ipu::default()),
        "gpu" => return Err("the GPU reference has no dataflow fault model".to_owned()),
        other => return Err(format!("unknown platform `{other}`")),
    })
}

/// Run a resilience sweep: `dabench faults <platform> [--seed N] [--plan
/// SPEC] [workload opts]`.
fn run_faults(rest: &[String]) -> Result<(), String> {
    let (name, flags) = rest
        .split_first()
        .ok_or_else(|| "faults needs a platform (wse|rdu-o0|rdu-o1|rdu-o3|ipu)".to_owned())?;
    let mut seed = 42u64;
    let mut plan = PlanSpec::default();
    let mut passthrough = Vec::new();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .ok_or_else(|| "--seed needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--plan" => {
                plan = it
                    .next()
                    .ok_or_else(|| "--plan needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--plan: {e}"))?;
            }
            other => passthrough.push(other.to_owned()),
        }
    }
    let platform = degradable(name)?;
    let opts = parse_opts(&passthrough)?;
    let w = workload(&opts)?;
    let report = resilience_sweep(platform.as_ref(), &w, &plan, seed);
    println!("Workload: {w}\n");
    print!("{}", render_report(&report));
    Ok(())
}

/// Options for the supervised `all` run.
struct AllOpts {
    run_dir: Option<std::path::PathBuf>,
    resume: bool,
    deadline: Option<std::time::Duration>,
    max_retries: u32,
    shards: usize,
    max_respawns: u32,
    heartbeat_ms: u64,
    shard_stall_s: f64,
}

fn parse_all_opts(args: &[String]) -> Result<AllOpts, String> {
    let mut opts = AllOpts {
        run_dir: None,
        resume: false,
        deadline: None,
        max_retries: 0,
        shards: 1,
        max_respawns: 2,
        heartbeat_ms: 200,
        shard_stall_s: 10.0,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--run-dir" => {
                opts.run_dir = Some(value()?.into());
            }
            "--resume" => {
                opts.run_dir = Some(value()?.into());
                opts.resume = true;
            }
            "--deadline-s" => {
                let s: f64 = value()?.parse().map_err(|e| format!("--deadline-s: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("--deadline-s: {s} is not a positive number"));
                }
                opts.deadline = Some(std::time::Duration::from_secs_f64(s));
            }
            "--max-retries" => {
                opts.max_retries = value()?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--shards" => {
                opts.shards = value()?.parse().map_err(|e| format!("--shards: {e}"))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
            }
            "--max-respawns" => {
                opts.max_respawns = value()?
                    .parse()
                    .map_err(|e| format!("--max-respawns: {e}"))?;
            }
            "--heartbeat-ms" => {
                opts.heartbeat_ms = value()?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
                if opts.heartbeat_ms == 0 {
                    return Err("--heartbeat-ms must be at least 1".to_owned());
                }
            }
            "--shard-stall-s" => {
                let s: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--shard-stall-s: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("--shard-stall-s: {s} is not a positive number"));
                }
                opts.shard_stall_s = s;
            }
            other => return Err(format!("unknown flag `{other}` for all")),
        }
    }
    Ok(opts)
}

/// Supervised `dabench all`: every artifact is one supervised point.
/// Successful texts print to stdout in paper order (byte-identical to the
/// unsupervised per-command output); the run report goes to stderr so it
/// never perturbs diffable output. Exit code 2 means some points failed
/// but the sweep itself survived.
fn run_all(rest: &[String]) -> Result<ExitCode, String> {
    let opts = parse_all_opts(rest)?;
    let order: Vec<String> = EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    let (report, _texts) = run_sweep(&order, &opts)?;
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Run an arbitrary ordered list of supervised point labels through the
/// journal/resume/shard machinery (`dabench all` and `dabench gen` both
/// funnel through here). Each label must resolve via
/// [`render_experiment`]; point indices come from [`point_index`].
/// Prints every completed point's text to stdout in `order`, the run
/// report to stderr, and returns the report plus the per-label texts
/// (`None` for failed points) so callers can post-process results.
fn run_sweep(order: &[String], opts: &AllOpts) -> Result<(RunReport, Vec<Option<String>>), String> {
    if opts.shards > 1 {
        return run_sweep_sharded(order, opts);
    }
    let injections = parse_injections()?;
    let policy = SupervisePolicy {
        deadline: opts.deadline,
        max_retries: opts.max_retries,
        ..SupervisePolicy::default()
    };
    let (journal, replay) = match &opts.run_dir {
        Some(dir) if opts.resume => {
            // A killed sharded parent leaves per-shard journals behind;
            // fold them into the combined journal first so `--resume`
            // works identically across the sharded layout.
            fold_stale_shards(dir, order)?;
            let (j, replay) =
                RunJournal::resume(dir).map_err(|e| format!("--resume {}: {e}", dir.display()))?;
            (Some(std::sync::Mutex::new(j)), replay)
        }
        Some(dir) => {
            let j =
                RunJournal::create(dir).map_err(|e| format!("--run-dir {}: {e}", dir.display()))?;
            (Some(std::sync::Mutex::new(j)), Replay::default())
        }
        None => (None, Replay::default()),
    };
    if let Some(tail) = &replay.dropped_tail {
        eprintln!("warning: discarded truncated journal record {tail:?}; its point will re-run");
    }
    if opts.resume {
        // One-line accounting of what the journal bought us: replayed
        // points print verbatim, adopted ones re-run, an abandoned tail
        // was cut mid-append. Partial recovery must never be silent.
        eprintln!("{}", replay.resume_summary());
    }

    // Re-seed the recorder from journaled digests so a resumed run's
    // `--trace-out`/`--metrics` output is byte-identical to the original
    // run's. Only points whose output also replays count — a digest for a
    // point that will re-run would otherwise appear twice.
    if obs::is_enabled() {
        for (name, digest) in &replay.metrics {
            if replay.completed.contains_key(name) {
                obs::inject(
                    digest
                        .lines()
                        .filter_map(PointTrace::parse_digest)
                        .collect(),
                );
            }
        }
    }

    let points: Vec<(usize, String)> = order
        .iter()
        .map(|label| {
            point_index(label)
                .map(|i| (i, label.clone()))
                .ok_or_else(|| format!("unknown point `{label}`"))
        })
        .collect::<Result<_, String>>()?;
    let cfg = RunnerConfig {
        policy,
        injections,
        journal_started: false,
    };
    let outcomes = run_supervised_points(&points, &cfg, journal.as_ref(), &replay)?;

    let mut report = RunReport::default();
    let mut texts = Vec::with_capacity(points.len());
    for ((_, name), outcome) in points.iter().zip(&outcomes) {
        report.record(name, outcome);
        if let Some(text) = outcome.value() {
            print!("{text}");
            texts.push(Some(text.clone()));
        } else {
            texts.push(None);
        }
    }
    eprint!("{}", report.render());
    Ok((report, texts))
}

/// Fold stale shard journals (left behind by a killed sharded parent)
/// into the combined journal, then delete them. A no-op when none exist.
/// After this, the run directory looks exactly like a single-process
/// run's, so every resume path works unchanged.
fn fold_stale_shards(dir: &std::path::Path, order: &[String]) -> Result<(), String> {
    let stale = list_shard_journals(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if stale.is_empty() {
        return Ok(());
    }
    let mut sources = vec![read_journal(&RunJournal::path_in(dir)).map_err(|e| e.to_string())?];
    for (k, path) in stale {
        match read_journal(&path) {
            Ok(parsed) => sources.push(parsed),
            Err(e) => eprintln!(
                "warning: shard {k} journal unreadable ({e}); its records are not adopted"
            ),
        }
    }
    let merged = merge_journals(order, &sources, &std::collections::BTreeMap::new());
    write_merged(dir, &merged.text).map_err(|e| format!("journal merge: {e}"))?;
    remove_shard_journals(dir).map_err(|e| format!("shard journal cleanup: {e}"))?;
    Ok(())
}

/// `--shards N`: partition the sweep across worker OS processes,
/// supervise the fleet (heartbeat liveness, crash detection, bounded
/// respawns), then merge the per-shard journals into the combined
/// journal — stdout and journal byte-identical to a single-process run.
/// See docs/sharding.md.
fn run_sweep_sharded(
    order: &[String],
    opts: &AllOpts,
) -> Result<(RunReport, Vec<Option<String>>), String> {
    // Fail on malformed DABENCH_INJECT here, with the same message a
    // single-process run gives, rather than once per worker log.
    parse_injections()?;
    let (dir, ephemeral) = match &opts.run_dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!("dabench-shards-{}", std::process::id())),
            true,
        ),
    };
    if opts.resume {
        fold_stale_shards(&dir, order)?;
    } else {
        // Same refuse-to-clobber semantics as a single-process --run-dir;
        // the handle is dropped — in sharded mode only the merge step
        // writes the combined journal.
        let journal =
            RunJournal::create(&dir).map_err(|e| format!("--run-dir {}: {e}", dir.display()))?;
        drop(journal);
    }
    let combined = read_journal(&RunJournal::path_in(&dir)).map_err(|e| e.to_string())?;
    let mut replay = Replay::default();
    for rec in &combined.records {
        if rec.is_control() {
            continue;
        }
        match (rec.status.as_deref(), rec.data.as_ref()) {
            (Some("completed"), Some(data)) => {
                replay.completed.insert(rec.label.clone(), data.clone());
            }
            (Some("metrics"), Some(data)) => {
                replay.metrics.insert(rec.label.clone(), data.clone());
            }
            _ => replay.unfinished.push(rec.label.clone()),
        }
    }
    replay.dropped_tail = combined.dropped_tail.clone();
    if let Some(tail) = &replay.dropped_tail {
        eprintln!("warning: discarded truncated journal record {tail:?}; its point will re-run");
    }
    if opts.resume {
        eprintln!("{}", replay.resume_summary());
    }

    let pending: Vec<String> = order
        .iter()
        .filter(|l| !replay.completed.contains_key(*l))
        .cloned()
        .collect();
    let capture_metrics = obs::is_enabled();
    let statuses = if pending.is_empty() {
        Vec::new()
    } else {
        let plan = plan_shards(&pending, opts.shards);
        let cfg = ShardConfig {
            max_respawns: opts.max_respawns,
            heartbeat: std::time::Duration::from_millis(opts.heartbeat_ms),
            stall_timeout: std::time::Duration::from_secs_f64(opts.shard_stall_s),
            ..ShardConfig::default()
        };
        let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
        // Split this process's thread budget across the fleet so
        // `--shards N --jobs J` uses ~J threads total, not N*J.
        let worker_jobs = (jobs() / plan.len().max(1)).max(1);
        let worker_dir = dir.clone();
        let deadline = opts.deadline;
        let max_retries = opts.max_retries;
        let heartbeat_ms = opts.heartbeat_ms;
        let mut spawn = move |k: usize, labels: &[String]| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("shard-worker")
                .arg("--run-dir")
                .arg(&worker_dir)
                .arg("--shard")
                .arg(k.to_string())
                .arg("--points")
                .arg(labels.join(","))
                .arg("--jobs")
                .arg(worker_jobs.to_string())
                .arg("--heartbeat-ms")
                .arg(heartbeat_ms.to_string());
            if let Some(d) = deadline {
                cmd.arg("--deadline-s").arg(format!("{}", d.as_secs_f64()));
            }
            if max_retries > 0 {
                cmd.arg("--max-retries").arg(max_retries.to_string());
            }
            if capture_metrics {
                cmd.arg("--capture-metrics");
            }
            cmd.stdout(std::process::Stdio::null());
            let log = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(worker_dir.join(format!("shard-{k}.log")));
            match log {
                Ok(f) => cmd.stderr(std::process::Stdio::from(f)),
                Err(_) => cmd.stderr(std::process::Stdio::null()),
            };
            cmd
        };
        supervise_shards(&dir, &plan, &cfg, &mut spawn)
            .map_err(|e| format!("shard supervision: {e}"))?
    };

    // Merge: the prior combined journal first (idempotent re-merge, keeps
    // resumed results), then the shard journals ascending.
    let mut sources = vec![combined];
    for (k, path) in list_shard_journals(&dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        match read_journal(&path) {
            Ok(parsed) => sources.push(parsed),
            Err(e) => eprintln!(
                "warning: shard {k} journal unreadable ({e}); its unfinished points count as dropped"
            ),
        }
    }
    let mut synthetic = std::collections::BTreeMap::new();
    for s in &statuses {
        if let ShardOutcome::Dead { dropped } = &s.outcome {
            let detail = s
                .deaths
                .last()
                .cloned()
                .unwrap_or_else(|| "died".to_owned());
            for label in dropped {
                synthetic.insert(
                    label.clone(),
                    SyntheticFailure {
                        status: "failed".to_owned(),
                        data: format!(
                            "shard {} {detail}; respawn budget ({}) exhausted",
                            s.shard, opts.max_respawns
                        ),
                    },
                );
            }
        }
    }
    let merged = merge_journals(order, &sources, &synthetic);
    write_merged(&dir, &merged.text).map_err(|e| format!("journal merge: {e}"))?;
    remove_shard_journals(&dir).map_err(|e| format!("shard journal cleanup: {e}"))?;

    let mut report = RunReport::default();
    let mut texts = Vec::with_capacity(order.len());
    for label in order {
        match merged.points.get(label) {
            Some(p) if p.status == "completed" => {
                print!("{}", p.data);
                texts.push(Some(p.data.clone()));
                if p.source == 0 && opts.resume {
                    report.record_status(label, "journaled", None);
                } else {
                    report.record_status(label, "completed", None);
                }
                if capture_metrics {
                    if let Some(digest) = &p.metrics {
                        obs::inject(
                            digest
                                .lines()
                                .filter_map(PointTrace::parse_digest)
                                .collect(),
                        );
                    }
                }
            }
            Some(p) => {
                report.record_status(label, &p.status, Some(p.data.clone()));
                texts.push(None);
            }
            None => {
                report.record_status(
                    label,
                    "failed",
                    Some("no journal record produced".to_owned()),
                );
                texts.push(None);
            }
        }
    }
    emit_shard_counters(&statuses);
    if !statuses.is_empty() {
        eprint!("{}", render_rollups(&statuses));
    }
    eprint!("{}", report.render());
    let clean = report.is_clean();
    if ephemeral {
        if clean {
            let _ = std::fs::remove_dir_all(&dir);
        } else {
            eprintln!(
                "run directory kept at {} (pass --resume {0} --shards {1} to retry)",
                dir.display(),
                opts.shards
            );
        }
    }
    Ok((report, texts))
}

/// `dabench gen`: sample a seeded scenario population at a difficulty
/// tier, evaluate every scenario on all four platforms through the
/// supervised sweep (full `--run-dir`/`--resume`/`--shards` support),
/// then print the ranking report and run the metamorphic invariant
/// catalog over the journaled records.
///
/// Exit codes: 0 clean, 2 some points failed, 4 invariant violated.
fn run_gen(rest: &[String]) -> Result<ExitCode, String> {
    use dabench::core::gen::{population, Tier};
    let mut tier = genx::DEFAULT_TIER;
    let mut seed = genx::DEFAULT_SEED;
    let mut count = genx::DEFAULT_COUNT;
    let mut passthrough = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--list-tiers" => {
                print!("{}", genx::render_tiers());
                return Ok(ExitCode::SUCCESS);
            }
            "--tier" => {
                let name = value()?;
                tier = Tier::parse(&name).ok_or_else(|| {
                    format!(
                        "--tier: unknown tier `{name}` (expected one of: {})",
                        Tier::ALL
                            .iter()
                            .map(|t| t.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--count" => {
                count = value()?.parse().map_err(|e| format!("--count: {e}"))?;
                if count == 0 {
                    return Err("--count must be at least 1".to_owned());
                }
            }
            other => passthrough.push(other.to_owned()),
        }
    }
    let opts = parse_all_opts(&passthrough)?;
    // `gen=violate:<invariant>` seeds a counterexample into the checker —
    // the run must then fail loudly with exit code 4.
    let inject = parse_injections()?.get("gen").and_then(|i| match i {
        Injection::Violate(inv) => Some(*inv),
        _ => None,
    });

    let scenarios = population(tier, seed, count);
    print!("{}", genx::render_population(tier, seed, &scenarios));
    println!();
    let order: Vec<String> = scenarios.iter().map(|s| s.label()).collect();
    let (report, texts) = run_sweep(&order, &opts)?;

    // Everything downstream re-parses the journaled record texts, so a
    // resumed or sharded run ranks exactly what a fresh run would.
    let records: Vec<(u64, String)> = scenarios
        .iter()
        .zip(&texts)
        .filter_map(|(s, text)| text.as_ref().map(|t| (s.index, t.clone())))
        .collect();
    let parsed: Vec<_> = records
        .iter()
        .filter_map(|(index, record)| {
            genx::parse_record(record)
                .map(|(_, obs)| (dabench::core::gen::sample(tier, seed, *index), obs))
        })
        .collect();
    println!();
    print!("{}", genx::render_results(&parsed));
    println!();
    print!("{}", genx::render_ranking(tier, &genx::ranking(&parsed)));
    println!();
    let outcome = genx::check_population(tier, seed, &records, inject);
    print!("{}", genx::render_invariants(&outcome));
    for v in &outcome.violations {
        eprintln!("{v}");
    }
    Ok(if !outcome.violations.is_empty() {
        ExitCode::from(4)
    } else if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Hidden `dabench shard-worker` mode, spawned by `run_sweep_sharded`: run
/// the assigned points through the shared supervised loop against this
/// shard's own journal (`journal.shard-K.jsonl`, resumed so a respawn
/// re-adopts its predecessor's durable records), with a heartbeat thread
/// appending liveness records for the parent's watchdog. Writes nothing
/// to stdout; exit 0 = clean, 2 = some points failed, 1 = hard error.
fn run_shard_worker(rest: &[String]) -> Result<ExitCode, String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let mut dir: Option<std::path::PathBuf> = None;
    let mut shard: Option<usize> = None;
    let mut points_arg: Option<String> = None;
    let mut deadline = None;
    let mut max_retries = 0u32;
    let mut heartbeat_ms = 200u64;
    let mut capture_metrics = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--run-dir" => dir = Some(value()?.into()),
            "--shard" => shard = Some(value()?.parse().map_err(|e| format!("--shard: {e}"))?),
            "--points" => points_arg = Some(value()?),
            "--deadline-s" => {
                let s: f64 = value()?.parse().map_err(|e| format!("--deadline-s: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("--deadline-s: {s} is not a positive number"));
                }
                deadline = Some(std::time::Duration::from_secs_f64(s));
            }
            "--max-retries" => {
                max_retries = value()?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--heartbeat-ms" => {
                heartbeat_ms = value()?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
                if heartbeat_ms == 0 {
                    return Err("--heartbeat-ms must be at least 1".to_owned());
                }
            }
            "--capture-metrics" => capture_metrics = true,
            other => return Err(format!("unknown flag `{other}` for shard-worker")),
        }
    }
    let dir = dir.ok_or("shard-worker needs --run-dir")?;
    let shard = shard.ok_or("shard-worker needs --shard")?;
    let points_arg = points_arg.ok_or("shard-worker needs --points")?;
    let mut points: Vec<(usize, String)> = Vec::new();
    for label in points_arg.split(',').filter(|s| !s.is_empty()) {
        // Points keep their *global* index (experiment position, or the
        // generated scenario's population index): retry seeds and obs
        // point paths must match a single-process run's exactly.
        let index =
            point_index(label).ok_or_else(|| format!("shard-worker: unknown point `{label}`"))?;
        points.push((index, label.to_owned()));
    }
    if points.is_empty() {
        return Err("shard-worker: --points is empty".to_owned());
    }
    if capture_metrics {
        obs::enable();
    }
    let injections = parse_injections()?;
    let (journal, replay) = RunJournal::resume_named(&dir, &shard_journal_name(shard))
        .map_err(|e| format!("shard {shard} journal: {e}"))?;
    let journal = std::sync::Mutex::new(journal);
    journal
        .lock()
        .expect("journal lock")
        .append(
            SHARD_CONTROL_LABEL,
            STATUS_SHARD_META,
            &format!("shard={shard} points={points_arg}"),
        )
        .map_err(|e| format!("shard {shard} journal: {e}"))?;

    let cfg = RunnerConfig {
        policy: SupervisePolicy {
            deadline,
            max_retries,
            ..SupervisePolicy::default()
        },
        injections,
        journal_started: true,
    };
    let stop = AtomicBool::new(false);
    let outcomes = std::thread::scope(|scope| {
        // Heartbeat: the parent's liveness watchdog keys on journal
        // growth, so a live worker must append even while every point is
        // busy. Append errors are ignored — heartbeats are advisory;
        // point records fail loudly in the runner.
        let beat_every = std::time::Duration::from_millis(heartbeat_ms);
        let stop = &stop;
        let journal = &journal;
        let heartbeat = scope.spawn(move || {
            let mut beat = 0u64;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(beat_every);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                beat += 1;
                let _ = journal.lock().expect("journal lock").append(
                    SHARD_CONTROL_LABEL,
                    dabench::core::supervise::STATUS_HEARTBEAT,
                    &format!("beat={beat}"),
                );
            }
        });
        let outcomes = run_supervised_points(&points, &cfg, Some(journal), &replay);
        stop.store(true, Ordering::SeqCst);
        let _ = heartbeat.join();
        outcomes
    })?;

    let mut report = RunReport::default();
    for ((_, name), outcome) in points.iter().zip(&outcomes) {
        report.record(name, outcome);
    }
    eprint!("{}", report.render());
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn usage() -> &'static str {
    "usage: dabench <command> [options]\n\
     commands:\n\
       table1 table2 table3 table4       reproduce a paper table\n\
       fig6 fig7 fig8 fig9 fig10 fig11 fig12   reproduce a paper figure\n\
       all                               every table and figure, supervised\n\
       serve                             benchmark-as-a-service daemon (JSONL/TCP)\n\
       ablations                         design-choice ablations\n\
       sensitivity                       hardware-parameter elasticities\n\
       infer [opts]                      inference serving: TTFT + tokens/s, 4 platforms\n\
       gen [opts]                        seeded scenario generator + ranking + invariants\n\
       csv <experiment>                  emit an experiment as CSV\n\
       check                             reproduction scorecard (all claims)\n\
       tier1 <wse|rdu-o0|rdu-o1|rdu-o3|ipu|gpu>  profile one workload\n\
       summary                           all platforms, one workload\n\
       faults <wse|rdu-o0|rdu-o1|rdu-o3|ipu>     resilience sweep\n\
       bench                             deterministic perf harness (BENCH_sweeps.json)\n\
     options: --hidden N --layers N --batch N --seq N\n\
              --precision fp16|bf16|cb16|fp32 --model <preset>\n\
              --jobs N   worker threads (default: all cores; also DABENCH_JOBS)\n\
              --trace-out FILE  write a Chrome trace_event JSON trace\n\
              --metrics         per-phase span/counter table on stderr\n\
     all options: --run-dir D   journal each finished point to D (crash-safe)\n\
     \x20            --resume D    replay D's journal, re-run only missing points\n\
     \x20            --deadline-s S  wall-clock budget per point (watchdog)\n\
     \x20            --max-retries N retry transient platform errors N times\n\
     \x20            --shards N    fan points out across N worker processes\n\
     \x20            --max-respawns N  worker respawn budget per shard (default 2)\n\
     \x20            --heartbeat-ms N  shard heartbeat interval (default 200)\n\
     \x20            --shard-stall-s S kill a shard with no journal growth for S s\n\
     \x20            exit codes: 0 clean, 2 some points failed (see stderr report)\n\
     serve options: --addr A:P (default 127.0.0.1:0) --workers N --queue N\n\
     \x20              --cache N --retry-after-ms N --deadline-s S --max-retries N\n\
     \x20              --seed N --run-dir D --resume D\n\
     \x20              drains gracefully on SIGTERM/SIGINT or the `drain` op\n\
     infer options: --model <preset> --batch N --prompt N --decode N\n\
     \x20             --precision fp16|bf16|cb16|fp32 --kv-precision ...|fp8 --continuous\n\
     \x20             (no flags: the default batch x prompt x KV-precision sweep)\n\
     gen options: --tier baby|easy|medium|hard|cosmic --seed N --count N\n\
     \x20          --list-tiers   plus every `all` option (journal, resume, shards)\n\
     \x20          exit codes: 0 clean, 2 point failures, 4 invariant violated\n\
     faults options: --seed N --plan dead=F,link=F,stalls=N,drop=N\n\
     bench options: --quick --list --out FILE --baseline FILE --gate PCT\n\
     \x20              --filter SUBSTR --record LABEL\n\
     \x20              exit codes: 0 clean, 3 regression past the gate\n\
     csv targets: table1-4 fig6-12 ablations sensitivity infer gen"
}

/// Observability flags, accepted by every command: `--trace-out FILE`
/// writes a Chrome `trace_event` JSON trace, `--metrics` prints a
/// per-phase counter table to stderr. Either flag enables the recorder.
#[derive(Debug, Default)]
struct TraceOpts {
    trace_out: Option<std::path::PathBuf>,
    metrics: bool,
}

impl TraceOpts {
    fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics
    }
}

/// Strip `--trace-out FILE` / `--metrics` from `args` (they are valid on
/// any command) and enable the recorder if either was present.
fn extract_trace_flags(args: &mut Vec<String>) -> Result<TraceOpts, String> {
    let mut opts = TraceOpts::default();
    while let Some(pos) = args.iter().position(|a| a == "--trace-out") {
        if pos + 1 >= args.len() {
            return Err("--trace-out needs a value".to_owned());
        }
        opts.trace_out = Some(args[pos + 1].clone().into());
        args.drain(pos..=pos + 1);
    }
    while let Some(pos) = args.iter().position(|a| a == "--metrics") {
        opts.metrics = true;
        args.remove(pos);
    }
    if opts.enabled() {
        obs::enable();
    }
    Ok(opts)
}

/// Flush the recorder: write the Chrome trace (if `--trace-out`) and
/// print the `--metrics` table to stderr. Called once, after the command
/// body has finished and every point context has closed.
fn write_observability(opts: &TraceOpts) -> Result<(), String> {
    if !opts.enabled() {
        return Ok(());
    }
    let traces = obs::take();
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, obs::chrome_trace(&traces))
            .map_err(|e| format!("--trace-out {}: {e}", path.display()))?;
    }
    if opts.metrics {
        eprint!("{}", obs::render_metrics(&traces));
    }
    Ok(())
}

/// Strip every `--jobs N` from `args` and apply the last one as the
/// worker-count override for this process.
fn extract_jobs(args: &mut Vec<String>) -> Result<(), String> {
    while let Some(pos) = args.iter().position(|a| a == "--jobs") {
        if pos + 1 >= args.len() {
            return Err("--jobs needs a value".to_owned());
        }
        let n: usize = args[pos + 1].parse().map_err(|e| format!("--jobs: {e}"))?;
        if n == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        set_jobs(n);
        args.drain(pos..=pos + 1);
    }
    Ok(())
}

/// Graceful-shutdown flag for `serve`, set from SIGTERM/SIGINT.
///
/// `std` cannot install signal handlers and the workspace is
/// dependency-free, so the binary registers a handler through the libc
/// `signal` symbol directly — the one place in the workspace that needs
/// `unsafe` (both library crates `forbid` it). The handler only performs
/// an atomic store, which is async-signal-safe.
#[cfg(unix)]
mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// Non-Unix fallback: no signal wiring; the daemon still drains via the
/// `drain` protocol op.
#[cfg(not(unix))]
mod shutdown {
    use std::sync::atomic::AtomicBool;

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = extract_jobs(&mut args) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let trace = match extract_trace_flags(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let code = if cmd == "all" {
        // `all` opens one point context per experiment itself.
        match run_all(rest) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else if cmd == "gen" {
        // `gen` supervises one point per generated scenario, like `all`.
        match run_gen(rest) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else if cmd == "shard-worker" {
        // Hidden: one shard of a `dabench all --shards N` fleet.
        match run_shard_worker(rest) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else if cmd == "serve" {
        // `serve` opens one point context for the daemon's lifetime so
        // the store counters it publishes at drain land in `--metrics`.
        shutdown::install();
        let result = obs::with_point(0, "serve", || run_serve(rest, &shutdown::REQUESTED));
        match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else if cmd == "bench" {
        // `bench` owns the recorder (per-case profile passes) and the
        // exit code (3 = perf regression past the gate).
        match run_bench(rest) {
            Ok(code) => ExitCode::from(code),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let result = obs::with_point(0, cmd, || run_command(cmd, rest));
        match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    };
    if let Err(e) = write_observability(&trace) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    code
}

/// Dispatch every command except `all` (which supervises its own points).
fn run_command(cmd: &str, rest: &[String]) -> Result<(), String> {
    match cmd {
        "check" => {
            let checks = validation::run();
            println!("{}", validation::render(&checks));
            let failed = checks.iter().filter(|c| !c.passed).count();
            if failed == 0 {
                println!("all {} claims reproduced", checks.len());
                Ok(())
            } else {
                Err(format!("{failed} claim(s) failed"))
            }
        }
        "csv" => rest
            .first()
            .ok_or_else(|| "csv needs an experiment name".to_owned())
            .and_then(|name| {
                let tables =
                    experiment_tables(name).ok_or_else(|| format!("no CSV export for `{name}`"))?;
                for t in tables {
                    print!("{}", t.to_csv());
                }
                Ok(())
            }),
        "tier1" => rest
            .split_first()
            .ok_or_else(|| "tier1 needs a platform".to_owned())
            .and_then(|(name, flags)| {
                let p = platform(name)?;
                let opts = parse_opts(flags)?;
                let w = workload(&opts)?;
                match tier1::run(p.as_ref(), &w) {
                    Ok(r) => {
                        println!("{r:#?}");
                        Ok(())
                    }
                    Err(e) => Err(format!("{name} cannot run {w}: {e}")),
                }
            }),
        "faults" => run_faults(rest),
        "infer" => run_infer(rest),
        "summary" => parse_opts(rest).and_then(|opts| {
            let w = workload(&opts)?;
            println!("Workload: {w}\n");
            println!("{}", summary::render(&summary::run(&w)));
            Ok(())
        }),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => match render_experiment(other) {
            Some(text) => {
                print!("{text}");
                Ok(())
            }
            None => Err(format!("unknown command `{other}`\n{}", usage())),
        },
    }
}
