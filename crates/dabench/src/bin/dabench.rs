//! `dabench` — command-line front end for the DABench-LLM reproduction.
//!
//! ```text
//! dabench table1|table2|table3|table4        reproduce a paper table
//! dabench fig6|fig7|fig8|fig9|fig10|fig11|fig12   reproduce a paper figure
//! dabench all                                everything above
//! dabench ablations                          design-choice ablations
//! dabench tier1 <platform> [opts]            profile one workload
//! dabench summary [opts]                     all platforms, one workload
//!
//! platforms: wse | rdu-o0 | rdu-o1 | rdu-o3 | ipu | gpu
//! opts: --hidden N  --layers N  --batch N  --seq N
//!       --precision fp16|bf16|cb16|fp32  --model gpt2-small|gpt2-xl|llama2-7b
//!       --jobs N   (worker threads; DABENCH_JOBS env var also honored)
//! ```
//!
//! All commands produce byte-identical output regardless of `--jobs`:
//! parallel work is collected back in input order before printing.

use dabench::core::{par_map, set_jobs, tier1, Degradable, Platform};
use dabench::experiments::{
    ablations, fig10, fig11, fig12, fig6, fig7, fig8, fig9, sensitivity, summary, table1, table2,
    table3, table4, validation,
};
use dabench::faults::{render_report, resilience_sweep, PlanSpec};
use dabench::gpu::GpuCluster;
use dabench::ipu::Ipu;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;
use std::process::ExitCode;

struct Opts {
    hidden: u64,
    layers: u64,
    batch: u64,
    seq: u64,
    precision: Precision,
    model: Option<ModelConfig>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            hidden: 768,
            layers: 12,
            batch: 32,
            seq: 1024,
            precision: Precision::Fp16,
            model: None,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--hidden" => opts.hidden = value()?.parse().map_err(|e| format!("--hidden: {e}"))?,
            "--layers" => opts.layers = value()?.parse().map_err(|e| format!("--layers: {e}"))?,
            "--batch" => opts.batch = value()?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--seq" => opts.seq = value()?.parse().map_err(|e| format!("--seq: {e}"))?,
            "--precision" => {
                opts.precision = match value()?.as_str() {
                    "fp16" => Precision::Fp16,
                    "bf16" => Precision::Bf16,
                    "cb16" => Precision::Cb16,
                    "fp32" => Precision::Fp32,
                    other => return Err(format!("unknown precision `{other}`")),
                }
            }
            "--model" => {
                opts.model = Some(match value()?.as_str() {
                    "gpt2-mini" => ModelConfig::gpt2_mini(),
                    "gpt2-tiny" => ModelConfig::gpt2_tiny(),
                    "gpt2-small" => ModelConfig::gpt2_small(),
                    "gpt2-medium" => ModelConfig::gpt2_medium(),
                    "gpt2-large" => ModelConfig::gpt2_large(),
                    "gpt2-xl" => ModelConfig::gpt2_xl(),
                    "llama2-7b" => ModelConfig::llama2_7b(),
                    "llama2-13b" => ModelConfig::llama2_13b(),
                    other => return Err(format!("unknown model `{other}`")),
                })
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn workload(opts: &Opts) -> Result<TrainingWorkload, String> {
    if opts.batch == 0 || opts.seq == 0 || opts.layers == 0 || opts.hidden == 0 {
        return Err("--hidden, --layers, --batch and --seq must be positive".to_owned());
    }
    let model = opts
        .model
        .clone()
        .unwrap_or_else(|| ModelConfig::gpt2_probe(opts.hidden, opts.layers));
    Ok(TrainingWorkload::new(
        model,
        opts.batch,
        opts.seq,
        opts.precision,
    ))
}

fn platform(name: &str) -> Result<Box<dyn Platform>, String> {
    Ok(match name {
        "wse" => Box::new(Wse::default()),
        "rdu-o0" => Box::new(Rdu::with_mode(CompilationMode::O0)),
        "rdu-o1" => Box::new(Rdu::with_mode(CompilationMode::O1)),
        "rdu" | "rdu-o3" => Box::new(Rdu::with_mode(CompilationMode::O3)),
        "ipu" => Box::new(Ipu::default()),
        "gpu" => Box::new(GpuCluster::default()),
        other => return Err(format!("unknown platform `{other}`")),
    })
}

fn degradable(name: &str) -> Result<Box<dyn Degradable + Sync>, String> {
    Ok(match name {
        "wse" => Box::new(Wse::default()),
        "rdu-o0" => Box::new(Rdu::with_mode(CompilationMode::O0)),
        "rdu-o1" => Box::new(Rdu::with_mode(CompilationMode::O1)),
        "rdu" | "rdu-o3" => Box::new(Rdu::with_mode(CompilationMode::O3)),
        "ipu" => Box::new(Ipu::default()),
        "gpu" => return Err("the GPU reference has no dataflow fault model".to_owned()),
        other => return Err(format!("unknown platform `{other}`")),
    })
}

/// Run a resilience sweep: `dabench faults <platform> [--seed N] [--plan
/// SPEC] [workload opts]`.
fn run_faults(rest: &[String]) -> Result<(), String> {
    let (name, flags) = rest
        .split_first()
        .ok_or_else(|| "faults needs a platform (wse|rdu-o0|rdu-o1|rdu-o3|ipu)".to_owned())?;
    let mut seed = 42u64;
    let mut plan = PlanSpec::default();
    let mut passthrough = Vec::new();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .ok_or_else(|| "--seed needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--plan" => {
                plan = it
                    .next()
                    .ok_or_else(|| "--plan needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--plan: {e}"))?;
            }
            other => passthrough.push(other.to_owned()),
        }
    }
    let platform = degradable(name)?;
    let opts = parse_opts(&passthrough)?;
    let w = workload(&opts)?;
    let report = resilience_sweep(platform.as_ref(), &w, &plan, seed);
    println!("Workload: {w}\n");
    print!("{}", render_report(&report));
    Ok(())
}

/// All table/figure command names, in paper order.
const EXPERIMENTS: [&str; 11] = [
    "table1", "table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12",
];

/// The tables behind one paper artifact; `None` when the name is unknown.
fn experiment_tables(name: &str) -> Option<Vec<dabench::render::Table>> {
    Some(match name {
        "table1" => vec![table1::render(&table1::run())],
        "table2" => {
            let (a, b) = table2::render(&table2::run_o3(), &table2::run_shards());
            vec![a, b]
        }
        "table3" => vec![table3::render(&table3::run())],
        "table4" => vec![table4::render(&table4::run())],
        "fig6" => vec![fig6::render(&fig6::run())],
        "fig7" => vec![
            fig7::render(&fig7::run_layers(), "a"),
            fig7::render(&fig7::run_hidden_sizes(), "b"),
        ],
        "fig8" => vec![
            fig8::render(&fig8::run_layers(), "a"),
            fig8::render(&fig8::run_hidden_sizes(), "b"),
        ],
        "fig9" => fig9::render(
            &fig9::run_wse(),
            &fig9::run_rdu_layers(),
            &fig9::run_rdu_hidden(),
            &fig9::run_ipu(),
        ),
        "fig10" => vec![fig10::render(&fig10::run())],
        "fig11" => fig11::render(&fig11::run_wse(), &fig11::run_rdu(), &fig11::run_ipu()),
        "fig12" => vec![fig12::render(&fig12::run())],
        "ablations" => ablation_tables(),
        "sensitivity" => vec![sensitivity::render(&sensitivity::run())],
        _ => return None,
    })
}

/// Render one paper artifact to the exact text `dabench <name>` prints
/// (each table followed by a newline, table2's pair joined specially).
fn render_experiment(name: &str) -> Option<String> {
    let tables = experiment_tables(name)?;
    let mut out = String::new();
    if name == "table2" {
        // table2 historically prints its two tables as one block.
        out.push_str(&format!("{}\n{}\n", tables[0], tables[1]));
    } else {
        for t in tables {
            out.push_str(&format!("{t}\n"));
        }
    }
    Some(out)
}

fn ablation_tables() -> Vec<dabench::render::Table> {
    let builders: [fn() -> dabench::render::Table; 5] = [
        || {
            ablations::render(
                "Ablation: WSE transmission-PE overhead (24 layers)",
                "ratio",
                &ablations::wse_transmission_ratio(),
            )
        },
        || {
            ablations::render(
                "Ablation: WSE config-memory growth vs max depth",
                "coef",
                &ablations::wse_config_growth(),
            )
        },
        || {
            ablations::render(
                "Ablation: RDU operator fusion",
                "fused",
                &ablations::rdu_fusion(),
            )
        },
        || {
            ablations::render(
                "Ablation: RDU per-section PCU ceiling (HS 1600)",
                "ceiling",
                &ablations::rdu_section_ceiling(),
            )
        },
        || {
            ablations::render(
                "Ablation: IPU activation residency vs capacity",
                "residency",
                &ablations::ipu_activation_residency(),
            )
        },
    ];
    par_map(&builders, |build| build())
}

fn usage() -> &'static str {
    "usage: dabench <command> [options]\n\
     commands:\n\
       table1 table2 table3 table4       reproduce a paper table\n\
       fig6 fig7 fig8 fig9 fig10 fig11 fig12   reproduce a paper figure\n\
       all                               every table and figure\n\
       ablations                         design-choice ablations\n\
       sensitivity                       hardware-parameter elasticities\n\
       csv <experiment>                  emit an experiment as CSV\n\
       check                             reproduction scorecard (all claims)\n\
       tier1 <wse|rdu-o0|rdu-o1|rdu-o3|ipu|gpu>  profile one workload\n\
       summary                           all platforms, one workload\n\
       faults <wse|rdu-o0|rdu-o1|rdu-o3|ipu>     resilience sweep\n\
     options: --hidden N --layers N --batch N --seq N\n\
              --precision fp16|bf16|cb16|fp32 --model <preset>\n\
              --jobs N   worker threads (default: all cores; also DABENCH_JOBS)\n\
     faults options: --seed N --plan dead=F,link=F,stalls=N,drop=N\n\
     csv targets: table1-4 fig6-12 ablations sensitivity"
}

/// Strip every `--jobs N` from `args` and apply the last one as the
/// worker-count override for this process.
fn extract_jobs(args: &mut Vec<String>) -> Result<(), String> {
    while let Some(pos) = args.iter().position(|a| a == "--jobs") {
        if pos + 1 >= args.len() {
            return Err("--jobs needs a value".to_owned());
        }
        let n: usize = args[pos + 1].parse().map_err(|e| format!("--jobs: {e}"))?;
        if n == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        set_jobs(n);
        args.drain(pos..=pos + 1);
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = extract_jobs(&mut args) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result: Result<(), String> = match cmd.as_str() {
        "all" => {
            // Render every artifact in parallel, print in paper order;
            // a name with no renderer is a hard error, not a shrug.
            let rendered = par_map(&EXPERIMENTS, |name| render_experiment(name));
            let mut missing = Vec::new();
            for (name, text) in EXPERIMENTS.iter().zip(&rendered) {
                match text {
                    Some(t) => print!("{t}"),
                    None => missing.push(*name),
                }
            }
            if missing.is_empty() {
                Ok(())
            } else {
                Err(format!("no renderer for: {}", missing.join(", ")))
            }
        }
        "check" => {
            let checks = validation::run();
            println!("{}", validation::render(&checks));
            let failed = checks.iter().filter(|c| !c.passed).count();
            if failed == 0 {
                println!("all {} claims reproduced", checks.len());
                Ok(())
            } else {
                Err(format!("{failed} claim(s) failed"))
            }
        }
        "csv" => rest
            .first()
            .ok_or_else(|| "csv needs an experiment name".to_owned())
            .and_then(|name| {
                let tables =
                    experiment_tables(name).ok_or_else(|| format!("no CSV export for `{name}`"))?;
                for t in tables {
                    print!("{}", t.to_csv());
                }
                Ok(())
            }),
        "tier1" => rest
            .split_first()
            .ok_or_else(|| "tier1 needs a platform".to_owned())
            .and_then(|(name, flags)| {
                let p = platform(name)?;
                let opts = parse_opts(flags)?;
                let w = workload(&opts)?;
                match tier1::run(p.as_ref(), &w) {
                    Ok(r) => {
                        println!("{r:#?}");
                        Ok(())
                    }
                    Err(e) => Err(format!("{name} cannot run {w}: {e}")),
                }
            }),
        "faults" => run_faults(rest),
        "summary" => parse_opts(rest).and_then(|opts| {
            let w = workload(&opts)?;
            println!("Workload: {w}\n");
            println!("{}", summary::render(&summary::run(&w)));
            Ok(())
        }),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => match render_experiment(other) {
            Some(text) => {
                print!("{text}");
                Ok(())
            }
            None => Err(format!("unknown command `{other}`\n{}", usage())),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
