//! `dabench` — command-line front end for the DABench-LLM reproduction.
//!
//! ```text
//! dabench table1|table2|table3|table4        reproduce a paper table
//! dabench fig6|fig7|fig8|fig9|fig10|fig11|fig12   reproduce a paper figure
//! dabench all                                everything above, supervised
//! dabench serve                              benchmark-as-a-service daemon
//! dabench ablations                          design-choice ablations
//! dabench tier1 <platform> [opts]            profile one workload
//! dabench summary [opts]                     all platforms, one workload
//!
//! platforms: wse | rdu-o0 | rdu-o1 | rdu-o3 | ipu | gpu
//! opts: --hidden N  --layers N  --batch N  --seq N
//!       --precision fp16|bf16|cb16|fp32  --model gpt2-small|gpt2-xl|llama2-7b
//!       --jobs N   (worker threads; DABENCH_JOBS env var also honored)
//!       --trace-out FILE  (Chrome trace_event JSON)  --metrics (stderr table)
//! all opts: --run-dir D  --resume D  --deadline-s S  --max-retries N
//! ```
//!
//! All commands produce byte-identical output regardless of `--jobs`:
//! parallel work is collected back in input order before printing.
//!
//! `all` runs under the supervision layer (`dabench_core::supervise`, see
//! docs/supervision.md): each paper artifact is one supervised point with
//! panic isolation, an optional wall-clock deadline, deterministic
//! retries, and — with `--run-dir` — a crash-safe journal that `--resume`
//! replays to produce byte-identical output after a mid-run kill. Exit
//! code 2 flags a run that completed with failed/panicked/timed-out
//! points.
//!
//! `serve` turns the same supervised machinery into a long-running daemon
//! speaking JSONL over TCP, with admission control, load shedding, a
//! shared result cache, graceful drain on SIGTERM/SIGINT, and crash-safe
//! `--resume` (see docs/serve.md).

use dabench::bench_suite::run_bench;
use dabench::core::obs;
use dabench::core::supervise::{
    parse_injections, PointOutcome, Replay, RunJournal, RunReport, SupervisePolicy,
};
use dabench::core::{
    par_map, set_jobs, supervise_point, tier1, Degradable, Platform, PlatformError, PointTrace,
};
use dabench::experiments::{infer, summary, validation};
use dabench::faults::{render_report, resilience_sweep, PlanSpec};
use dabench::gpu::GpuCluster;
use dabench::ipu::Ipu;
use dabench::model::{BatchingMode, InferenceWorkload, ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::serve::run_serve;
use dabench::suite::{experiment_tables, render_experiment, EXPERIMENTS};
use dabench::wse::Wse;
use std::process::ExitCode;

struct Opts {
    hidden: u64,
    layers: u64,
    batch: u64,
    seq: u64,
    precision: Precision,
    model: Option<ModelConfig>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            hidden: 768,
            layers: 12,
            batch: 32,
            seq: 1024,
            precision: Precision::Fp16,
            model: None,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--hidden" => opts.hidden = value()?.parse().map_err(|e| format!("--hidden: {e}"))?,
            "--layers" => opts.layers = value()?.parse().map_err(|e| format!("--layers: {e}"))?,
            "--batch" => opts.batch = value()?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--seq" => opts.seq = value()?.parse().map_err(|e| format!("--seq: {e}"))?,
            "--precision" => {
                opts.precision = match value()?.as_str() {
                    "fp16" => Precision::Fp16,
                    "bf16" => Precision::Bf16,
                    "cb16" => Precision::Cb16,
                    "fp32" => Precision::Fp32,
                    other => return Err(format!("unknown precision `{other}`")),
                }
            }
            "--model" => opts.model = Some(parse_model(&value()?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_model(name: &str) -> Result<ModelConfig, String> {
    Ok(match name {
        "gpt2-mini" => ModelConfig::gpt2_mini(),
        "gpt2-tiny" => ModelConfig::gpt2_tiny(),
        "gpt2-small" => ModelConfig::gpt2_small(),
        "gpt2-medium" => ModelConfig::gpt2_medium(),
        "gpt2-large" => ModelConfig::gpt2_large(),
        "gpt2-xl" => ModelConfig::gpt2_xl(),
        "llama2-7b" => ModelConfig::llama2_7b(),
        "llama2-13b" => ModelConfig::llama2_13b(),
        "llama2-70b" => ModelConfig::llama2_70b(),
        other => return Err(format!("unknown model `{other}`")),
    })
}

/// `dabench infer`: no flags prints the default sweep (byte-identical to
/// `csv infer`'s tables); flags profile one explicit serving workload on
/// all four platforms.
fn run_infer(rest: &[String]) -> Result<(), String> {
    if rest.is_empty() {
        print!(
            "{}",
            render_experiment("infer").expect("infer is a registered experiment")
        );
        return Ok(());
    }
    let mut model = ModelConfig::llama2_7b();
    let mut batch = 8u64;
    let mut prompt = 512u64;
    let mut decode = 128u64;
    let mut precision = Precision::Fp16;
    let mut kv_precision = None;
    let mut batching = BatchingMode::Static;
    let parse_precision = |v: &str| -> Result<Precision, String> {
        Ok(match v {
            "fp16" => Precision::Fp16,
            "bf16" => Precision::Bf16,
            "cb16" => Precision::Cb16,
            "fp32" => Precision::Fp32,
            "fp8" => Precision::Fp8,
            other => return Err(format!("unknown precision `{other}`")),
        })
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--model" => model = parse_model(&value()?)?,
            "--batch" => batch = value()?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--prompt" => prompt = value()?.parse().map_err(|e| format!("--prompt: {e}"))?,
            "--decode" => decode = value()?.parse().map_err(|e| format!("--decode: {e}"))?,
            "--precision" => precision = parse_precision(&value()?)?,
            "--kv-precision" => kv_precision = Some(parse_precision(&value()?)?),
            "--continuous" => batching = BatchingMode::Continuous,
            other => return Err(format!("unknown flag `{other}` for infer")),
        }
    }
    let mut w = InferenceWorkload::new(model, batch, prompt, decode, precision)
        .map_err(|e| e.to_string())?
        .with_batching(batching);
    if let Some(kv) = kv_precision {
        w = w.with_kv_precision(kv);
    }
    println!("Workload: {w}\n");
    println!("{}", infer::render_single(&infer::run_single(&w)));
    Ok(())
}

fn workload(opts: &Opts) -> Result<TrainingWorkload, String> {
    if opts.batch == 0 || opts.seq == 0 || opts.layers == 0 || opts.hidden == 0 {
        return Err("--hidden, --layers, --batch and --seq must be positive".to_owned());
    }
    let model = opts
        .model
        .clone()
        .unwrap_or_else(|| ModelConfig::gpt2_probe(opts.hidden, opts.layers));
    Ok(TrainingWorkload::new(
        model,
        opts.batch,
        opts.seq,
        opts.precision,
    ))
}

fn platform(name: &str) -> Result<Box<dyn Platform>, String> {
    Ok(match name {
        "wse" => Box::new(Wse::default()),
        "rdu-o0" => Box::new(Rdu::with_mode(CompilationMode::O0)),
        "rdu-o1" => Box::new(Rdu::with_mode(CompilationMode::O1)),
        "rdu" | "rdu-o3" => Box::new(Rdu::with_mode(CompilationMode::O3)),
        "ipu" => Box::new(Ipu::default()),
        "gpu" => Box::new(GpuCluster::default()),
        other => return Err(format!("unknown platform `{other}`")),
    })
}

fn degradable(name: &str) -> Result<Box<dyn Degradable + Sync>, String> {
    Ok(match name {
        "wse" => Box::new(Wse::default()),
        "rdu-o0" => Box::new(Rdu::with_mode(CompilationMode::O0)),
        "rdu-o1" => Box::new(Rdu::with_mode(CompilationMode::O1)),
        "rdu" | "rdu-o3" => Box::new(Rdu::with_mode(CompilationMode::O3)),
        "ipu" => Box::new(Ipu::default()),
        "gpu" => return Err("the GPU reference has no dataflow fault model".to_owned()),
        other => return Err(format!("unknown platform `{other}`")),
    })
}

/// Run a resilience sweep: `dabench faults <platform> [--seed N] [--plan
/// SPEC] [workload opts]`.
fn run_faults(rest: &[String]) -> Result<(), String> {
    let (name, flags) = rest
        .split_first()
        .ok_or_else(|| "faults needs a platform (wse|rdu-o0|rdu-o1|rdu-o3|ipu)".to_owned())?;
    let mut seed = 42u64;
    let mut plan = PlanSpec::default();
    let mut passthrough = Vec::new();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .ok_or_else(|| "--seed needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--plan" => {
                plan = it
                    .next()
                    .ok_or_else(|| "--plan needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--plan: {e}"))?;
            }
            other => passthrough.push(other.to_owned()),
        }
    }
    let platform = degradable(name)?;
    let opts = parse_opts(&passthrough)?;
    let w = workload(&opts)?;
    let report = resilience_sweep(platform.as_ref(), &w, &plan, seed);
    println!("Workload: {w}\n");
    print!("{}", render_report(&report));
    Ok(())
}

/// Options for the supervised `all` run.
struct AllOpts {
    run_dir: Option<std::path::PathBuf>,
    resume: bool,
    deadline: Option<std::time::Duration>,
    max_retries: u32,
}

fn parse_all_opts(args: &[String]) -> Result<AllOpts, String> {
    let mut opts = AllOpts {
        run_dir: None,
        resume: false,
        deadline: None,
        max_retries: 0,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--run-dir" => {
                opts.run_dir = Some(value()?.into());
            }
            "--resume" => {
                opts.run_dir = Some(value()?.into());
                opts.resume = true;
            }
            "--deadline-s" => {
                let s: f64 = value()?.parse().map_err(|e| format!("--deadline-s: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("--deadline-s: {s} is not a positive number"));
                }
                opts.deadline = Some(std::time::Duration::from_secs_f64(s));
            }
            "--max-retries" => {
                opts.max_retries = value()?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}` for all")),
        }
    }
    Ok(opts)
}

/// Supervised `dabench all`: every artifact is one supervised point.
/// Successful texts print to stdout in paper order (byte-identical to the
/// unsupervised per-command output); the run report goes to stderr so it
/// never perturbs diffable output. Exit code 2 means some points failed
/// but the sweep itself survived.
fn run_all(rest: &[String]) -> Result<ExitCode, String> {
    let opts = parse_all_opts(rest)?;
    let injections = parse_injections()?;
    let policy = SupervisePolicy {
        deadline: opts.deadline,
        max_retries: opts.max_retries,
        ..SupervisePolicy::default()
    };
    let (journal, replay) = match &opts.run_dir {
        Some(dir) if opts.resume => {
            let (j, replay) =
                RunJournal::resume(dir).map_err(|e| format!("--resume {}: {e}", dir.display()))?;
            (Some(std::sync::Mutex::new(j)), replay)
        }
        Some(dir) => {
            let j =
                RunJournal::create(dir).map_err(|e| format!("--run-dir {}: {e}", dir.display()))?;
            (Some(std::sync::Mutex::new(j)), Replay::default())
        }
        None => (None, Replay::default()),
    };
    if let Some(tail) = &replay.dropped_tail {
        eprintln!("warning: discarded truncated journal record {tail:?}; its point will re-run");
    }
    if opts.resume {
        // One-line accounting of what the journal bought us: replayed
        // points print verbatim, adopted ones re-run, an abandoned tail
        // was cut mid-append. Partial recovery must never be silent.
        eprintln!("{}", replay.resume_summary());
    }

    // Re-seed the recorder from journaled digests so a resumed run's
    // `--trace-out`/`--metrics` output is byte-identical to the original
    // run's. Only points whose output also replays count — a digest for a
    // point that will re-run would otherwise appear twice.
    if obs::is_enabled() {
        for (name, digest) in &replay.metrics {
            if replay.completed.contains_key(name) {
                obs::inject(
                    digest
                        .lines()
                        .filter_map(PointTrace::parse_digest)
                        .collect(),
                );
            }
        }
    }

    // A journal that cannot persist must stop the run — `--resume` would
    // otherwise silently re-execute points it believes are unrecorded.
    let journal_error: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    let indexed: Vec<(usize, &str)> = EXPERIMENTS.iter().copied().enumerate().collect();
    let outcomes = par_map(&indexed, |&(i, name)| {
        if let Some(value) = replay.completed.get(name) {
            return PointOutcome::Journaled {
                value: value.clone(),
            };
        }
        let injection = injections.get(name).copied();
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let point = name.to_owned();
        let outcome = supervise_point(name, i as u64, &policy, move |_seed| {
            // Retry hygiene: a previous failed attempt of this point may
            // have flushed partial traces; they must not leak into the
            // output of the attempt that eventually succeeds.
            let _ = obs::drain_prefix(&[i as u64]);
            if let Some(injection) = injection {
                injection.fire_counted(&attempts)?;
            }
            obs::with_point(i as u64, &point, || render_experiment(&point))
                .ok_or_else(|| PlatformError::Unsupported(format!("no renderer for `{point}`")))
        });
        if let Some(journal) = &journal {
            let data = match &outcome {
                PointOutcome::Completed { value, .. } => Some(value.clone()),
                PointOutcome::Failed { error, .. } => Some(error.to_string()),
                PointOutcome::Panicked { message } => Some(message.clone()),
                PointOutcome::TimedOut { deadline } => {
                    Some(format!("exceeded {:.1} s deadline", deadline.as_secs_f64()))
                }
                PointOutcome::Journaled { .. } => None,
            };
            if let Some(data) = data {
                let appended =
                    journal
                        .lock()
                        .expect("journal lock")
                        .append(name, outcome.status(), &data);
                if let Err(e) = appended {
                    journal_error
                        .lock()
                        .expect("journal error lock")
                        .get_or_insert_with(|| format!("journal append for `{name}`: {e}"));
                }
            }
        }
        // Harvest this point's traces. Completed points journal their
        // digest (so `--resume` replays the same metrics) and go back into
        // the sink; failed points are dropped so the trace only ever
        // reflects what printed. Journaled points keep their replayed
        // traces untouched.
        if obs::is_enabled() && !matches!(outcome, PointOutcome::Journaled { .. }) {
            let traces = obs::drain_prefix(&[i as u64]);
            if matches!(outcome, PointOutcome::Completed { .. }) && !traces.is_empty() {
                if let Some(journal) = &journal {
                    let digest = traces
                        .iter()
                        .map(PointTrace::digest)
                        .collect::<Vec<_>>()
                        .join("\n");
                    let appended = journal
                        .lock()
                        .expect("journal lock")
                        .append(name, "metrics", &digest);
                    if let Err(e) = appended {
                        journal_error
                            .lock()
                            .expect("journal error lock")
                            .get_or_insert_with(|| format!("journal append for `{name}`: {e}"));
                    }
                }
                obs::inject(traces);
            }
        }
        outcome
    });
    if let Some(e) = journal_error.into_inner().expect("journal error lock") {
        return Err(e);
    }

    let mut report = RunReport::default();
    for (&(_, name), outcome) in indexed.iter().zip(&outcomes) {
        report.record(name, outcome);
        if let Some(text) = outcome.value() {
            print!("{text}");
        }
    }
    eprint!("{}", report.render());
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn usage() -> &'static str {
    "usage: dabench <command> [options]\n\
     commands:\n\
       table1 table2 table3 table4       reproduce a paper table\n\
       fig6 fig7 fig8 fig9 fig10 fig11 fig12   reproduce a paper figure\n\
       all                               every table and figure, supervised\n\
       serve                             benchmark-as-a-service daemon (JSONL/TCP)\n\
       ablations                         design-choice ablations\n\
       sensitivity                       hardware-parameter elasticities\n\
       infer [opts]                      inference serving: TTFT + tokens/s, 4 platforms\n\
       csv <experiment>                  emit an experiment as CSV\n\
       check                             reproduction scorecard (all claims)\n\
       tier1 <wse|rdu-o0|rdu-o1|rdu-o3|ipu|gpu>  profile one workload\n\
       summary                           all platforms, one workload\n\
       faults <wse|rdu-o0|rdu-o1|rdu-o3|ipu>     resilience sweep\n\
       bench                             deterministic perf harness (BENCH_sweeps.json)\n\
     options: --hidden N --layers N --batch N --seq N\n\
              --precision fp16|bf16|cb16|fp32 --model <preset>\n\
              --jobs N   worker threads (default: all cores; also DABENCH_JOBS)\n\
              --trace-out FILE  write a Chrome trace_event JSON trace\n\
              --metrics         per-phase span/counter table on stderr\n\
     all options: --run-dir D   journal each finished point to D (crash-safe)\n\
     \x20            --resume D    replay D's journal, re-run only missing points\n\
     \x20            --deadline-s S  wall-clock budget per point (watchdog)\n\
     \x20            --max-retries N retry transient platform errors N times\n\
     \x20            exit codes: 0 clean, 2 some points failed (see stderr report)\n\
     serve options: --addr A:P (default 127.0.0.1:0) --workers N --queue N\n\
     \x20              --cache N --retry-after-ms N --deadline-s S --max-retries N\n\
     \x20              --seed N --run-dir D --resume D\n\
     \x20              drains gracefully on SIGTERM/SIGINT or the `drain` op\n\
     infer options: --model <preset> --batch N --prompt N --decode N\n\
     \x20             --precision fp16|bf16|cb16|fp32 --kv-precision ...|fp8 --continuous\n\
     \x20             (no flags: the default batch x prompt x KV-precision sweep)\n\
     faults options: --seed N --plan dead=F,link=F,stalls=N,drop=N\n\
     bench options: --quick --list --out FILE --baseline FILE --gate PCT\n\
     \x20              --filter SUBSTR --record LABEL\n\
     \x20              exit codes: 0 clean, 3 regression past the gate\n\
     csv targets: table1-4 fig6-12 ablations sensitivity infer"
}

/// Observability flags, accepted by every command: `--trace-out FILE`
/// writes a Chrome `trace_event` JSON trace, `--metrics` prints a
/// per-phase counter table to stderr. Either flag enables the recorder.
#[derive(Debug, Default)]
struct TraceOpts {
    trace_out: Option<std::path::PathBuf>,
    metrics: bool,
}

impl TraceOpts {
    fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics
    }
}

/// Strip `--trace-out FILE` / `--metrics` from `args` (they are valid on
/// any command) and enable the recorder if either was present.
fn extract_trace_flags(args: &mut Vec<String>) -> Result<TraceOpts, String> {
    let mut opts = TraceOpts::default();
    while let Some(pos) = args.iter().position(|a| a == "--trace-out") {
        if pos + 1 >= args.len() {
            return Err("--trace-out needs a value".to_owned());
        }
        opts.trace_out = Some(args[pos + 1].clone().into());
        args.drain(pos..=pos + 1);
    }
    while let Some(pos) = args.iter().position(|a| a == "--metrics") {
        opts.metrics = true;
        args.remove(pos);
    }
    if opts.enabled() {
        obs::enable();
    }
    Ok(opts)
}

/// Flush the recorder: write the Chrome trace (if `--trace-out`) and
/// print the `--metrics` table to stderr. Called once, after the command
/// body has finished and every point context has closed.
fn write_observability(opts: &TraceOpts) -> Result<(), String> {
    if !opts.enabled() {
        return Ok(());
    }
    let traces = obs::take();
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, obs::chrome_trace(&traces))
            .map_err(|e| format!("--trace-out {}: {e}", path.display()))?;
    }
    if opts.metrics {
        eprint!("{}", obs::render_metrics(&traces));
    }
    Ok(())
}

/// Strip every `--jobs N` from `args` and apply the last one as the
/// worker-count override for this process.
fn extract_jobs(args: &mut Vec<String>) -> Result<(), String> {
    while let Some(pos) = args.iter().position(|a| a == "--jobs") {
        if pos + 1 >= args.len() {
            return Err("--jobs needs a value".to_owned());
        }
        let n: usize = args[pos + 1].parse().map_err(|e| format!("--jobs: {e}"))?;
        if n == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        set_jobs(n);
        args.drain(pos..=pos + 1);
    }
    Ok(())
}

/// Graceful-shutdown flag for `serve`, set from SIGTERM/SIGINT.
///
/// `std` cannot install signal handlers and the workspace is
/// dependency-free, so the binary registers a handler through the libc
/// `signal` symbol directly — the one place in the workspace that needs
/// `unsafe` (both library crates `forbid` it). The handler only performs
/// an atomic store, which is async-signal-safe.
#[cfg(unix)]
mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// Non-Unix fallback: no signal wiring; the daemon still drains via the
/// `drain` protocol op.
#[cfg(not(unix))]
mod shutdown {
    use std::sync::atomic::AtomicBool;

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = extract_jobs(&mut args) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let trace = match extract_trace_flags(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let code = if cmd == "all" {
        // `all` opens one point context per experiment itself.
        match run_all(rest) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else if cmd == "serve" {
        // `serve` opens one point context for the daemon's lifetime so
        // the store counters it publishes at drain land in `--metrics`.
        shutdown::install();
        let result = obs::with_point(0, "serve", || run_serve(rest, &shutdown::REQUESTED));
        match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else if cmd == "bench" {
        // `bench` owns the recorder (per-case profile passes) and the
        // exit code (3 = perf regression past the gate).
        match run_bench(rest) {
            Ok(code) => ExitCode::from(code),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let result = obs::with_point(0, cmd, || run_command(cmd, rest));
        match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    };
    if let Err(e) = write_observability(&trace) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    code
}

/// Dispatch every command except `all` (which supervises its own points).
fn run_command(cmd: &str, rest: &[String]) -> Result<(), String> {
    match cmd {
        "check" => {
            let checks = validation::run();
            println!("{}", validation::render(&checks));
            let failed = checks.iter().filter(|c| !c.passed).count();
            if failed == 0 {
                println!("all {} claims reproduced", checks.len());
                Ok(())
            } else {
                Err(format!("{failed} claim(s) failed"))
            }
        }
        "csv" => rest
            .first()
            .ok_or_else(|| "csv needs an experiment name".to_owned())
            .and_then(|name| {
                let tables =
                    experiment_tables(name).ok_or_else(|| format!("no CSV export for `{name}`"))?;
                for t in tables {
                    print!("{}", t.to_csv());
                }
                Ok(())
            }),
        "tier1" => rest
            .split_first()
            .ok_or_else(|| "tier1 needs a platform".to_owned())
            .and_then(|(name, flags)| {
                let p = platform(name)?;
                let opts = parse_opts(flags)?;
                let w = workload(&opts)?;
                match tier1::run(p.as_ref(), &w) {
                    Ok(r) => {
                        println!("{r:#?}");
                        Ok(())
                    }
                    Err(e) => Err(format!("{name} cannot run {w}: {e}")),
                }
            }),
        "faults" => run_faults(rest),
        "infer" => run_infer(rest),
        "summary" => parse_opts(rest).and_then(|opts| {
            let w = workload(&opts)?;
            println!("Workload: {w}\n");
            println!("{}", summary::render(&summary::run(&w)));
            Ok(())
        }),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => match render_experiment(other) {
            Some(text) => {
                print!("{text}");
                Ok(())
            }
            None => Err(format!("unknown command `{other}`\n{}", usage())),
        },
    }
}
