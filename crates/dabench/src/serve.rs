//! `dabench serve` — the experiment suite behind the benchmark daemon.
//!
//! The daemon engine lives in [`dabench_core::serve`] and is generic over
//! a [`JobExecutor`]; this module supplies the concrete executor (every
//! paper artifact the CLI can render, plus the ablation and sensitivity
//! suites) and the flag parsing that maps `dabench serve` options onto a
//! [`ServeConfig`]. See `docs/serve.md` for the wire protocol and
//! lifecycle.

use crate::suite::{render_experiment, EXPERIMENTS};
use dabench_core::serve::{JobExecutor, ServeConfig, Server, PROTOCOL};
use dabench_core::supervise::{parse_injections, Injection};
use dabench_core::PlatformError;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
use std::time::Duration;

/// Experiments cheap enough to keep admitting under pressure; everything
/// else (the multi-series sweeps) is *heavy* and shed first when the
/// queue passes its high watermark.
const LIGHT_JOBS: [&str; 6] = ["table1", "table3", "table4", "fig6", "fig10", "fig12"];

/// Every job name the daemon accepts: the paper suite plus the ablation
/// and sensitivity studies.
#[must_use]
pub fn job_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = EXPERIMENTS.to_vec();
    names.push("ablations");
    names.push("sensitivity");
    names.push("infer");
    names.push("gen");
    names
}

/// The suite-backed [`JobExecutor`]: validates job names against
/// [`job_names`], classifies the long sweeps as heavy, and renders each
/// job with [`render_experiment`] — deterministically, so cached and
/// journal-replayed responses are byte-identical to fresh executions.
///
/// Honors `DABENCH_INJECT` (see [`dabench_core::supervise::Injection`]):
/// an `err:KIND:N` clause for a job fails its first `N` executions with
/// the injected [`PlatformError`], counting attempts across retries, so
/// retry-to-success is testable over the wire.
pub struct SuiteExecutor {
    injections: BTreeMap<String, Injection>,
    attempts: Mutex<BTreeMap<String, u32>>,
}

impl SuiteExecutor {
    /// An executor firing the given injections (pass an empty map for
    /// production behavior).
    #[must_use]
    pub fn new(injections: BTreeMap<String, Injection>) -> Self {
        Self {
            injections,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }
}

impl JobExecutor for SuiteExecutor {
    fn validate(&self, job: &str) -> Result<(), String> {
        if job_names().contains(&job) {
            Ok(())
        } else {
            Err(format!(
                "unknown job `{job}` (expected one of: {})",
                job_names().join(", ")
            ))
        }
    }

    fn is_heavy(&self, job: &str) -> bool {
        !LIGHT_JOBS.contains(&job)
    }

    fn execute(&self, job: &str, _seed: u64) -> Result<String, PlatformError> {
        if let Some(injection) = self.injections.get(job) {
            let attempt = {
                let mut attempts = self.attempts.lock().expect("attempts lock");
                let n = attempts.entry(job.to_owned()).or_insert(0);
                let attempt = *n;
                *n += 1;
                attempt
            };
            injection.fire(attempt)?;
        }
        render_experiment(job)
            .ok_or_else(|| PlatformError::Unsupported(format!("no renderer for `{job}`")))
    }
}

fn parse_serve_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value()?,
            "--workers" => {
                cfg.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--queue" => {
                cfg.queue_capacity = value()?.parse().map_err(|e| format!("--queue: {e}"))?;
                if cfg.queue_capacity == 0 {
                    return Err("--queue must be at least 1".to_owned());
                }
            }
            "--cache" => {
                cfg.cache_capacity = value()?.parse().map_err(|e| format!("--cache: {e}"))?;
            }
            "--retry-after-ms" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--retry-after-ms: {e}"))?;
                cfg.retry_after = Duration::from_millis(ms);
            }
            "--deadline-s" => {
                let s: f64 = value()?.parse().map_err(|e| format!("--deadline-s: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("--deadline-s: {s} is not a positive number"));
                }
                cfg.deadline = Some(Duration::from_secs_f64(s));
            }
            "--max-retries" => {
                cfg.max_retries = value()?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--seed" => cfg.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--run-dir" => {
                cfg.run_dir = Some(value()?.into());
                cfg.resume = false;
            }
            "--resume" => {
                cfg.run_dir = Some(value()?.into());
                cfg.resume = true;
            }
            other => return Err(format!("unknown flag `{other}` for serve")),
        }
    }
    Ok(cfg)
}

/// Run the daemon until `shutdown` is set (SIGTERM/SIGINT, wired by the
/// binary) or a client sends the `drain` op.
///
/// Prints one `listening on <addr>` line to stdout (and flushes it, so
/// callers scripting the daemon can read the resolved port), the resume
/// summary (under `--resume`) and the final tallies to stderr.
///
/// # Errors
///
/// Flag-parsing errors, bind/journal failures, and journal persistence
/// failures mid-run (the daemon drains before reporting those).
pub fn run_serve(rest: &[String], shutdown: &AtomicBool) -> Result<(), String> {
    let cfg = parse_serve_config(rest)?;
    let injections = parse_injections()?;
    let server =
        Server::bind(cfg, Box::new(SuiteExecutor::new(injections))).map_err(|e| format!("{e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!("dabench serve listening on {addr} (protocol {PROTOCOL})");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    if let Some(line) = server.resume_summary() {
        eprintln!("{line}");
    }
    let summary = server.run(shutdown).map_err(|e| format!("{e}"))?;
    Server::publish_store_obs(&summary);
    eprintln!("{}", summary.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_job_validates_and_renders() {
        let exec = SuiteExecutor::new(BTreeMap::new());
        for job in job_names() {
            exec.validate(job).expect("known job");
            let out = exec.execute(job, 0).expect("renders");
            assert!(!out.is_empty(), "{job} rendered empty");
        }
        assert!(exec.validate("nope").is_err());
    }

    #[test]
    fn heavy_classification_covers_the_sweeps() {
        let exec = SuiteExecutor::new(BTreeMap::new());
        assert!(!exec.is_heavy("table1"));
        assert!(exec.is_heavy("table2"), "table2 is a multi-platform sweep");
        assert!(exec.is_heavy("ablations"));
        assert!(exec.is_heavy("sensitivity"));
        assert!(
            exec.is_heavy("infer"),
            "the serving sweep crosses 4 platforms x 12 workloads"
        );
        assert!(
            exec.is_heavy("gen"),
            "the generated population evaluates, ranks and invariant-checks"
        );
    }

    #[test]
    fn executor_is_deterministic_per_job() {
        let exec = SuiteExecutor::new(BTreeMap::new());
        let a = exec.execute("table1", 0).unwrap();
        let b = exec.execute("table1", 7).unwrap();
        assert_eq!(a, b, "seed must not perturb rendered output");
    }

    #[test]
    fn err_injection_counts_attempts_across_executions() {
        use dabench_core::supervise::parse_injection_clauses;
        let inj = parse_injection_clauses("table1=err:device_fault:2").unwrap();
        let exec = SuiteExecutor::new(inj);
        assert!(exec.execute("table1", 0).is_err(), "first attempt fails");
        assert!(exec.execute("table1", 0).is_err(), "second attempt fails");
        assert!(exec.execute("table1", 0).is_ok(), "third attempt clears");
        assert!(exec.execute("fig6", 0).is_ok(), "other jobs untouched");
    }

    #[test]
    fn serve_flags_map_onto_the_config() {
        let args: Vec<String> = [
            "--addr",
            "127.0.0.1:7777",
            "--workers",
            "3",
            "--queue",
            "5",
            "--cache",
            "9",
            "--retry-after-ms",
            "123",
            "--deadline-s",
            "1.5",
            "--max-retries",
            "2",
            "--seed",
            "7",
            "--resume",
            "/tmp/x",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let cfg = parse_serve_config(&args).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7777");
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_capacity, 5);
        assert_eq!(cfg.cache_capacity, 9);
        assert_eq!(cfg.retry_after, Duration::from_millis(123));
        assert_eq!(cfg.deadline, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(cfg.max_retries, 2);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.resume);
        assert_eq!(cfg.run_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));

        assert!(parse_serve_config(&["--workers".to_owned(), "0".to_owned()]).is_err());
        assert!(parse_serve_config(&["--bogus".to_owned()]).is_err());
    }
}
