//! The experiment suite as a library: every paper artifact the CLI can
//! render, addressable by name.
//!
//! This used to live in the `dabench` binary; it moved here so the
//! macro-benchmark harness ([`crate::bench_suite`]) and the criterion
//! targets in `crates/bench` can time the *exact* renderings the CLI
//! prints, instead of maintaining parallel workload definitions.

use crate::core::par_map;
use crate::experiments::{
    ablations, fig10, fig11, fig12, fig6, fig7, fig8, fig9, gen, infer, sensitivity, table1,
    table2, table3, table4,
};
use crate::render::Table;

/// All table/figure command names, in paper order.
pub const EXPERIMENTS: [&str; 11] = [
    "table1", "table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12",
];

/// Global point index of a supervised label: paper artifacts use their
/// [`EXPERIMENTS`] position, generated scenarios their population index.
/// Retry seeds and observability point paths key on this, so a shard
/// worker must resolve the same index a single-process run would.
#[must_use]
pub fn point_index(label: &str) -> Option<usize> {
    if let Some((_, _, index)) = dabench_core::gen::parse_label(label) {
        return usize::try_from(index).ok();
    }
    EXPERIMENTS.iter().position(|e| *e == label)
}

/// The tables behind one paper artifact; `None` when the name is unknown.
#[must_use]
pub fn experiment_tables(name: &str) -> Option<Vec<Table>> {
    Some(match name {
        "table1" => vec![table1::render(&table1::run())],
        "table2" => {
            let (a, b) = table2::render(&table2::run_o3(), &table2::run_shards());
            vec![a, b]
        }
        "table3" => vec![table3::render(&table3::run())],
        "table4" => vec![table4::render(&table4::run())],
        "fig6" => vec![fig6::render(&fig6::run())],
        "fig7" => vec![
            fig7::render(&fig7::run_layers(), "a"),
            fig7::render(&fig7::run_hidden_sizes(), "b"),
        ],
        "fig8" => vec![
            fig8::render(&fig8::run_layers(), "a"),
            fig8::render(&fig8::run_hidden_sizes(), "b"),
        ],
        "fig9" => fig9::render(
            &fig9::run_wse(),
            &fig9::run_rdu_layers(),
            &fig9::run_rdu_hidden(),
            &fig9::run_ipu(),
        ),
        "fig10" => vec![fig10::render(&fig10::run())],
        "fig11" => fig11::render(&fig11::run_wse(), &fig11::run_rdu(), &fig11::run_ipu()),
        "fig12" => vec![fig12::render(&fig12::run())],
        "infer" => vec![
            infer::render(&infer::run()),
            infer::render_batching(&infer::run_batching()),
        ],
        "ablations" => ablation_tables(),
        "sensitivity" => vec![sensitivity::render(&sensitivity::run())],
        "gen" => gen::default_tables(),
        _ => return None,
    })
}

/// Render one paper artifact to the exact text `dabench <name>` prints
/// (each table followed by a newline, table2's pair joined specially).
#[must_use]
pub fn render_experiment(name: &str) -> Option<String> {
    // `gen:<tier>:s<seed>:i<index>` labels address one generated scenario:
    // the supervised runner and shard workers resolve every point through
    // this function, so generated populations ride the same journal,
    // resume and sharding machinery as the paper artifacts.
    if let Some((tier, seed, index)) = dabench_core::gen::parse_label(name) {
        return Some(gen::render_scenario(tier, seed, index));
    }
    let tables = experiment_tables(name)?;
    let mut out = String::new();
    if name == "table2" {
        // table2 historically prints its two tables as one block.
        out.push_str(&format!("{}\n{}\n", tables[0], tables[1]));
    } else {
        for t in tables {
            out.push_str(&format!("{t}\n"));
        }
    }
    Some(out)
}

/// The five design-choice ablation tables, built in parallel.
#[must_use]
pub fn ablation_tables() -> Vec<Table> {
    let builders: [fn() -> Table; 5] = [
        || {
            ablations::render(
                "Ablation: WSE transmission-PE overhead (24 layers)",
                "ratio",
                &ablations::wse_transmission_ratio(),
            )
        },
        || {
            ablations::render(
                "Ablation: WSE config-memory growth vs max depth",
                "coef",
                &ablations::wse_config_growth(),
            )
        },
        || {
            ablations::render(
                "Ablation: RDU operator fusion",
                "fused",
                &ablations::rdu_fusion(),
            )
        },
        || {
            ablations::render(
                "Ablation: RDU per-section PCU ceiling (HS 1600)",
                "ceiling",
                &ablations::rdu_section_ceiling(),
            )
        },
        || {
            ablations::render(
                "Ablation: IPU activation residency vs capacity",
                "residency",
                &ablations::ipu_activation_residency(),
            )
        },
    ];
    par_map(&builders, |build| build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_renders() {
        for name in EXPERIMENTS {
            assert!(render_experiment(name).is_some(), "{name}");
        }
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(experiment_tables("table9").is_none());
        assert!(render_experiment("").is_none());
        assert!(render_experiment("gen:nope:s1:i0").is_none());
    }

    #[test]
    fn gen_suite_and_scenario_labels_render() {
        let tables = experiment_tables("gen").expect("gen suite");
        assert_eq!(tables.len(), 4, "population, results, ranking, invariants");
        let record = render_experiment("gen:baby:s42:i0").expect("scenario label");
        assert!(
            record.starts_with("gen-v1 label=gen:baby:s42:i0 "),
            "{record}"
        );
        // The scenario renderer must agree with a direct driver call —
        // shard workers rely on this equality for journal byte-identity.
        use crate::experiments::gen as g;
        use dabench_core::gen::Tier;
        assert_eq!(record, g::render_scenario(Tier::Baby, 42, 0));
    }

    #[test]
    fn point_index_covers_both_label_families() {
        assert_eq!(point_index("table1"), Some(0));
        assert_eq!(point_index("fig12"), Some(10));
        assert_eq!(point_index("gen:hard:s7:i5"), Some(5));
        assert_eq!(point_index("nope"), None);
    }
}
