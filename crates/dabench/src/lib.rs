//! # dabench
//!
//! The DABench-LLM reproduction, in one crate: re-exports of the framework
//! ([`core`]), the workload model ([`model`], [`graph`]) and the four
//! platform models ([`wse`], [`rdu`], [`ipu`], [`gpu`]), plus
//! [`experiments`] — drivers that regenerate **every table and figure** of
//! the paper's evaluation, and [`render`] for printing them in the paper's
//! row/series layout.
//!
//! # Quickstart
//!
//! ```
//! use dabench::experiments::table1;
//!
//! // Reproduce Table I (WSE-2 PE allocation vs. decoder layers).
//! let rows = table1::run();
//! println!("{}", table1::render(&rows));
//! assert!(rows.iter().any(|r| r.allocation_pct.is_none())); // the 78-layer Fail
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_suite;
pub mod experiments;
pub mod render;
pub mod runner;
pub mod serve;
pub mod suite;

/// Re-export of the framework core (`dabench-core`).
pub mod core {
    pub use dabench_core::*;
}

/// Re-export of the workload model (`dabench-model`).
pub mod model {
    pub use dabench_model::*;
}

/// Re-export of the dataflow graph IR (`dabench-graph`).
pub mod graph {
    pub use dabench_graph::*;
}

/// Re-export of the discrete-event engine (`dabench-sim`).
pub mod sim {
    pub use dabench_sim::*;
}

/// Re-export of the Cerebras WSE-2 model (`dabench-wse`).
pub mod wse {
    pub use dabench_wse::*;
}

/// Re-export of the SambaNova RDU model (`dabench-rdu`).
pub mod rdu {
    pub use dabench_rdu::*;
}

/// Re-export of the Graphcore IPU model (`dabench-ipu`).
pub mod ipu {
    pub use dabench_ipu::*;
}

/// Re-export of the GPU reference baseline (`dabench-gpu`).
pub mod gpu {
    pub use dabench_gpu::*;
}

/// Re-export of fault-injection planning and resilience sweeps
/// (`dabench-faults`).
pub mod faults {
    pub use dabench_faults::*;
}
