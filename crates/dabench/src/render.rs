//! Plain-text table rendering in the paper's row/series layout.

use std::fmt;

/// A simple aligned ASCII table.
///
/// # Example
///
/// ```
/// use dabench::render::Table;
///
/// let mut t = Table::new("Demo");
/// t.set_headers(["x", "y"]);
/// t.add_row(["1", "2.5"]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("2.5"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table with a title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn set_headers<I, S>(&mut self, headers: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
    }

    /// Append a row (short rows are padded with empty cells).
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut [usize], cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        writeln!(f, "== {} ==", self.title)?;
        let write_cells = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                write!(f, "| {cell:>w$} ", w = w)?;
            }
            writeln!(f, "|")
        };
        if !self.headers.is_empty() {
            write_cells(f, &self.headers)?;
            let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for r in &self.rows {
            write_cells(f, r)?;
        }
        Ok(())
    }
}

impl Table {
    /// Render the table as CSV (headers first), for plotting the figures
    /// with external tools.
    ///
    /// # Example
    ///
    /// ```
    /// use dabench::render::Table;
    /// let mut t = Table::new("demo");
    /// t.set_headers(["x", "y"]);
    /// t.add_row(["1", "2"]);
    /// assert_eq!(t.to_csv(), "x,y\n1,2\n");
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        if !self.headers.is_empty() {
            out.push_str(
                &self
                    .headers
                    .iter()
                    .map(|h| escape(h))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format an optional percentage; `None` renders as the paper's "Fail".
#[must_use]
pub fn pct_or_fail(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:.0}", 100.0 * x),
        None => "Fail".to_owned(),
    }
}

/// Format a float with `digits` decimals; `None` renders as "Fail".
#[must_use]
pub fn num_or_fail(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "Fail".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T");
        t.set_headers(["a", "bbbb"]);
        t.add_row(["1", "2"]);
        t.add_row(["333", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== T ==");
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("T");
        t.set_headers(["a", "b", "c"]);
        t.add_row(["1"]);
        let s = t.to_string();
        assert_eq!(s.lines().last().unwrap().matches('|').count(), 4);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("t");
        t.set_headers(["a", "b"]);
        t.add_row(["1,5", "quote\"y"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"quote\"\"y\""));
    }

    #[test]
    fn fail_formatting() {
        assert_eq!(pct_or_fail(Some(0.926)), "93");
        assert_eq!(pct_or_fail(None), "Fail");
        assert_eq!(num_or_fail(Some(1.5), 2), "1.50");
        assert_eq!(num_or_fail(None, 1), "Fail");
    }
}
