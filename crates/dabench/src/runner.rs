//! The supervised sweep loop shared by single-process `dabench all` and
//! the hidden `dabench shard-worker` mode.
//!
//! Both callers run the same code over `(global index, label)` points:
//! journaled-replay short-circuit, failure injection, panic/deadline/retry
//! supervision, durable journaling of every outcome, and metrics-digest
//! journaling so `--resume` (and the shard merge) replay byte-identical
//! traces. The only behavioral switch is [`RunnerConfig::journal_started`]:
//! shard workers durably journal a `started` record before running each
//! point — the marker that lets a respawned worker count prior process
//! lives (and lets counted `abort:N` / `exit:CODE:N` injections clear) —
//! while the single-process path writes exactly the records it always
//! has, keeping its journal bytes unchanged.

use crate::core::obs;
use crate::core::supervise::{Injection, SupervisePolicy, STATUS_STARTED};
use crate::core::{
    par_map, supervise_point, PlatformError, PointOutcome, PointTrace, Replay, RunJournal,
};
use crate::suite::render_experiment;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU32;
use std::sync::Mutex;

/// Policy and hooks for one supervised sweep.
pub struct RunnerConfig {
    /// Deadline / retry policy applied to every point.
    pub policy: SupervisePolicy,
    /// Failure injections by point label (`DABENCH_INJECT`).
    pub injections: BTreeMap<String, Injection>,
    /// Shard-worker mode: journal a durable [`STATUS_STARTED`] record
    /// before each point and honor process-level injections against the
    /// replayed start count.
    pub journal_started: bool,
}

/// Run `points` (global experiment index, label) under supervision,
/// journaling every outcome. Returns outcomes in input order —
/// byte-identical downstream output at any `--jobs`.
///
/// # Errors
///
/// The first journal append failure: a journal that cannot persist must
/// stop the run, or `--resume` would silently re-execute points it
/// believes are unrecorded.
pub fn run_supervised_points(
    points: &[(usize, String)],
    cfg: &RunnerConfig,
    journal: Option<&Mutex<RunJournal>>,
    replay: &Replay,
) -> Result<Vec<PointOutcome<String>>, String> {
    let journal_error: Mutex<Option<String>> = Mutex::new(None);
    let note_journal_error = |name: &str, e: &std::io::Error| {
        journal_error
            .lock()
            .expect("journal error lock")
            .get_or_insert_with(|| format!("journal append for `{name}`: {e}"));
    };
    let outcomes = par_map(points, |(index, name)| {
        let i = *index as u64;
        if let Some(value) = replay.completed.get(name) {
            return PointOutcome::Journaled {
                value: value.clone(),
            };
        }
        if cfg.journal_started {
            // Durable "about to start" marker *before* any injected
            // process death, so the count of lives spent on this point
            // survives the crash it is about to cause.
            let prior = replay.started.get(name).copied().unwrap_or(0);
            if let Some(journal) = journal {
                let appended = journal.lock().expect("journal lock").append(
                    name,
                    STATUS_STARTED,
                    &format!("life={prior}"),
                );
                if let Err(e) = appended {
                    note_journal_error(name, &e);
                }
            }
            if let Some(injection) = cfg.injections.get(name) {
                injection.fire_process(prior);
            }
        }
        let injection = cfg.injections.get(name).copied();
        let attempts = AtomicU32::new(0);
        let point = name.clone();
        let outcome = supervise_point(name, i, &cfg.policy, move |_seed| {
            // Retry hygiene: a previous failed attempt of this point may
            // have flushed partial traces; they must not leak into the
            // output of the attempt that eventually succeeds.
            let _ = obs::drain_prefix(&[i]);
            if let Some(injection) = injection {
                injection.fire_counted(&attempts)?;
            }
            obs::with_point(i, &point, || render_experiment(&point))
                .ok_or_else(|| PlatformError::Unsupported(format!("no renderer for `{point}`")))
        });
        if let Some(journal) = journal {
            let data = match &outcome {
                PointOutcome::Completed { value, .. } => Some(value.clone()),
                PointOutcome::Failed { error, .. } => Some(error.to_string()),
                PointOutcome::Panicked { message } => Some(message.clone()),
                PointOutcome::TimedOut { deadline } => {
                    Some(format!("exceeded {:.1} s deadline", deadline.as_secs_f64()))
                }
                PointOutcome::Journaled { .. } => None,
            };
            if let Some(data) = data {
                let appended =
                    journal
                        .lock()
                        .expect("journal lock")
                        .append(name, outcome.status(), &data);
                if let Err(e) = appended {
                    note_journal_error(name, &e);
                }
            }
        }
        // Harvest this point's traces. Completed points journal their
        // digest (so `--resume` replays the same metrics) and go back into
        // the sink; failed points are dropped so the trace only ever
        // reflects what printed. Journaled points keep their replayed
        // traces untouched.
        if obs::is_enabled() && !matches!(outcome, PointOutcome::Journaled { .. }) {
            let traces = obs::drain_prefix(&[i]);
            if matches!(outcome, PointOutcome::Completed { .. }) && !traces.is_empty() {
                if let Some(journal) = journal {
                    let digest = traces
                        .iter()
                        .map(PointTrace::digest)
                        .collect::<Vec<_>>()
                        .join("\n");
                    let appended = journal
                        .lock()
                        .expect("journal lock")
                        .append(name, "metrics", &digest);
                    if let Err(e) = appended {
                        note_journal_error(name, &e);
                    }
                }
                obs::inject(traces);
            }
        }
        outcome
    });
    if let Some(e) = journal_error.into_inner().expect("journal error lock") {
        return Err(e);
    }
    Ok(outcomes)
}
