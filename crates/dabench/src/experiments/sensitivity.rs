//! Hardware-sensitivity analysis: which spec improvement buys each
//! platform the most throughput.
//!
//! The paper's Discussion sections recommend directions per vendor
//! ("expand external bandwidth" for the RDU, "improve bandwidth and memory
//! management" for the IPU, "kernel-level optimization" for the WSE); this
//! module quantifies those recommendations by finite-differencing the
//! simulators' hardware parameters.

use super::workloads::{ipu_probe, rdu_probe, wse_probe};
use crate::render::Table;
use dabench_core::{par_map, with_point_label, Platform};
use dabench_ipu::{Ipu, IpuCompilerParams, IpuSpec};
use dabench_rdu::{CompilationMode, Rdu, RduCompilerParams, RduSpec};
use dabench_wse::{Wse, WseCompilerParams, WseSpec};
use serde::{Deserialize, Serialize};

/// Elasticity of throughput with respect to one hardware parameter:
/// relative throughput gain per relative parameter improvement
/// (1.0 = perfectly proportional, 0.0 = insensitive).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Platform name.
    pub platform: String,
    /// Parameter name.
    pub parameter: String,
    /// Elasticity estimate.
    pub elasticity: f64,
}

const BUMP: f64 = 1.25;

fn elasticity(base: f64, bumped: f64) -> f64 {
    (bumped / base - 1.0) / (BUMP - 1.0)
}

fn wse_rows() -> Vec<SensitivityRow> {
    let w = wse_probe(24);
    let throughput = |spec: WseSpec, params: WseCompilerParams| {
        Wse::new(spec, params)
            .profile(&w)
            .expect("probe maps")
            .throughput_tokens_per_s
    };
    let base = throughput(WseSpec::cs2(), WseCompilerParams::default());

    let mut rows = Vec::new();
    let mut spec = WseSpec::cs2();
    spec.peak_flops_per_pe *= BUMP;
    rows.push(SensitivityRow {
        platform: "wse".into(),
        parameter: "per-PE compute rate".into(),
        elasticity: elasticity(base, throughput(spec, WseCompilerParams::default())),
    });

    let mut spec = WseSpec::cs2();
    spec.sram_per_pe_bytes = (spec.sram_per_pe_bytes as f64 * BUMP) as u64;
    rows.push(SensitivityRow {
        platform: "wse".into(),
        parameter: "per-PE SRAM".into(),
        elasticity: elasticity(base, throughput(spec, WseCompilerParams::default())),
    });

    let mut params = WseCompilerParams::default();
    params.sustained_gemm_efficiency = (params.sustained_gemm_efficiency * BUMP).min(1.0);
    rows.push(SensitivityRow {
        platform: "wse".into(),
        parameter: "kernel efficiency".into(),
        elasticity: elasticity(base, throughput(WseSpec::cs2(), params)),
    });
    rows
}

fn rdu_rows() -> Vec<SensitivityRow> {
    let w = rdu_probe(768, 12);
    let throughput = |spec: RduSpec, params: RduCompilerParams, mode: CompilationMode| {
        Rdu::new(spec, params, mode)
            .profile(&w)
            .expect("probe maps")
            .throughput_tokens_per_s
    };
    let base = throughput(
        RduSpec::sn30(),
        RduCompilerParams::default(),
        CompilationMode::O3,
    );

    let mut rows = Vec::new();
    // DDR sensitivity is probed in O0, the traffic-dominated mode (O3's
    // fused schedule hides most of the bandwidth behind compute).
    let base_o0 = throughput(
        RduSpec::sn30(),
        RduCompilerParams::default(),
        CompilationMode::O0,
    );
    let mut spec = RduSpec::sn30();
    spec.ddr_bw_bytes_per_s *= BUMP;
    rows.push(SensitivityRow {
        platform: "rdu".into(),
        parameter: "DDR bandwidth (O0 schedule)".into(),
        elasticity: elasticity(
            base_o0,
            throughput(spec, RduCompilerParams::default(), CompilationMode::O0),
        ),
    });

    let mut spec = RduSpec::sn30();
    spec.peak_flops_per_pcu *= BUMP;
    rows.push(SensitivityRow {
        platform: "rdu".into(),
        parameter: "per-PCU compute rate".into(),
        elasticity: elasticity(
            base,
            throughput(spec, RduCompilerParams::default(), CompilationMode::O3),
        ),
    });

    // The section ceiling only binds for wide decoders; probe it at
    // HS 1600 where O3 sections press against it.
    let wide = rdu_probe(1600, 12);
    let wide_tput = |params: RduCompilerParams| {
        Rdu::new(RduSpec::sn30(), params, CompilationMode::O3)
            .profile(&wide)
            .expect("wide probe maps")
            .throughput_tokens_per_s
    };
    let mut params = RduCompilerParams::default();
    params.max_pcus_per_section = (params.max_pcus_per_section as f64 * BUMP) as u64;
    rows.push(SensitivityRow {
        platform: "rdu".into(),
        parameter: "section PCU ceiling (HS 1600)".into(),
        elasticity: elasticity(wide_tput(RduCompilerParams::default()), wide_tput(params)),
    });
    rows
}

fn ipu_rows() -> Vec<SensitivityRow> {
    let w = ipu_probe(6);
    let throughput = |spec: IpuSpec, params: IpuCompilerParams| {
        Ipu::new(spec, params)
            .profile(&w)
            .expect("probe maps")
            .throughput_tokens_per_s
    };
    let base = throughput(IpuSpec::bow2000(), IpuCompilerParams::default());

    let mut rows = Vec::new();
    let mut spec = IpuSpec::bow2000();
    spec.peak_flops_per_tile *= BUMP;
    rows.push(SensitivityRow {
        platform: "ipu".into(),
        parameter: "per-tile compute rate".into(),
        elasticity: elasticity(base, throughput(spec, IpuCompilerParams::default())),
    });

    let mut spec = IpuSpec::bow2000();
    spec.sram_per_tile_bytes = (spec.sram_per_tile_bytes as f64 * BUMP) as u64;
    rows.push(SensitivityRow {
        platform: "ipu".into(),
        parameter: "per-tile SRAM".into(),
        elasticity: elasticity(base, throughput(spec, IpuCompilerParams::default())),
    });
    rows
}

/// Run the sensitivity analysis on all three platforms (one worker per
/// platform group; rows stay in wse/rdu/ipu order).
#[must_use]
pub fn run() -> Vec<SensitivityRow> {
    type Group = fn() -> Vec<SensitivityRow>;
    let groups: [(&str, Group); 3] = [
        ("sensitivity wse", wse_rows),
        ("sensitivity rdu", rdu_rows),
        ("sensitivity ipu", ipu_rows),
    ];
    par_map(&groups, |(label, group)| with_point_label(label, group)).concat()
}

/// Render the elasticity table.
#[must_use]
pub fn render(rows: &[SensitivityRow]) -> Table {
    let mut t =
        Table::new("Hardware sensitivity: throughput elasticity per +25% parameter improvement");
    t.set_headers(["Platform", "Parameter", "Elasticity"]);
    for r in rows {
        t.add_row([
            r.platform.clone(),
            r.parameter.clone(),
            format!("{:.2}", r.elasticity),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(rows: &[SensitivityRow], platform: &str, param: &str) -> f64 {
        rows.iter()
            .find(|r| r.platform == platform && r.parameter.contains(param))
            .unwrap_or_else(|| panic!("{platform}/{param}"))
            .elasticity
    }

    #[test]
    fn wse_wants_kernels_not_sram() {
        // The paper's WSE discussion: room is at the kernel level, not
        // capacity (for models that already fit).
        let rows = run();
        assert!(get(&rows, "wse", "kernel efficiency") > 0.5);
        assert!(get(&rows, "wse", "per-PE SRAM") < 0.2);
    }

    #[test]
    fn rdu_compute_and_scheduling_dominate() {
        // At probe scale the RDU schedule is mostly compute/ceiling-bound;
        // bandwidth still contributes (memory-bound sections exist).
        let rows = run();
        let ddr = get(&rows, "rdu", "DDR bandwidth");
        // O0's per-operator spill schedule responds to bandwidth.
        let ceiling = get(&rows, "rdu", "ceiling");
        let rate = get(&rows, "rdu", "per-PCU");
        assert!(ddr > 0.02, "{ddr}");
        assert!(ceiling > 0.1, "{ceiling}");
        assert!(rate > 0.2, "{rate}");
    }

    #[test]
    fn ipu_compute_rate_matters_sram_defers() {
        let rows = run();
        assert!(get(&rows, "ipu", "per-tile compute") > 0.4);
        // SRAM buys capacity (depth), not throughput, below the OOM point.
        assert!(get(&rows, "ipu", "per-tile SRAM") < 0.1);
    }

    #[test]
    fn elasticities_are_sane() {
        for r in run() {
            assert!(
                (-0.2..=1.4).contains(&r.elasticity),
                "{}: {}",
                r.parameter,
                r.elasticity
            );
        }
    }

    #[test]
    fn render_covers_platforms() {
        let s = render(&run()).to_string();
        assert!(s.contains("wse") && s.contains("rdu") && s.contains("ipu"));
    }
}
