//! Table I: WSE-2 PE allocation ratio across layer configurations.

use super::workloads::{wse_probe, WSE_LAYER_SWEEP};
use crate::render::{pct_or_fail, Table};
use dabench_core::par_map;
use dabench_wse::{compile, Wse};
use serde::{Deserialize, Serialize};

/// One cell of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Decoder layer count.
    pub layers: u64,
    /// PE allocation ratio, `None` on compile failure (the paper's "Fail").
    pub allocation_pct: Option<f64>,
}

/// Reproduce Table I: compile the HS-768 decoder stack at every layer
/// count of the paper's sweep and report the PE allocation ratio.
#[must_use]
pub fn run() -> Vec<Table1Row> {
    let wse = Wse::default();
    par_map(&WSE_LAYER_SWEEP, |&layers| {
        let allocation = compile(
            wse.wse_spec(),
            wse.compiler_params(),
            &wse_probe(layers),
            None,
        )
        .ok()
        .map(|c| c.allocation_ratio());
        Table1Row {
            layers,
            allocation_pct: allocation,
        }
    })
}

/// Render the rows in the paper's layout (layers across, Pe% below).
#[must_use]
pub fn render(rows: &[Table1Row]) -> Table {
    let mut t = Table::new("Table I: PE allocation ratio across layer configurations (WSE-2)");
    t.set_headers(
        std::iter::once("Layer".to_owned()).chain(rows.iter().map(|r| r.layers.to_string())),
    );
    t.add_row(
        std::iter::once("Pe(%)".to_owned())
            .chain(rows.iter().map(|r| pct_or_fail(r.allocation_pct))),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = run();
        assert_eq!(rows.len(), 14);
        // Rising edge.
        let pct = |i: usize| rows[i].allocation_pct.unwrap();
        assert!(pct(0) < pct(1) && pct(1) < pct(2));
        // Paper bands: 33% at 1 layer, ~60% at 6, plateau 92-93% (±).
        assert!((0.25..0.42).contains(&pct(0)), "{}", pct(0));
        assert!((0.50..0.70).contains(&pct(1)), "{}", pct(1));
        for row in &rows[5..13] {
            let v = row.allocation_pct.unwrap();
            assert!((0.85..0.95).contains(&v), "L={}: {v}", row.layers);
        }
        // 78 layers fails.
        assert!(rows.last().unwrap().allocation_pct.is_none());
    }

    #[test]
    fn render_contains_fail_cell() {
        let s = render(&run()).to_string();
        assert!(s.contains("Fail"));
        assert!(s.contains("78"));
    }
}
