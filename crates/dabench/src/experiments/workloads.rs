//! Canonical workload configurations shared by the experiment drivers
//! (Sec. IV-D "Methodology and Setup" of the paper).

use dabench_model::{ModelConfig, Precision, TrainingWorkload};

/// WSE intra-chip probe: GPT-2 decoder block at hidden size 768, batch
/// past the Fig. 12 saturation knee.
#[must_use]
pub fn wse_probe(layers: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, layers),
        256,
        1024,
        Precision::Fp16,
    )
}

/// RDU O0/O3 probe: GPT-2 decoder block at the given hidden size.
#[must_use]
pub fn rdu_probe(hidden: u64, layers: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(hidden, layers),
        8,
        1024,
        Precision::Fp16,
    )
}

/// RDU O1 probe: LLaMA-2 decoder block at the given hidden size (the O1
/// experiments use the LLaMA-2 block, Sec. IV-D).
#[must_use]
pub fn rdu_o1_probe(hidden: u64, layers: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::llama2_probe(hidden, layers),
        4,
        2048,
        Precision::Bf16,
    )
}

/// IPU probe: GPT-2 decoder block at hidden size 768.
#[must_use]
pub fn ipu_probe(layers: u64) -> TrainingWorkload {
    TrainingWorkload::new(
        ModelConfig::gpt2_probe(768, layers),
        64,
        1024,
        Precision::Fp16,
    )
}

/// LLaMA-2 7B training workload for the RDU scalability rows.
#[must_use]
pub fn llama7b() -> TrainingWorkload {
    TrainingWorkload::new(ModelConfig::llama2_7b(), 8, 4096, Precision::Bf16)
}

/// GPT-2 XL workload for the GPU reference rows.
#[must_use]
pub fn gpt2_xl(batch: u64) -> TrainingWorkload {
    TrainingWorkload::new(ModelConfig::gpt2_xl(), batch, 1024, Precision::Fp16)
}

/// The Table I / Fig. 6 layer sweep.
pub const WSE_LAYER_SWEEP: [u64; 14] = [1, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72, 78];

/// The Table II(a) / Fig. 7(b) hidden-size sweep for O0/O3.
pub const RDU_HS_SWEEP: [u64; 5] = [480, 768, 1024, 1280, 1600];

/// The Table II(b) / Fig. 7(b) hidden-size sweep for O1.
pub const RDU_O1_HS_SWEEP: [u64; 5] = [3072, 4096, 5120, 6686, 8192];

/// The Fig. 7(a) / Fig. 8(a) layer sweep for the RDU.
pub const RDU_LAYER_SWEEP: [u64; 5] = [6, 12, 24, 36, 48];

/// The Fig. 9(d) IPU layer sweep (10 fails).
pub const IPU_LAYER_SWEEP: [u64; 7] = [1, 2, 4, 6, 8, 9, 10];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_match_paper_setup() {
        assert_eq!(wse_probe(12).model().hidden_size, 768);
        assert_eq!(rdu_o1_probe(4096, 4).model().vocab_size, 32_000);
        assert_eq!(ipu_probe(4).batch_size(), 64);
        assert!(llama7b().model().parameter_count() > 6_000_000_000);
    }

    #[test]
    fn sweeps_cover_paper_ranges() {
        assert_eq!(WSE_LAYER_SWEEP.first(), Some(&1));
        assert_eq!(WSE_LAYER_SWEEP.last(), Some(&78));
        assert_eq!(RDU_O1_HS_SWEEP.last(), Some(&8192));
        assert!(IPU_LAYER_SWEEP.contains(&10));
    }
}
