//! Experiment drivers: one module per table and figure of the paper's
//! evaluation (Secs. V and VI).
//!
//! Every module exposes `run()` returning typed rows and `render()`
//! producing the paper-shaped text table; the Criterion benches in
//! `dabench-bench` wrap exactly these entry points. See DESIGN.md for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured numbers.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gen;
pub mod infer;
pub mod sensitivity;
pub mod summary;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod validation;
pub mod workloads;
