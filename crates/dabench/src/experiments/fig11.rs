//! Fig. 11: scalability details — WSE replicas, RDU TP utilization, IPU
//! layer allocations.

use super::workloads::llama7b;
use crate::render::Table;
use dabench_core::{par_map, with_point_label};
use dabench_ipu::{pipeline_with_allocation, Ipu};
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_rdu::{tensor_parallel, CompilationMode, Rdu};
use dabench_wse::{data_parallel, Wse};
use serde::{Deserialize, Serialize};

/// One point of Fig. 11(a): WSE throughput vs replica count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WseReplicaRow {
    /// Replica count.
    pub replicas: u32,
    /// Aggregate computation throughput (before communication), tokens/s.
    pub computation: f64,
    /// Net throughput (after gradient allreduce), tokens/s.
    pub net: f64,
    /// Communication fraction of the step.
    pub comm_fraction: f64,
}

/// One point of Fig. 11(b): RDU per-chip utilization vs TP degree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RduTpRow {
    /// TP degree.
    pub degree: u32,
    /// Runtime-weighted PCU allocation per chip.
    pub pcu: f64,
    /// Runtime-weighted PMU allocation per chip.
    pub pmu: f64,
    /// Whether machines boundaries are crossed.
    pub cross_machine: bool,
}

/// One point of Fig. 11(c): IPU throughput vs layer allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpuAllocationRow {
    /// Layers per decoder IPU.
    pub allocation: Vec<u64>,
    /// Maximum layers on any IPU.
    pub max_layers: u64,
    /// Throughput, tokens/s.
    pub throughput: f64,
}

/// Fig. 11(a): GPT-2 mini replicas on the WSE.
#[must_use]
pub fn run_wse() -> Vec<WseReplicaRow> {
    let wse = Wse::default();
    let mini = TrainingWorkload::new(ModelConfig::gpt2_mini(), 256, 1024, Precision::Fp16);
    par_map(&[1u32, 2, 4, 8], |&replicas| {
        with_point_label(&format!("fig11 wse replicas={replicas}"), || {
            let plan = data_parallel(wse.wse_spec(), wse.compiler_params(), &mini, replicas)
                .expect("mini replicates");
            WseReplicaRow {
                replicas,
                computation: plan.computation_tokens_per_s,
                net: plan.net_tokens_per_s,
                comm_fraction: plan.communication_fraction,
            }
        })
    })
}

/// Fig. 11(b): LLaMA-2 7B tensor parallelism on the RDU.
#[must_use]
pub fn run_rdu() -> Vec<RduTpRow> {
    let rdu = Rdu::with_mode(CompilationMode::O1);
    let w = llama7b();
    par_map(&[2u32, 4, 8], |&degree| {
        with_point_label(&format!("fig11 rdu tp={degree}"), || {
            let plan = tensor_parallel(
                rdu.rdu_spec(),
                rdu.compiler_params(),
                CompilationMode::O1,
                &w,
                degree,
            )
            .expect("tp plan");
            RduTpRow {
                degree,
                pcu: plan.pcu_allocation,
                pmu: plan.pmu_allocation,
                cross_machine: plan.cross_machine,
            }
        })
    })
}

/// The nine layer-distribution configurations of Fig. 11(c) (12 layers
/// over three decoder IPUs).
pub const IPU_ALLOCATIONS: [[u64; 3]; 9] = [
    [4, 4, 4],
    [5, 4, 3],
    [5, 5, 2],
    [6, 3, 3],
    [6, 4, 2],
    [6, 5, 1],
    [7, 3, 2],
    [7, 4, 1],
    [8, 2, 2],
];

/// Fig. 11(c): throughput of each allocation.
#[must_use]
pub fn run_ipu() -> Vec<IpuAllocationRow> {
    let ipu = Ipu::default();
    let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 64, 1024, Precision::Fp16);
    par_map(&IPU_ALLOCATIONS, |alloc| {
        with_point_label(&format!("fig11 ipu alloc={alloc:?}"), || {
            let plan = pipeline_with_allocation(ipu.ipu_spec(), ipu.compiler_params(), &w, alloc)
                .expect("allocation fits");
            IpuAllocationRow {
                allocation: alloc.to_vec(),
                max_layers: *alloc.iter().max().expect("non-empty"),
                throughput: plan.throughput_tokens_per_s,
            }
        })
    })
}

/// Render all three panels.
#[must_use]
pub fn render(wse: &[WseReplicaRow], rdu: &[RduTpRow], ipu: &[IpuAllocationRow]) -> Vec<Table> {
    let mut a = Table::new("Fig. 11(a): WSE throughput vs replicas (gpt2-mini)");
    a.set_headers([
        "Replicas",
        "Computation tok/s",
        "Net tok/s",
        "Comm fraction",
    ]);
    for r in wse {
        a.add_row([
            r.replicas.to_string(),
            format!("{:.3e}", r.computation),
            format!("{:.3e}", r.net),
            format!("{:.3}", r.comm_fraction),
        ]);
    }
    let mut b = Table::new("Fig. 11(b): RDU per-chip utilization vs TP degree (llama2-7b)");
    b.set_headers(["TP", "PCU alloc", "PMU alloc", "Cross-machine"]);
    for r in rdu {
        b.add_row([
            r.degree.to_string(),
            format!("{:.3}", r.pcu),
            format!("{:.3}", r.pmu),
            r.cross_machine.to_string(),
        ]);
    }
    let mut c = Table::new("Fig. 11(c): IPU throughput vs layer allocation (12 layers, 3 IPUs)");
    c.set_headers(["Allocation", "Max layers", "Tokens/s"]);
    for r in ipu {
        c.add_row([
            format!("{:?}", r.allocation),
            r.max_layers.to_string(),
            format!("{:.3e}", r.throughput),
        ]);
    }
    vec![a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wse_comm_gap_grows_with_replicas() {
        let rows = run_wse();
        // The gap between computation and net throughput widens.
        let gaps: Vec<f64> = rows.iter().map(|r| r.computation - r.net).collect();
        assert!(gaps.windows(2).all(|w| w[1] >= w[0]), "{gaps:?}");
        // Net throughput still improves for the small model.
        assert!(rows.last().unwrap().net > rows.first().unwrap().net);
    }

    #[test]
    fn rdu_utilization_collapses_across_machines() {
        let rows = run_rdu();
        let tp2 = &rows[0];
        let tp4 = &rows[1];
        assert!(!tp2.cross_machine && tp4.cross_machine);
        let pcu_drop = 1.0 - tp4.pcu / tp2.pcu;
        let pmu_drop = 1.0 - tp4.pmu / tp2.pmu;
        // Paper: ~40% PCU and ~25% PMU drop.
        assert!((0.2..0.6).contains(&pcu_drop), "{pcu_drop}");
        assert!((0.05..0.5).contains(&pmu_drop), "{pmu_drop}");
        assert!(pmu_drop < pcu_drop);
    }

    #[test]
    fn ipu_throughput_tracks_max_load() {
        let rows = run_ipu();
        // Throughput is a non-increasing function of the max layer count.
        for a in &rows {
            for b in &rows {
                if a.max_layers < b.max_layers {
                    assert!(
                        a.throughput > b.throughput,
                        "{:?} vs {:?}",
                        a.allocation,
                        b.allocation
                    );
                }
            }
        }
    }

    #[test]
    fn balanced_allocation_wins() {
        let rows = run_ipu();
        let best = rows
            .iter()
            .max_by(|a, b| a.throughput.partial_cmp(&b.throughput).unwrap())
            .unwrap();
        assert_eq!(best.allocation, vec![4, 4, 4]);
    }

    #[test]
    fn render_produces_three_panels() {
        let tables = render(&run_wse(), &run_rdu(), &run_ipu());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[2].row_count(), 9);
    }
}
