//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures: each ablation switches one
//! mechanism of a platform model and quantifies its contribution, which is
//! exactly the kind of what-if analysis the simulators enable and the
//! hardware testbeds do not.

use super::workloads::{rdu_probe, wse_probe};
use crate::render::Table;
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_rdu::{execute_sections, partition, CompilationMode, RduCompilerParams, RduSpec};
use dabench_wse::{compile, execute, WseCompilerParams, WseSpec};
use serde::{Deserialize, Serialize};

/// One ablation observation: a parameter value and the metrics under it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Swept parameter value.
    pub value: f64,
    /// Named metrics observed at this value.
    pub metrics: Vec<(String, f64)>,
}

impl AblationRow {
    /// Look up a metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// Ablate the WSE transmission-PE overhead: what the allocation ratio and
/// achieved TFLOPs would be if routing cost fewer (or more) PEs per
/// computation PE.
#[must_use]
pub fn wse_transmission_ratio() -> Vec<AblationRow> {
    let spec = WseSpec::cs2();
    let w = wse_probe(24);
    [0.0f64, 0.25, 0.55, 0.85]
        .iter()
        .map(|&ratio| {
            let params = WseCompilerParams {
                transmission_ratio: ratio,
                ..Default::default()
            };
            let c = compile(&spec, &params, &w, None).expect("24 layers compile");
            let e = execute(&spec, &params, &c, &w);
            AblationRow {
                value: ratio,
                metrics: vec![
                    ("allocation".to_owned(), c.allocation_ratio()),
                    ("computation_pes".to_owned(), c.computation_pes() as f64),
                    ("tflops".to_owned(), e.achieved_tflops),
                ],
            }
        })
        .collect()
}

/// Ablate the WSE config-memory growth coefficient: how deep a HS-768
/// stack compiles as routing tables grow faster or slower.
#[must_use]
pub fn wse_config_growth() -> Vec<AblationRow> {
    let spec = WseSpec::cs2();
    [0.0f64, 0.4, 0.85, 1.7]
        .iter()
        .map(|&coef| {
            let params = WseCompilerParams {
                config_quadratic_bytes: coef,
                ..Default::default()
            };
            let mut deepest = 0u64;
            let mut layers = 6u64;
            while layers <= 120 {
                if compile(&spec, &params, &wse_probe(layers), None).is_ok() {
                    deepest = layers;
                } else {
                    break;
                }
                layers += 6;
            }
            AblationRow {
                value: coef,
                metrics: vec![("max_layers".to_owned(), deepest as f64)],
            }
        })
        .collect()
}

/// Ablate operator fusion on the RDU: O0 (no fusion) vs O1 (fused) DDR
/// traffic and throughput on the same workload.
#[must_use]
pub fn rdu_fusion() -> Vec<AblationRow> {
    let spec = RduSpec::sn30();
    let params = RduCompilerParams::default();
    let w = rdu_probe(768, 12);
    [CompilationMode::O0, CompilationMode::O1]
        .iter()
        .map(|&mode| {
            let sections = partition(&w, &spec, &params, mode);
            let e = execute_sections(&sections, &w, &spec, &params);
            AblationRow {
                value: if mode == CompilationMode::O0 {
                    0.0
                } else {
                    1.0
                },
                metrics: vec![
                    ("sections".to_owned(), sections.len() as f64),
                    (
                        "ddr_gb_per_step".to_owned(),
                        e.ddr_bytes_per_step as f64 / 1e9,
                    ),
                    ("tflops".to_owned(), e.achieved_tflops),
                ],
            }
        })
        .collect()
}

/// Ablate the RDU per-section PCU ceiling: the paper observes SambaFlow
/// never maps a section onto the whole fabric; what would lifting that
/// ceiling buy?
#[must_use]
pub fn rdu_section_ceiling() -> Vec<AblationRow> {
    let spec = RduSpec::sn30();
    let w = rdu_probe(1600, 12);
    [260u64, 390, 520, 640]
        .iter()
        .map(|&ceiling| {
            let params = RduCompilerParams {
                max_pcus_per_section: ceiling,
                ..Default::default()
            };
            let sections = partition(&w, &spec, &params, CompilationMode::O3);
            let e = execute_sections(&sections, &w, &spec, &params);
            AblationRow {
                value: ceiling as f64,
                metrics: vec![("tflops".to_owned(), e.achieved_tflops)],
            }
        })
        .collect()
}

/// Ablate IPU activation residency (Poplar's recompute aggressiveness):
/// how many GPT-2-small layers fit on one IPU as more activations are
/// kept resident.
#[must_use]
pub fn ipu_activation_residency() -> Vec<AblationRow> {
    use dabench_ipu::{decoder_ipu_memory, IpuCompilerParams, IpuSpec};
    let spec = IpuSpec::bow2000();
    [0.0f64, 0.2, 0.5, 1.0]
        .iter()
        .map(|&residency| {
            let params = IpuCompilerParams {
                activation_residency_factor: residency,
                ..Default::default()
            };
            let mut max_layers = 0u64;
            for layers in 1..=24 {
                let w = TrainingWorkload::new(
                    ModelConfig::gpt2_probe(768, layers),
                    64,
                    1024,
                    Precision::Fp16,
                );
                if decoder_ipu_memory(&w, layers, &spec, &params).fits() {
                    max_layers = layers;
                } else {
                    break;
                }
            }
            AblationRow {
                value: residency,
                metrics: vec![("max_layers".to_owned(), max_layers as f64)],
            }
        })
        .collect()
}

/// Render one ablation series.
#[must_use]
pub fn render(title: &str, param: &str, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(title);
    let metric_names: Vec<String> = rows
        .first()
        .map(|r| r.metrics.iter().map(|(k, _)| k.clone()).collect())
        .unwrap_or_default();
    t.set_headers(std::iter::once(param.to_owned()).chain(metric_names.clone()));
    for r in rows {
        t.add_row(
            std::iter::once(format!("{}", r.value)).chain(
                metric_names
                    .iter()
                    .map(|m| format!("{:.3}", r.metric(m).unwrap_or(f64::NAN))),
            ),
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_pes_trade_against_computation() {
        let rows = wse_transmission_ratio();
        // With no routing overhead, more computation PEs fit the budget…
        let comp0 = rows[0].metric("computation_pes").unwrap();
        let comp55 = rows[2].metric("computation_pes").unwrap();
        assert!(comp0 > 1.3 * comp55);
        // …and achieved TFLOPs rise accordingly.
        assert!(rows[0].metric("tflops").unwrap() > rows[2].metric("tflops").unwrap());
    }

    #[test]
    fn config_growth_sets_the_depth_limit() {
        let rows = wse_config_growth();
        let depth_at = |i: usize| rows[i].metric("max_layers").unwrap();
        // No quadratic growth → much deeper models compile.
        assert!(depth_at(0) > depth_at(2));
        // The shipped coefficient lands near the paper's 72-layer limit.
        assert!((66.0..=78.0).contains(&depth_at(2)), "{}", depth_at(2));
        // Doubling the coefficient halves-ish the limit.
        assert!(depth_at(3) < depth_at(2));
    }

    #[test]
    fn fusion_cuts_traffic_and_lifts_tflops() {
        let rows = rdu_fusion();
        let o0 = &rows[0];
        let o1 = &rows[1];
        assert!(
            o0.metric("ddr_gb_per_step").unwrap() > 1.5 * o1.metric("ddr_gb_per_step").unwrap()
        );
        assert!(o1.metric("tflops").unwrap() > o0.metric("tflops").unwrap());
        assert!(o1.metric("sections").unwrap() < o0.metric("sections").unwrap());
    }

    #[test]
    fn section_ceiling_limits_throughput() {
        let rows = rdu_section_ceiling();
        let t: Vec<f64> = rows.iter().map(|r| r.metric("tflops").unwrap()).collect();
        assert!(t.windows(2).all(|w| w[1] >= w[0] * 0.999), "{t:?}");
        assert!(t.last().unwrap() > &(1.1 * t[0]), "{t:?}");
    }

    #[test]
    fn recompute_extends_ipu_capacity() {
        let rows = ipu_activation_residency();
        let m: Vec<f64> = rows
            .iter()
            .map(|r| r.metric("max_layers").unwrap())
            .collect();
        assert!(m.windows(2).all(|w| w[1] <= w[0]), "{m:?}");
        // The shipped residency (0.2) reproduces the 9-layer limit.
        assert_eq!(m[1], 9.0);
    }

    #[test]
    fn render_includes_all_metrics() {
        let s = render("t", "ratio", &wse_transmission_ratio()).to_string();
        assert!(s.contains("allocation"));
        assert!(s.contains("tflops"));
    }
}
