//! Autoregressive inference across the four platforms: TTFT, decode
//! throughput, and KV-cache residency.
//!
//! Training benchmarks (Tier 1/2) time one optimizer step; this experiment
//! times *serving*: a compute-bound prefill over the prompt followed by
//! `decode_len` memory-bound single-token steps streaming the KV cache.
//! The sweep crosses batch size × prompt length × KV-cache precision on
//! the default serving model (LLaMA-2-7B, FP16 compute) and reports every
//! platform side by side — including the points where a platform's KV
//! level overflows, which are results, not errors: WSE SRAM and GPU HBM
//! hit capacity walls that the RDU's 512 GB of DDR never sees, and FP8 KV
//! storage moves those walls.

use crate::render::Table;
use dabench_core::{par_map, profile_inference, with_point_label, InferModel, InferenceReport};
use dabench_gpu::GpuSpec;
use dabench_ipu::{IpuCompilerParams, IpuSpec};
use dabench_model::{BatchingMode, InferenceWorkload, ModelConfig, Precision};
use dabench_rdu::{RduCompilerParams, RduSpec};
use dabench_wse::{WseCompilerParams, WseSpec};
use serde::{Deserialize, Serialize};

/// Platform column order, fixed across every table.
pub const PLATFORMS: [&str; 4] = ["wse", "rdu", "ipu", "gpu"];

/// Batch sizes of the default sweep. 64 is the capacity edge: at prompt
/// 2048 it overflows WSE SRAM at either KV precision and GPU HBM at FP16
/// (86.5 GB vs 85.9), while FP8 KV brings the GPU point back under.
const BATCHES: [u64; 3] = [1, 8, 64];
/// Prompt lengths of the default sweep.
const PROMPTS: [u64; 2] = [512, 2048];
/// KV-cache storage precisions of the default sweep (compute stays FP16).
const KV_PRECISIONS: [Precision; 2] = [Precision::Fp16, Precision::Fp8];
/// Tokens generated per request in every configuration.
const DECODE_LEN: u64 = 128;

/// One (platform, workload) point of the sweep. `report` is `None` when
/// the platform's KV level cannot hold weights + cache — rendered as an
/// OOM cell, never dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferRow {
    /// Platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u64,
    /// Prompt length, tokens.
    pub prompt_len: u64,
    /// KV-cache storage precision.
    pub kv_precision: Precision,
    /// Batching mode.
    pub batching: BatchingMode,
    /// Serving profile, or `None` on KV-level OOM.
    pub report: Option<InferenceReport>,
    /// Display text of the failure when `report` is `None`.
    pub error: Option<String>,
}

/// The serving model of `platform` for `workload` (the IPU picks its
/// memory level per workload — the tile-SRAM/DDR cliff).
#[must_use]
pub fn platform_model(platform: &str, workload: &InferenceWorkload) -> InferModel {
    match platform {
        "wse" => dabench_wse::infer_model(&WseSpec::cs2(), &WseCompilerParams::default()),
        "rdu" => dabench_rdu::infer_model(&RduSpec::sn30(), &RduCompilerParams::default()),
        "ipu" => {
            dabench_ipu::infer_model(&IpuSpec::bow2000(), &IpuCompilerParams::default(), workload)
        }
        "gpu" => dabench_gpu::infer_model(&GpuSpec::a100()),
        other => panic!("unknown inference platform `{other}`"),
    }
}

fn row(platform: &str, workload: &InferenceWorkload) -> InferRow {
    let model = platform_model(platform, workload);
    let (report, error) = match profile_inference(&model, workload) {
        Ok(r) => (Some(r), None),
        Err(e) => (None, Some(e.to_string())),
    };
    InferRow {
        platform: platform.to_owned(),
        batch: workload.batch_size(),
        prompt_len: workload.prompt_len(),
        kv_precision: workload.kv_precision(),
        batching: workload.batching(),
        report,
        error,
    }
}

fn sweep_workload(batch: u64, prompt: u64, kv: Precision) -> InferenceWorkload {
    InferenceWorkload::new(
        ModelConfig::llama2_7b(),
        batch,
        prompt,
        DECODE_LEN,
        Precision::Fp16,
    )
    .expect("sweep dimensions are valid")
    .with_kv_precision(kv)
}

/// Run the default sweep: every platform × batch × prompt × KV precision,
/// static batching. Rows are grouped by platform in [`PLATFORMS`] order,
/// then batch-major — and are identical at any `--jobs`.
#[must_use]
pub fn run() -> Vec<InferRow> {
    let mut points = Vec::new();
    for platform in PLATFORMS {
        for batch in BATCHES {
            for prompt in PROMPTS {
                for kv in KV_PRECISIONS {
                    points.push((platform, batch, prompt, kv));
                }
            }
        }
    }
    par_map(&points, |&(platform, batch, prompt, kv)| {
        let label = format!("infer {platform} b{batch} p{prompt} kv={}", kv.as_str());
        with_point_label(&label, || row(platform, &sweep_workload(batch, prompt, kv)))
    })
}

/// Run the batching-mode comparison at the largest sweep point that fits
/// every platform (B=32, prompt 2048, FP8 KV): static vs continuous per
/// platform.
#[must_use]
pub fn run_batching() -> Vec<InferRow> {
    let mut points = Vec::new();
    for platform in PLATFORMS {
        for mode in [BatchingMode::Static, BatchingMode::Continuous] {
            points.push((platform, mode));
        }
    }
    par_map(&points, |&(platform, mode)| {
        let label = format!("infer-batching {platform} {}", mode.as_str());
        let w = sweep_workload(32, 2048, Precision::Fp8).with_batching(mode);
        with_point_label(&label, || row(platform, &w))
    })
}

/// Profile one explicit workload on all four platforms (the flag-driven
/// `dabench infer --model ...` path).
#[must_use]
pub fn run_single(workload: &InferenceWorkload) -> Vec<InferRow> {
    par_map(&PLATFORMS, |&platform| {
        let label = format!("infer {platform}");
        with_point_label(&label, || row(platform, workload))
    })
}

fn push_row(t: &mut Table, r: &InferRow, lead: Vec<String>) {
    let mut cells = lead;
    match (&r.report, &r.error) {
        (Some(rep), _) => {
            cells.extend([
                format!("{:.1}", rep.ttft_s * 1e3),
                format!("{:.3e}", rep.decode_tokens_per_s),
                format!("{:.3e}", rep.e2e_tokens_per_s),
                format!("{:.2}", rep.kv_cache_bytes as f64 / 1e9),
                format!(
                    "{} {:.0}%",
                    rep.memory.name,
                    100.0 * rep.memory.utilization()
                ),
                rep.decode_bound.to_string(),
            ]);
        }
        (None, Some(e)) => {
            let short = if e.contains("out of memory") {
                "OOM"
            } else {
                "Fail"
            };
            cells.extend([
                short.to_owned(),
                String::new(),
                String::new(),
                String::new(),
                // Which level refused the workload is the interesting part
                // of an OOM row; the full error names it.
                e.split('`').nth(1).unwrap_or("").to_owned(),
                String::new(),
            ]);
        }
        (None, None) => unreachable!("row without report or error"),
    }
    t.add_row(cells);
}

/// Render the main sweep table.
#[must_use]
pub fn render(rows: &[InferRow]) -> Table {
    let mut t = Table::new(
        "Inference serving (LLaMA-2-7B, FP16 compute, 128 decode tokens, static batching)",
    );
    t.set_headers([
        "Platform",
        "B",
        "Prompt",
        "KV",
        "TTFT (ms)",
        "Decode tok/s",
        "E2E tok/s",
        "KV (GB)",
        "Memory",
        "Decode bound",
    ]);
    for r in rows {
        push_row(
            &mut t,
            r,
            vec![
                r.platform.clone(),
                r.batch.to_string(),
                r.prompt_len.to_string(),
                r.kv_precision.as_str().to_owned(),
            ],
        );
    }
    t
}

/// Render a single-workload profile (the flag-driven CLI path; the
/// workload line prints above the table, so rows carry only platform
/// serving columns).
#[must_use]
pub fn render_single(rows: &[InferRow]) -> Table {
    let mut t = Table::new("Inference serving");
    t.set_headers([
        "Platform",
        "TTFT (ms)",
        "Decode tok/s",
        "E2E tok/s",
        "KV (GB)",
        "Memory",
        "Decode bound",
    ]);
    for r in rows {
        push_row(&mut t, r, vec![r.platform.clone()]);
    }
    t
}

/// Render the static-vs-continuous comparison table.
#[must_use]
pub fn render_batching(rows: &[InferRow]) -> Table {
    let mut t = Table::new(
        "Batching mode at B=32, prompt 2048, FP8 KV: TTFT is the continuous win, decode is unchanged",
    );
    t.set_headers([
        "Platform",
        "Batching",
        "TTFT (ms)",
        "Decode tok/s",
        "E2E tok/s",
        "KV (GB)",
        "Memory",
        "Decode bound",
    ]);
    for r in rows {
        push_row(
            &mut t,
            r,
            vec![r.platform.clone(), r.batching.as_str().to_owned()],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_full_grid_in_order() {
        let rows = run();
        assert_eq!(
            rows.len(),
            PLATFORMS.len() * BATCHES.len() * PROMPTS.len() * KV_PRECISIONS.len()
        );
        // Grouped by platform, in canonical order.
        let per_platform = rows.len() / PLATFORMS.len();
        for (i, platform) in PLATFORMS.iter().enumerate() {
            assert!(rows[i * per_platform..(i + 1) * per_platform]
                .iter()
                .all(|r| r.platform == *platform));
        }
    }

    #[test]
    fn capacity_walls_land_where_the_memory_models_say() {
        let rows = run();
        let find = |p: &str, b: u64, prompt: u64, kv: Precision| {
            rows.iter()
                .find(|r| {
                    r.platform == p
                        && r.batch == b
                        && r.prompt_len == prompt
                        && r.kv_precision == kv
                })
                .unwrap()
        };
        // RDU DDR absorbs the whole sweep.
        assert!(rows
            .iter()
            .filter(|r| r.platform == "rdu")
            .all(|r| r.report.is_some()));
        // WSE SRAM and GPU HBM overflow at B=64 × 2048 with FP16 KV...
        assert!(find("wse", 64, 2048, Precision::Fp16).report.is_none());
        assert!(find("gpu", 64, 2048, Precision::Fp16).report.is_none());
        // ...FP8 KV recovers the GPU point (50 GB in 80 GiB of HBM) but
        // not the WSE one (still past the 41.8 GB of wafer SRAM).
        assert!(find("gpu", 64, 2048, Precision::Fp8).report.is_some());
        assert!(find("wse", 64, 2048, Precision::Fp8).report.is_none());
    }

    #[test]
    fn batching_comparison_fits_everywhere_and_cuts_ttft() {
        let rows = run_batching();
        assert_eq!(rows.len(), 2 * PLATFORMS.len());
        for pair in rows.chunks(2) {
            let (stat, cont) = (&pair[0], &pair[1]);
            assert_eq!(stat.platform, cont.platform);
            let s = stat.report.as_ref().unwrap();
            let c = cont.report.as_ref().unwrap();
            assert!(c.ttft_s < s.ttft_s, "{}", stat.platform);
        }
    }

    #[test]
    fn tables_render_every_row() {
        let rows = run();
        let t = render(&rows);
        let text = t.to_string();
        assert!(text.contains("OOM"), "sweep should include capacity walls");
        assert!(text.contains("memory-bound"));
        let csv = t.to_csv();
        assert_eq!(
            csv.lines().count(),
            rows.len() + 1,
            "header + one line per row"
        );
    }
}
