//! Table III: scalability performance across all evaluated platforms.

use super::workloads::{gpt2_xl, llama7b};
use crate::render::{num_or_fail, Table};
use dabench_core::{par_map, ParallelStrategy, Scalable};
use dabench_gpu::{megatron_throughput, GpuSpec, MegatronConfig};
use dabench_ipu::Ipu;
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::Wse;
use serde::{Deserialize, Serialize};

/// One column of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Device family (`"WSE-2"`, `"IPU"`, `"RDU"`, `"GPU"`).
    pub device: String,
    /// Configuration label, e.g. `"DP4"`, `"16PP"`, `"TP8"`, `"T8P1D1"`.
    pub configuration: String,
    /// Model label.
    pub model: String,
    /// Throughput in tokens/second (per GPU for the reference rows);
    /// `None` when the configuration fails.
    pub throughput: Option<f64>,
}

fn wse_rows() -> Vec<Table3Row> {
    let wse = Wse::default();
    let mk = |model: &ModelConfig| TrainingWorkload::new(model.clone(), 256, 1024, Precision::Fp16);
    let specs = [
        ("DP0", ModelConfig::gpt2_small(), 1u32),
        ("DP2", ModelConfig::gpt2_small(), 2),
        ("DP4", ModelConfig::gpt2_mini(), 4),
        ("DP8", ModelConfig::gpt2_tiny(), 8),
    ];
    let mut rows = par_map(&specs, |(cfg, model, replicas)| {
        let t = wse
            .scale(
                &mk(model),
                ParallelStrategy::DataParallel {
                    replicas: *replicas,
                },
            )
            .ok()
            .map(|p| p.throughput_tokens_per_s);
        Table3Row {
            device: "WSE-2".to_owned(),
            configuration: (*cfg).to_owned(),
            model: model.name.clone(),
            throughput: t,
        }
    });
    let t = wse
        .scale(
            &mk(&ModelConfig::gpt2_small()),
            ParallelStrategy::WeightStreaming,
        )
        .ok()
        .map(|p| p.throughput_tokens_per_s);
    rows.push(Table3Row {
        device: "WSE-2".to_owned(),
        configuration: "PP (weight streaming)".to_owned(),
        model: "gpt2-small".to_owned(),
        throughput: t,
    });
    rows
}

fn ipu_rows() -> Vec<Table3Row> {
    let ipu = Ipu::default();
    let specs = [
        (4u32, 6u64),
        (4, 12),
        (8, 18),
        (8, 24),
        (16, 30),
        (16, 36),
        (16, 42),
        (16, 48),
    ];
    par_map(&specs, |&(devices, layers)| {
        let w = TrainingWorkload::new(
            ModelConfig::gpt2_probe(768, layers),
            64,
            1024,
            Precision::Fp16,
        );
        let t = ipu
            .scale(&w, ParallelStrategy::PipelineParallel { devices })
            .ok()
            .map(|p| p.throughput_tokens_per_s);
        Table3Row {
            device: "IPU".to_owned(),
            configuration: format!("{devices}PP"),
            model: format!("{layers}L"),
            throughput: t,
        }
    })
}

fn rdu_rows() -> Vec<Table3Row> {
    let rdu = Rdu::with_mode(CompilationMode::O1);
    let w = llama7b();
    par_map(&[2u32, 4, 8], |&degree| {
        let t = rdu
            .scale(&w, ParallelStrategy::TensorParallel { degree })
            .ok()
            .map(|p| p.throughput_tokens_per_s);
        Table3Row {
            device: "RDU".to_owned(),
            configuration: format!("TP{degree}"),
            model: "7B".to_owned(),
            throughput: t,
        }
    })
}

fn gpu_rows() -> Vec<Table3Row> {
    let spec = GpuSpec::a100();
    let specs = [
        (MegatronConfig::new(8, 1, 1), 64u64),
        (MegatronConfig::new(4, 2, 1), 64),
        (MegatronConfig::new(2, 4, 1), 64),
        (MegatronConfig::new(1, 8, 1), 64),
        (MegatronConfig::new(8, 8, 16), 8192),
        (MegatronConfig::new(4, 4, 64), 8192),
    ];
    par_map(&specs, |&(config, batch)| {
        let t = megatron_throughput(&spec, &gpt2_xl(batch), config)
            .ok()
            .map(|r| r.tokens_per_s_per_gpu);
        Table3Row {
            device: "GPU (Reference)".to_owned(),
            configuration: config.label(),
            model: "xlarge".to_owned(),
            throughput: t,
        }
    })
}

/// Reproduce every column of Table III (device groups in parallel, rows
/// in canonical order).
#[must_use]
pub fn run() -> Vec<Table3Row> {
    let groups: [fn() -> Vec<Table3Row>; 4] = [wse_rows, ipu_rows, rdu_rows, gpu_rows];
    par_map(&groups, |group| group()).concat()
}

/// Render the table.
#[must_use]
pub fn render(rows: &[Table3Row]) -> Table {
    let mut t =
        Table::new("Table III: scalability performance (tokens/s; per GPU for reference rows)");
    t.set_headers(["Device", "Configuration", "Model", "Throughput"]);
    for r in rows {
        t.add_row([
            r.device.clone(),
            r.configuration.clone(),
            r.model.clone(),
            num_or_fail(r.throughput, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(rows: &[Table3Row], cfg: &str, model: &str) -> f64 {
        rows.iter()
            .find(|r| r.configuration == cfg && r.model == model)
            .and_then(|r| r.throughput)
            .unwrap_or_else(|| panic!("row {cfg}/{model}"))
    }

    #[test]
    fn wse_columns_have_paper_shape() {
        let rows = run();
        // Replicated small models beat the single-copy baseline (the
        // DP8-vs-DP4 cross-model ordering deviates from the paper; see
        // EXPERIMENTS.md).
        assert!(get(&rows, "DP8", "gpt2-tiny") > get(&rows, "DP0", "gpt2-small"));
        assert!(get(&rows, "DP4", "gpt2-mini") > get(&rows, "DP0", "gpt2-small"));
        // Weight streaming costs ~20% against the pipelined run.
        let drop = 1.0
            - get(&rows, "PP (weight streaming)", "gpt2-small") / get(&rows, "DP0", "gpt2-small");
        assert!((0.05..0.35).contains(&drop), "{drop}");
    }

    #[test]
    fn ipu_columns_inverse_in_layers() {
        let rows = run();
        assert!(get(&rows, "4PP", "6L") > get(&rows, "4PP", "12L"));
        assert!(get(&rows, "8PP", "18L") > get(&rows, "8PP", "24L"));
        assert!(get(&rows, "16PP", "30L") > get(&rows, "16PP", "48L"));
    }

    #[test]
    fn rdu_columns_show_cross_machine_cliff() {
        let rows = run();
        let tp2 = get(&rows, "TP2", "7B");
        let tp4 = get(&rows, "TP4", "7B");
        let tp8 = get(&rows, "TP8", "7B");
        assert!((0.2..0.6).contains(&(1.0 - tp4 / tp2)), "{tp2} {tp4}");
        assert!((tp8 / tp4 - 1.0).abs() < 0.15, "{tp4} {tp8}");
    }

    #[test]
    fn gpu_reference_ladder() {
        let rows = run();
        assert!(get(&rows, "T8P1D1", "xlarge") > get(&rows, "T1P8D1", "xlarge"));
        assert!(get(&rows, "T4P2D1", "xlarge") > get(&rows, "T2P4D1", "xlarge"));
    }

    #[test]
    fn render_covers_all_22_columns() {
        let rows = run();
        assert_eq!(rows.len(), 5 + 8 + 3 + 6);
        let s = render(&rows).to_string();
        assert!(s.contains("T8P8D16"));
        assert!(s.contains("weight streaming"));
    }
}
