//! Fig. 6: computation vs. transmission PEs and per-attention-kernel
//! elasticity on the WSE-2.

use super::workloads::wse_probe;
use crate::render::Table;
use dabench_wse::{compile, KernelKind, Wse};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 6 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Decoder layer count.
    pub layers: u64,
    /// Total computation PEs.
    pub computation_pes: u64,
    /// Total transmission PEs.
    pub transmission_pes: u64,
    /// Computation PEs of one attention kernel.
    pub attention_kernel_pes: u64,
}

/// Layer sweep of the figure (compilable range only).
pub const LAYERS: [u64; 10] = [1, 3, 6, 9, 12, 18, 24, 36, 48, 60];

/// Reproduce Fig. 6.
#[must_use]
pub fn run() -> Vec<Fig6Row> {
    let wse = Wse::default();
    LAYERS
        .iter()
        .map(|&layers| {
            let c = compile(
                wse.wse_spec(),
                wse.compiler_params(),
                &wse_probe(layers),
                None,
            )
            .expect("figure range compiles");
            Fig6Row {
                layers,
                computation_pes: c.computation_pes(),
                transmission_pes: c.transmission_pes(),
                attention_kernel_pes: c
                    .kernel(KernelKind::Attention { layer: 0 })
                    .expect("attention kernel present")
                    .comp_pes,
            }
        })
        .collect()
}

/// Render the series.
#[must_use]
pub fn render(rows: &[Fig6Row]) -> Table {
    let mut t = Table::new("Fig. 6: computation vs transmission PEs (WSE-2)");
    t.set_headers([
        "Layers",
        "Computation PEs",
        "Transmission PEs",
        "PEs / attention kernel",
    ]);
    for r in rows {
        t.add_row([
            r.layers.to_string(),
            r.computation_pes.to_string(),
            r.transmission_pes.to_string(),
            r.attention_kernel_pes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_match_paper() {
        let rows = run();
        // Computation and transmission follow similar trends with close
        // proportions.
        for r in &rows {
            let ratio = r.transmission_pes as f64 / r.computation_pes as f64;
            assert!((0.4..0.7).contains(&ratio), "L={}: {ratio}", r.layers);
        }
        // Per-attention-kernel PEs stable below 12 layers…
        let below: Vec<u64> = rows
            .iter()
            .filter(|r| r.layers < 12)
            .map(|r| r.attention_kernel_pes)
            .collect();
        assert!(below.windows(2).all(|w| w[0] == w[1]), "{below:?}");
        // …and shrinking beyond.
        let at12 = rows.iter().find(|r| r.layers == 12).unwrap();
        let at48 = rows.iter().find(|r| r.layers == 48).unwrap();
        assert!(at48.attention_kernel_pes < at12.attention_kernel_pes);
    }

    #[test]
    fn render_has_all_rows() {
        assert_eq!(render(&run()).row_count(), LAYERS.len());
    }
}
