//! Fig. 10: roofline models at the global-memory level for all three
//! chips.

use super::workloads::{ipu_probe, rdu_probe, wse_probe};
use crate::render::Table;
use dabench_core::metrics::Roofline;
use dabench_core::{tier1, BoundKind, Platform};
use dabench_ipu::Ipu;
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::Wse;
use serde::{Deserialize, Serialize};

/// One roofline point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Platform name.
    pub platform: String,
    /// Workload label.
    pub workload: String,
    /// Arithmetic intensity (Eq. 5), FLOPs/byte.
    pub intensity: f64,
    /// Achieved TFLOP/s.
    pub achieved_tflops: f64,
    /// Attainable TFLOP/s at this intensity.
    pub attainable_tflops: f64,
    /// Ridge intensity of the platform's roofline.
    pub ridge: f64,
    /// Bound classification.
    pub bound: BoundKind,
}

fn points<P: Platform>(
    platform: &P,
    workloads: &[(String, dabench_model::TrainingWorkload)],
) -> Vec<Fig10Row> {
    let spec = platform.spec();
    let mem = spec.global_memory().expect("platform has memory");
    let bw = mem.bandwidth_bytes_per_s.expect("global bw public");
    let roof = Roofline::new(spec.peak_tflops, bw);
    workloads
        .iter()
        .filter_map(|(label, w)| {
            let r = tier1::run(platform, w).ok()?;
            Some(Fig10Row {
                platform: platform.name().to_owned(),
                workload: label.clone(),
                intensity: r.arithmetic_intensity,
                achieved_tflops: r.achieved_tflops,
                attainable_tflops: roof.attainable_tflops(r.arithmetic_intensity),
                ridge: roof.ridge_intensity(),
                bound: r.bound.expect("bound classified"),
            })
        })
        .collect()
}

/// Evaluate the roofline points of all three chips.
#[must_use]
pub fn run() -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    rows.extend(points(
        &Wse::default(),
        &[12u64, 24, 36, 48]
            .iter()
            .map(|&l| (format!("gpt2-768-l{l}"), wse_probe(l)))
            .collect::<Vec<_>>(),
    ));
    rows.extend(points(
        &Rdu::with_mode(CompilationMode::O3),
        &[480u64, 768, 1024, 1600]
            .iter()
            .map(|&h| (format!("gpt2-h{h}-l12"), rdu_probe(h, 12)))
            .collect::<Vec<_>>(),
    ));
    rows.extend(points(
        &Ipu::default(),
        &[2u64, 4, 6, 8]
            .iter()
            .map(|&l| (format!("gpt2-768-l{l}"), ipu_probe(l)))
            .collect::<Vec<_>>(),
    ));
    rows
}

/// Render the roofline points.
#[must_use]
pub fn render(rows: &[Fig10Row]) -> Table {
    let mut t = Table::new("Fig. 10: roofline points (global-memory level)");
    t.set_headers([
        "Platform",
        "Workload",
        "AI (F/B)",
        "Achieved TF",
        "Attainable TF",
        "Ridge",
        "Bound",
    ]);
    for r in rows {
        t.add_row([
            r.platform.clone(),
            r.workload.clone(),
            format!("{:.1}", r.intensity),
            format!("{:.1}", r.achieved_tflops),
            format!("{:.1}", r.attainable_tflops),
            format!("{:.1}", r.ridge),
            r.bound.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wse_compute_bound_others_memory_bound() {
        // The paper's headline: only the WSE stays compute-bound.
        for r in run() {
            if r.platform.contains("wse") {
                assert_eq!(r.bound, BoundKind::ComputeBound, "{r:?}");
            } else {
                assert_eq!(r.bound, BoundKind::MemoryBound, "{r:?}");
            }
        }
    }

    #[test]
    fn achieved_below_attainable() {
        for r in run() {
            assert!(r.achieved_tflops <= r.attainable_tflops * 1.05, "{r:?}");
        }
    }

    #[test]
    fn wse_ridge_is_tiny() {
        let rows = run();
        let wse = rows.iter().find(|r| r.platform.contains("wse")).unwrap();
        assert!(wse.ridge < 1.0, "{}", wse.ridge);
    }

    #[test]
    fn render_lists_all_platforms() {
        let s = render(&run()).to_string();
        assert!(s.contains("cerebras"));
        assert!(s.contains("sambanova"));
        assert!(s.contains("graphcore"));
    }
}
