//! Reproduction scorecard: programmatic checks of every paper claim.
//!
//! This is the runnable counterpart of the paper's artifact-evaluation
//! appendix and of EXPERIMENTS.md: each check re-derives one claim from
//! the public experiment API and reports pass/fail, so a user can verify
//! the whole reproduction with `dabench check`.

use super::{fig10, fig11, fig12, fig6, fig7, fig8, fig9, table1, table2, table3, table4};
use crate::render::Table;
use dabench_core::{par_map, BoundKind};
use serde::{Deserialize, Serialize};

/// Outcome of one claim check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// Paper artifact the claim belongs to.
    pub artifact: String,
    /// The claim, in one sentence.
    pub claim: String,
    /// Whether the regenerated data supports it.
    pub passed: bool,
    /// The measured evidence.
    pub evidence: String,
}

fn check(artifact: &str, claim: &str, passed: bool, evidence: String) -> Check {
    Check {
        artifact: artifact.to_owned(),
        claim: claim.to_owned(),
        passed,
        evidence,
    }
}

/// Run the full scorecard.
///
/// Each paper artifact's checks are an independent group; the groups run
/// in parallel (bounded by [`dabench_core::jobs`]) and are concatenated
/// back in paper order, so the scorecard is byte-identical at any worker
/// count.
#[must_use]
pub fn run() -> Vec<Check> {
    let groups: [fn() -> Vec<Check>; 11] = [
        table1_checks,
        fig6_checks,
        table2_checks,
        fig7_checks,
        fig8_checks,
        fig9_checks,
        fig10_checks,
        table3_checks,
        fig11_checks,
        fig12_checks,
        table4_checks,
    ];
    par_map(&groups, |group| group()).concat()
}

fn table1_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let t1 = table1::run();
    let plateau: Vec<f64> = t1
        .iter()
        .filter(|r| (36..=72).contains(&r.layers))
        .filter_map(|r| r.allocation_pct)
        .collect();
    let plateau_ok = !plateau.is_empty() && plateau.iter().all(|v| (0.85..0.95).contains(v));
    checks.push(check(
        "Table I",
        "WSE PE allocation plateaus in the low 90s from 36 layers",
        plateau_ok,
        format!(
            "plateau {:.0}%-{:.0}%",
            100.0 * plateau.iter().cloned().fold(f64::INFINITY, f64::min),
            100.0 * plateau.iter().cloned().fold(0.0f64, f64::max)
        ),
    ));
    let fail78 = t1
        .iter()
        .any(|r| r.layers == 78 && r.allocation_pct.is_none());
    checks.push(check(
        "Table I",
        "compilation fails at 78 layers (~500M params)",
        fail78,
        format!("78-layer cell = {:?}", t1.last().map(|r| r.allocation_pct)),
    ));
    checks
}

fn fig6_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let f6 = fig6::run();
    let stable = f6
        .iter()
        .filter(|r| r.layers < 12)
        .map(|r| r.attention_kernel_pes)
        .collect::<std::collections::HashSet<_>>()
        .len()
        == 1;
    checks.push(check(
        "Fig 6",
        "per-attention-kernel PEs are stable below 12 layers, then shrink",
        stable
            && f6.last().expect("rows").attention_kernel_pes
                < f6.first().expect("rows").attention_kernel_pes,
        format!(
            "{} → {} PEs",
            f6.first().expect("rows").attention_kernel_pes,
            f6.last().expect("rows").attention_kernel_pes
        ),
    ));
    checks
}

fn table2_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let ratios = table2::run_o3();
    let quantized = ratios.iter().all(|r| {
        [2.0 / 3.0, 0.75, 1.0, 2.0, 3.0]
            .iter()
            .any(|q| (r.forward_ratio - q).abs() < 1e-9)
    });
    checks.push(check(
        "Table II(a)",
        "O3 forward ratios land on the 2/3 - 3/4 - 1 quantization ladder",
        quantized,
        format!(
            "{:?}",
            ratios.iter().map(|r| r.forward_ratio).collect::<Vec<_>>()
        ),
    ));
    let shards = table2::run_shards();
    checks.push(check(
        "Table II(b)",
        "LM-head shard count jumps at the fine-shard threshold",
        shards[2].shards > 2 * shards[1].shards,
        format!(
            "{} shards at HS 4096 vs {} at 5120",
            shards[1].shards, shards[2].shards
        ),
    ));
    checks
}

fn fig7_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let f7 = fig7::run_layers();
    let o3_above_o0 = f7
        .iter()
        .filter(|r| r.mode == "o3")
        .zip(f7.iter().filter(|r| r.mode == "o0"))
        .all(|(o3, o0)| o3.pcu_allocation > o0.pcu_allocation);
    checks.push(check(
        "Fig 7",
        "RDU allocation: O3 highest, O0 lowest, all far below the hardware limit",
        o3_above_o0 && f7.iter().all(|r| r.pcu_allocation < 0.70),
        format!(
            "max PCU allocation {:.2}",
            f7.iter().map(|r| r.pcu_allocation).fold(0.0f64, f64::max)
        ),
    ));
    checks
}

fn fig8_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let f8 = fig8::run_layers();
    let wse_min = f8
        .iter()
        .filter(|r| r.series == "wse")
        .map(|r| r.li)
        .fold(f64::INFINITY, f64::min);
    let o1_min = f8
        .iter()
        .filter(|r| r.series == "rdu-o1")
        .map(|r| r.li)
        .fold(f64::INFINITY, f64::min);
    let o3_max = f8
        .iter()
        .filter(|r| r.series == "rdu-o3")
        .map(|r| r.li)
        .fold(0.0f64, f64::max);
    checks.push(check(
        "Fig 8",
        "WSE is kernel-balanced (LI > 0.94); O1 balances far better than O3",
        wse_min > 0.94 && o1_min > o3_max,
        format!("WSE min {wse_min:.3}, O1 min {o1_min:.3}, O3 max {o3_max:.3}"),
    ));
    checks
}

fn fig9_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let wse_mem = fig9::run_wse();
    let cfg = |l: u64| {
        wse_mem
            .iter()
            .find(|r| r.layers == l)
            .expect("layer present")
            .config_fraction
    };
    checks.push(check(
        "Fig 9(a)",
        "WSE config memory grows super-linearly past 36 layers",
        cfg(72) - cfg(36) > cfg(36) - cfg(12),
        format!(
            "{:.1}% → {:.1}% → {:.1}%",
            100.0 * cfg(12),
            100.0 * cfg(36),
            100.0 * cfg(72)
        ),
    ));
    let ipu = fig9::run_ipu();
    checks.push(check(
        "Fig 9(d)",
        "IPU memory grows linearly and execution fails at 10 layers",
        ipu.last().expect("rows").tflops.is_none(),
        "10-layer cell = Fail".to_owned(),
    ));
    checks
}

fn fig10_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let f10 = fig10::run();
    let classified = f10.iter().all(|p| {
        if p.platform.contains("wse") {
            p.bound == BoundKind::ComputeBound
        } else {
            p.bound == BoundKind::MemoryBound
        }
    });
    checks.push(check(
        "Fig 10",
        "only the WSE is compute-bound; RDU and IPU are memory-bound",
        classified,
        format!("{} roofline points", f10.len()),
    ));
    checks
}

fn table3_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let t3 = table3::run();
    let get = |cfg: &str, model: &str| {
        t3.iter()
            .find(|r| r.configuration == cfg && r.model == model)
            .and_then(|r| r.throughput)
    };
    let tp2 = get("TP2", "7B").unwrap_or(0.0);
    let tp4 = get("TP4", "7B").unwrap_or(0.0);
    checks.push(check(
        "Table III",
        "cross-machine TP costs the RDU 25-55% of throughput",
        tp2 > 0.0 && (0.25..0.55).contains(&(1.0 - tp4 / tp2)),
        format!("TP2 {tp2:.0} → TP4 {tp4:.0} tokens/s"),
    ));
    let ws = get("PP (weight streaming)", "gpt2-small").unwrap_or(0.0);
    let dp0 = get("DP0", "gpt2-small").unwrap_or(0.0);
    checks.push(check(
        "Table III",
        "weight streaming costs the WSE ~20% against resident execution",
        dp0 > 0.0 && (0.05..0.35).contains(&(1.0 - ws / dp0)),
        format!("{:.1}% drop", 100.0 * (1.0 - ws / dp0)),
    ));
    checks
}

fn fig11_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let f11c = fig11::run_ipu();
    let ordered = f11c.iter().all(|a| {
        f11c.iter()
            .all(|b| a.max_layers >= b.max_layers || a.throughput > b.throughput)
    });
    checks.push(check(
        "Fig 11(c)",
        "IPU throughput is set by the most loaded device across all 9 allocations",
        ordered,
        format!("{} allocations checked", f11c.len()),
    ));
    checks
}

fn fig12_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let f12 = fig12::run();
    let wse_series = f12
        .iter()
        .find(|s| s.platform.contains("wse"))
        .expect("wse series");
    let knee = wse_series.saturation_batch(0.85);
    checks.push(check(
        "Fig 12",
        "WSE throughput saturates near batch 200",
        knee.is_some_and(|k| (100..=300).contains(&k)),
        format!("85%-of-peak knee at batch {knee:?}"),
    ));
    checks
}

fn table4_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    let t4 = table4::run();
    let rdu_gain = table4::gain(&t4, "RDU (7B)").unwrap_or(0.0);
    let ipu_gain = table4::gain(&t4, "IPU").unwrap_or(0.0);
    let wse_gain = table4::gain(&t4, "WSE").unwrap_or(0.0);
    checks.push(check(
        "Table IV",
        "precision sensitivity orders RDU > IPU > WSE",
        rdu_gain > ipu_gain && ipu_gain > wse_gain,
        format!(
            "RDU {:+.1}%, IPU {:+.1}%, WSE {:+.1}%",
            100.0 * rdu_gain,
            100.0 * ipu_gain,
            100.0 * wse_gain
        ),
    ));

    checks
}

/// Render the scorecard.
#[must_use]
pub fn render(checks: &[Check]) -> Table {
    let mut t = Table::new("Reproduction scorecard (paper claims re-derived from the simulators)");
    t.set_headers(["Artifact", "Claim", "Status", "Evidence"]);
    for c in checks {
        t.add_row([
            c.artifact.clone(),
            c.claim.clone(),
            if c.passed { "PASS" } else { "FAIL" }.to_owned(),
            c.evidence.clone(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_passes() {
        let checks = run();
        assert!(checks.len() >= 13);
        for c in &checks {
            assert!(c.passed, "{} — {}: {}", c.artifact, c.claim, c.evidence);
        }
    }

    #[test]
    fn render_shows_pass_column() {
        let s = render(&run()).to_string();
        assert!(s.contains("PASS"));
        assert!(!s.contains("FAIL"));
    }
}
