//! Cross-platform summary of one workload.
//!
//! The paper deliberately avoids ranking the platforms ("ensuring fairness
//! is highly challenging"); this module keeps that caveat but gives a
//! downstream user the side-by-side view they will inevitably want, with
//! each platform profiled at its own canonical configuration.

use crate::render::{num_or_fail, Table};
use dabench_core::{par_map, tier1_cached, with_point_label, Memoizable, Tier1Report};
use dabench_ipu::Ipu;
use dabench_model::TrainingWorkload;
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::Wse;
use serde::{Deserialize, Serialize};

/// One platform's summary line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Platform name.
    pub platform: String,
    /// Full Tier-1 report, `None` when the workload does not map.
    pub report: Option<Tier1Report>,
}

/// Profile `workload` on all three dataflow platforms (in parallel,
/// through the tier-1 cache; rows stay in canonical order).
#[must_use]
pub fn run(workload: &TrainingWorkload) -> Vec<SummaryRow> {
    fn row_of<P: Memoizable>(platform: &P, workload: &TrainingWorkload) -> SummaryRow {
        SummaryRow {
            platform: platform.name().to_owned(),
            report: tier1_cached(platform, workload).ok(),
        }
    }
    type Probe = fn(&TrainingWorkload) -> SummaryRow;
    let probes: [(&str, Probe); 3] = [
        ("summary wse", |w| row_of(&Wse::default(), w)),
        ("summary rdu-o3", |w| {
            row_of(&Rdu::with_mode(CompilationMode::O3), w)
        }),
        ("summary ipu", |w| row_of(&Ipu::default(), w)),
    ];
    par_map(&probes, |(label, probe)| {
        with_point_label(label, || probe(workload))
    })
}

/// Render the summary.
#[must_use]
pub fn render(rows: &[SummaryRow]) -> Table {
    let mut t = Table::new(
        "Cross-platform summary (per-chip; configurations differ — see the paper's fairness caveat)",
    );
    t.set_headers([
        "Platform",
        "Tokens/s",
        "TFLOP/s",
        "Efficiency",
        "Load imbalance",
        "Bound",
    ]);
    for r in rows {
        match &r.report {
            Some(rep) => t.add_row([
                r.platform.clone(),
                format!("{:.3e}", rep.throughput_tokens_per_s),
                format!("{:.1}", rep.achieved_tflops),
                format!("{:.1}%", 100.0 * rep.compute_efficiency),
                num_or_fail(rep.load_imbalance, 3),
                rep.bound.map_or("n/a".to_owned(), |b| b.to_string()),
            ]),
            None => t.add_row([
                r.platform.clone(),
                "Fail".to_owned(),
                "Fail".to_owned(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    #[test]
    fn all_platforms_handle_the_shared_probe() {
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 32, 1024, Precision::Fp16);
        let rows = run(&w);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.report.is_some()));
    }

    #[test]
    fn failures_render_as_fail() {
        // 78 layers: WSE fails (per-PE SRAM), RDU succeeds (DDR has room
        // at this batch), IPU fails (tile SRAM).
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 78), 32, 1024, Precision::Fp16);
        let rows = run(&w);
        let wse = rows.iter().find(|r| r.platform.contains("wse")).unwrap();
        let rdu = rows.iter().find(|r| r.platform.contains("sn30")).unwrap();
        assert!(wse.report.is_none());
        assert!(rdu.report.is_some());
        let s = render(&rows).to_string();
        assert!(s.contains("Fail"));
    }
}
