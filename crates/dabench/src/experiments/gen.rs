//! `dabench gen`: evaluate seeded scenario populations, rank the four
//! platforms across them, and enforce the metamorphic invariant catalog.
//!
//! The sampler itself lives in `dabench_core::gen` (pure, dependency-free
//! so shard workers can re-derive any scenario from its label alone).
//! This module is the evaluation side: map one [`Scenario`] onto all four
//! platform models, render the outcome as a machine-parsable `gen-v1`
//! record (the journaled point value — everything downstream re-parses
//! records rather than reusing in-memory floats, so `--resume` and shard
//! replay stay byte-identical), then fold a population of records into
//! the ranking report (per-tier Pareto throughput/robustness + pairwise
//! Elo) and the invariant check (fault monotonicity, FP8 KV shrinkage,
//! batch monotonicity, OOM-wall consistency, seeded determinism). See
//! `docs/generation.md`.

use crate::render::Table;
use dabench_core::gen::{
    check_batch_ladder, check_determinism, check_fault_monotone, check_fp8_kv, format_label,
    parse_label, sample, Invariant, LadderPoint, MemoryEdge, Scenario, ScenarioKind, Tier,
    Violation,
};
use dabench_core::{
    catch_labeled, max_admissible_batch, par_map, profile_inference, AdmissionProbe, Degradable,
    ParallelStrategy, Platform, PlatformError, Scalable,
};
use dabench_faults::{FaultPlan, PlanSpec, PlatformKind};
use dabench_gpu::GpuCluster;
use dabench_ipu::Ipu;
use dabench_model::{InferenceWorkload, Precision};
use dabench_rdu::Rdu;
use dabench_wse::Wse;

/// Platform column order, shared with the inference sweep.
pub use super::infer::PLATFORMS;

/// Record schema identifier; bump when the line format changes.
pub const RECORD_SCHEMA: &str = "gen-v1";
/// Default population of the `gen` suite entry (`dabench csv gen`, serve).
pub const DEFAULT_TIER: Tier = Tier::Baby;
/// Default population seed.
pub const DEFAULT_SEED: u64 = 42;
/// Default population size.
pub const DEFAULT_COUNT: u64 = 8;
/// Upper bound on admission-wall probing. Walls at this cap are treated
/// as "no wall found", not as real walls — the RDU's 512 GB DDR can sit
/// past any batch the generator would reasonably serve.
pub const PROBE_LIMIT: u64 = 65536;
/// How often the determinism invariant re-derives a full record (every
/// `DETERMINISM_STRIDE`-th scenario, plus index 0): re-evaluation doubles
/// a scenario's cost, so the sub-check samples deterministically instead
/// of running on every index.
pub const DETERMINISM_STRIDE: u64 = 8;

/// One platform's observation of one scenario, as carried by a `gen-v1`
/// record line.
#[derive(Debug, Clone, PartialEq)]
pub struct GenObs {
    /// Platform name.
    pub platform: String,
    /// Batch size actually evaluated (differs from the sampled batch for
    /// memory-edge scenarios, which resolve against this platform's wall).
    pub batch: u64,
    /// Achieved tokens/s (`None` on any error, including OOM).
    pub tokens_per_s: Option<f64>,
    /// Serving memory level (`None` for training scenarios and errors).
    pub level: Option<String>,
    /// Free-form note: the error text, or an evaluation mode remark.
    pub note: String,
}

impl GenObs {
    fn failed(platform: &str, batch: u64, note: String) -> Self {
        GenObs {
            platform: platform.to_owned(),
            batch,
            tokens_per_s: None,
            level: None,
            note,
        }
    }
}

/// The native multi-chip strategy of each platform at `degree` — the
/// DP/TP/PP lens of Sec. IV-C applied to the generator's parallelism axis.
#[must_use]
pub fn native_strategy(platform: &str, degree: u32) -> ParallelStrategy {
    match platform {
        "wse" => ParallelStrategy::DataParallel { replicas: degree },
        "rdu" | "gpu" => ParallelStrategy::TensorParallel { degree },
        "ipu" => ParallelStrategy::PipelineParallel { devices: degree },
        other => panic!("unknown platform `{other}`"),
    }
}

/// Probe `platform`'s admission wall for `workload`'s shape (the largest
/// batch that fits, searched up to [`PROBE_LIMIT`]).
#[must_use]
pub fn platform_probe(platform: &str, workload: &InferenceWorkload) -> AdmissionProbe {
    // Route through the same per-workload model builder the evaluation
    // uses, so probe and profile can never disagree about the level.
    max_admissible_batch(workload, PROBE_LIMIT, |w| {
        super::infer::platform_model(platform, w)
    })
}

/// Deterministic seed of the scenario's concrete fault plan: a pure
/// function of `(tier, seed, index)` so every process draws the same
/// fault coordinates.
fn plan_seed(s: &Scenario) -> u64 {
    dabench_core::SplitMix64::fork(s.seed ^ (0xFA17 + s.tier.rank()), s.index).next_u64()
}

fn degrade_on(platform: &(dyn Degradable + Sync), s: &Scenario) -> Result<f64, PlatformError> {
    let spec = PlanSpec::from_intensity(&s.faults)
        .map_err(|e| PlatformError::Unsupported(format!("sampled fault plan: {e}")))?;
    let kind = PlatformKind::from_fault_kind(platform.fault_kind());
    let plan = FaultPlan::generate(kind, &spec, plan_seed(s));
    let d = platform.degrade(&s.training_workload(), &plan.fault_set())?;
    Ok(d.degraded.throughput_tokens_per_s)
}

fn train_obs(platform: &str, s: &Scenario) -> GenObs {
    let w = s.training_workload();
    let outcome: Result<(f64, String), PlatformError> = if s.parallelism > 1 {
        // Fault plans model single-chip fabric damage; under multi-chip
        // scaling the scored result is the healthy scaled throughput.
        let note = if s.faults.is_healthy() {
            format!("scaled x{}", s.parallelism)
        } else {
            format!("scaled x{} (faults not applied)", s.parallelism)
        };
        let strategy = native_strategy(platform, s.parallelism);
        let scaled = match platform {
            "wse" => Wse::default().scale(&w, strategy),
            "rdu" => Rdu::default().scale(&w, strategy),
            "ipu" => Ipu::default().scale(&w, strategy),
            "gpu" => GpuCluster::default().scale(&w, strategy),
            other => panic!("unknown platform `{other}`"),
        };
        scaled.map(|p| (p.throughput_tokens_per_s, note))
    } else if s.faults.is_healthy() {
        let profiled = match platform {
            "wse" => Wse::default().profile(&w),
            "rdu" => Rdu::default().profile(&w),
            "ipu" => Ipu::default().profile(&w),
            "gpu" => GpuCluster::default().profile(&w),
            other => panic!("unknown platform `{other}`"),
        };
        profiled.map(|p| (p.throughput_tokens_per_s, "healthy".to_owned()))
    } else {
        let degraded = match platform {
            "wse" => degrade_on(&Wse::default(), s),
            "rdu" => degrade_on(&Rdu::default(), s),
            "ipu" => degrade_on(&Ipu::default(), s),
            // A missing fault model is an explicit loss on faulted
            // scenarios, not a silent fallback to healthy numbers.
            "gpu" => Err(PlatformError::Unsupported(
                "gpu baseline has no fault model".to_owned(),
            )),
            other => panic!("unknown platform `{other}`"),
        };
        degraded.map(|t| (t, "degraded".to_owned()))
    };
    match outcome {
        Ok((tokens_per_s, note)) => GenObs {
            platform: platform.to_owned(),
            batch: s.batch,
            tokens_per_s: Some(tokens_per_s),
            level: None,
            note,
        },
        Err(e) => GenObs::failed(platform, s.batch, e.to_string()),
    }
}

fn infer_obs(platform: &str, s: &Scenario) -> GenObs {
    let base = s.inference_workload();
    let (batch, note) = match s.memory_edge {
        MemoryEdge::Off => (s.batch, String::new()),
        MemoryEdge::Under | MemoryEdge::Over => {
            let probe = platform_probe(platform, &base);
            if probe.max_batch == 0 {
                return GenObs::failed(
                    platform,
                    0,
                    format!(
                        "edge-{}: nothing fits `{}` ({} B over {} B)",
                        s.memory_edge.as_str(),
                        probe.kv_level,
                        probe.over_required_bytes,
                        probe.over_capacity_bytes
                    ),
                );
            }
            let b = match s.memory_edge {
                MemoryEdge::Under => probe.max_batch,
                _ => probe.max_batch + 1,
            };
            (
                b,
                format!("edge-{} wall={}", s.memory_edge.as_str(), probe.max_batch),
            )
        }
    };
    let w = match base.with_batch_size(batch) {
        Ok(w) => w,
        Err(e) => return GenObs::failed(platform, batch, e.to_string()),
    };
    let model = super::infer::platform_model(platform, &w);
    match profile_inference(&model, &w) {
        Ok(r) => GenObs {
            platform: platform.to_owned(),
            batch,
            tokens_per_s: Some(r.e2e_tokens_per_s),
            level: Some(r.memory.name.clone()),
            note: if note.is_empty() {
                "serving".to_owned()
            } else {
                note
            },
        },
        Err(e) => GenObs::failed(
            platform,
            batch,
            if note.is_empty() {
                e.to_string()
            } else {
                format!("{note}: {e}")
            },
        ),
    }
}

/// Evaluate `scenario` on all four platforms. A platform whose model
/// panics is recorded as a failed observation, never propagated — one
/// buggy corner of a platform model must not take down a population.
#[must_use]
pub fn evaluate(scenario: &Scenario) -> Vec<GenObs> {
    par_map(&PLATFORMS, |&platform| {
        let label = format!("{} {platform}", scenario.label());
        match catch_labeled(&label, || match scenario.kind {
            ScenarioKind::Train => train_obs(platform, scenario),
            ScenarioKind::Infer => infer_obs(platform, scenario),
        }) {
            Ok(obs) => obs,
            Err(panicked) => GenObs::failed(platform, scenario.batch, panicked),
        }
    })
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |t| format!("{t:.6e}"))
}

/// Round a throughput through the record's `{:.6e}` wire format. The
/// faulted side of the fault-monotone check is parsed back from the
/// journaled record while its healthy twin is profiled live, so both
/// must sit on the same 7-significant-digit grid before comparison —
/// otherwise an exactly-equal pair reads as a violation whenever the
/// recorded value rounded up.
fn quantize_tps(tps: f64) -> f64 {
    format!("{tps:.6e}").parse().unwrap_or(tps)
}

/// Render the `gen-v1` record of one scenario: one header line plus one
/// line per platform. This text is the journaled point value — every
/// table, ranking and CSV downstream is re-derived from it by
/// [`parse_record`], never from live floats, so replayed and freshly
/// evaluated populations are byte-identical.
#[must_use]
pub fn render_record(scenario: &Scenario, observations: &[GenObs]) -> String {
    let s = scenario;
    let mut out = format!(
        "{RECORD_SCHEMA} label={} kind={} family={} hidden={} layers={} heads={} kv_heads={} \
         batch={} seq={} decode={} prec={} kv={} par={} dead={:.6} link={:.6} stalls={} drop={} \
         edge={}\n",
        s.label(),
        s.kind.as_str(),
        s.family.as_str(),
        s.hidden,
        s.layers,
        s.heads,
        s.kv_heads,
        s.batch,
        s.seq,
        s.decode,
        s.precision.as_str(),
        s.kv_precision.as_str(),
        s.parallelism,
        s.faults.dead_fraction,
        s.faults.link_retained,
        s.faults.transient_stalls,
        s.faults.dropped_devices,
        s.memory_edge.as_str(),
    );
    for o in observations {
        // `note` is free-form (error texts contain spaces) so it must be
        // the last field; newlines would break line-oriented parsing.
        out.push_str(&format!(
            "  {} batch={} tokens_per_s={} level={} note={}\n",
            o.platform,
            o.batch,
            fmt_opt_f64(o.tokens_per_s),
            o.level.as_deref().unwrap_or("-"),
            o.note.replace('\n', "; "),
        ));
    }
    out
}

/// Evaluate and render scenario `(tier, seed, index)` — the renderer
/// behind every `gen:<tier>:s<seed>:i<index>` point label.
#[must_use]
pub fn render_scenario(tier: Tier, seed: u64, index: u64) -> String {
    let scenario = sample(tier, seed, index);
    render_record(&scenario, &evaluate(&scenario))
}

fn field<'a>(token: &'a str, key: &str) -> Option<&'a str> {
    token.strip_prefix(key)?.strip_prefix('=')
}

/// Parse a `gen-v1` record back into its scenario label and platform
/// observations. Returns `None` on any malformed line — a corrupt
/// journal entry must surface, not silently contribute empty data.
#[must_use]
pub fn parse_record(record: &str) -> Option<(String, Vec<GenObs>)> {
    let mut lines = record.lines();
    let header = lines.next()?;
    let mut tokens = header.split_whitespace();
    if tokens.next()? != RECORD_SCHEMA {
        return None;
    }
    let label = field(tokens.next()?, "label")?.to_owned();
    parse_label(&label)?;
    let mut observations = Vec::new();
    for line in lines {
        let line = line.trim_start();
        if line.is_empty() {
            continue;
        }
        let mut t = line.split_whitespace();
        let platform = t.next()?.to_owned();
        let batch = field(t.next()?, "batch")?.parse().ok()?;
        let tokens_per_s = match field(t.next()?, "tokens_per_s")? {
            "-" => None,
            v => Some(v.parse().ok()?),
        };
        let level = match field(t.next()?, "level")? {
            "-" => None,
            v => Some(v.to_owned()),
        };
        let note = line.split_once(" note=").map_or("", |(_, n)| n).to_owned();
        observations.push(GenObs {
            platform,
            batch,
            tokens_per_s,
            level,
            note,
        });
    }
    if observations.is_empty() {
        return None;
    }
    Some((label, observations))
}

// ---------------------------------------------------------------------------
// Ranking: pairwise Elo + Pareto throughput/robustness
// ---------------------------------------------------------------------------

/// Elo K-factor for pairwise scenario wins.
pub const ELO_K: f64 = 32.0;
/// Elo starting rating.
pub const ELO_START: f64 = 1000.0;

/// One platform's row of the ranking report.
#[derive(Debug, Clone, PartialEq)]
pub struct RankRow {
    /// Platform name.
    pub platform: String,
    /// Elo rating after all pairwise comparisons, in scenario order.
    pub elo: f64,
    /// Pairwise wins / losses / draws.
    pub wins: u64,
    /// Pairwise losses.
    pub losses: u64,
    /// Pairwise draws.
    pub draws: u64,
    /// Fraction of ranked scenarios the platform completed (`0..=1`).
    pub robustness: f64,
    /// Mean throughput normalized to the per-scenario best (`0..=1`),
    /// over the scenarios this platform completed.
    pub norm_throughput: f64,
    /// Whether the platform sits on the robustness×throughput Pareto
    /// frontier of this population.
    pub pareto: bool,
}

/// Compute the ranking over parsed records, in scenario order.
/// Memory-edge `over` scenarios are excluded: every platform is
/// *expected* to refuse them, so they probe the admission model rather
/// than rank throughput.
#[must_use]
pub fn ranking(records: &[(Scenario, Vec<GenObs>)]) -> Vec<RankRow> {
    let n = PLATFORMS.len();
    let mut elo = vec![ELO_START; n];
    let mut wins = vec![0_u64; n];
    let mut losses = vec![0_u64; n];
    let mut draws = vec![0_u64; n];
    let mut completed = vec![0_u64; n];
    let mut norm_sum = vec![0.0_f64; n];
    let mut ranked = 0_u64;

    let index_of = |p: &str| PLATFORMS.iter().position(|q| *q == p);
    for (scenario, obs) in records {
        if scenario.memory_edge == MemoryEdge::Over {
            continue;
        }
        ranked += 1;
        let mut score: Vec<Option<f64>> = vec![None; n];
        for o in obs {
            if let Some(i) = index_of(&o.platform) {
                score[i] = o.tokens_per_s;
            }
        }
        let best = score.iter().flatten().fold(0.0_f64, |a, &b| a.max(b));
        for i in 0..n {
            if let Some(t) = score[i] {
                completed[i] += 1;
                if best > 0.0 {
                    norm_sum[i] += t / best;
                }
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                // Game result for i vs j: completion beats failure,
                // then throughput decides; double failure is no game.
                let si = match (score[i], score[j]) {
                    (None, None) => continue,
                    (Some(_), None) => 1.0,
                    (None, Some(_)) => 0.0,
                    (Some(a), Some(b)) => {
                        if a > b {
                            1.0
                        } else if a < b {
                            0.0
                        } else {
                            0.5
                        }
                    }
                };
                match si {
                    x if x > 0.5 => {
                        wins[i] += 1;
                        losses[j] += 1;
                    }
                    x if x < 0.5 => {
                        losses[i] += 1;
                        wins[j] += 1;
                    }
                    _ => {
                        draws[i] += 1;
                        draws[j] += 1;
                    }
                }
                let expect_i = 1.0 / (1.0 + 10.0_f64.powf((elo[j] - elo[i]) / 400.0));
                elo[i] += ELO_K * (si - expect_i);
                elo[j] += ELO_K * ((1.0 - si) - (1.0 - expect_i));
            }
        }
    }

    let rows: Vec<RankRow> = (0..n)
        .map(|i| RankRow {
            platform: PLATFORMS[i].to_owned(),
            elo: elo[i],
            wins: wins[i],
            losses: losses[i],
            draws: draws[i],
            robustness: if ranked == 0 {
                0.0
            } else {
                completed[i] as f64 / ranked as f64
            },
            norm_throughput: if completed[i] == 0 {
                0.0
            } else {
                norm_sum[i] / completed[i] as f64
            },
            pareto: false,
        })
        .collect();
    let mut rows = rows;
    for i in 0..rows.len() {
        let dominated = rows.iter().enumerate().any(|(j, other)| {
            j != i
                && other.robustness >= rows[i].robustness
                && other.norm_throughput >= rows[i].norm_throughput
                && (other.robustness > rows[i].robustness
                    || other.norm_throughput > rows[i].norm_throughput)
        });
        rows[i].pareto = !dominated;
    }
    rows
}

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

/// Result of checking one population: how many checks ran per invariant,
/// and every violation found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckOutcome {
    /// `(invariant, checks performed)` in catalog order.
    pub checked: Vec<(Invariant, u64)>,
    /// Every violation, in scenario order.
    pub violations: Vec<Violation>,
}

struct Checker {
    counts: [u64; Invariant::ALL.len()],
    violations: Vec<Violation>,
    inject: Option<Invariant>,
}

impl Checker {
    fn new(inject: Option<Invariant>) -> Self {
        Checker {
            counts: [0; Invariant::ALL.len()],
            violations: Vec::new(),
            inject,
        }
    }

    fn count(&mut self, inv: Invariant) {
        self.counts[Invariant::ALL
            .iter()
            .position(|i| *i == inv)
            .expect("listed")] += 1;
    }

    /// Take the pending injection if it targets `inv` — the caller then
    /// perturbs the observation it was about to check.
    fn take_injection(&mut self, inv: Invariant) -> bool {
        if self.inject == Some(inv) {
            self.inject = None;
            return true;
        }
        false
    }

    fn push(&mut self, v: Option<Violation>) {
        if let Some(v) = v {
            self.violations.push(v);
        }
    }
}

fn check_scenario(ck: &mut Checker, scenario: &Scenario, obs: &[GenObs]) {
    let label = scenario.label();
    match scenario.kind {
        ScenarioKind::Train => {
            // Fault monotonicity: the degraded throughput recorded for a
            // faulted single-chip scenario must not beat an independently
            // profiled healthy run of the same workload.
            if scenario.parallelism == 1 && !scenario.faults.is_healthy() {
                let w = scenario.training_workload();
                for o in obs {
                    let Some(faulty) = o.tokens_per_s else {
                        continue;
                    };
                    let healthy = match o.platform.as_str() {
                        "wse" => Wse::default().profile(&w),
                        "rdu" => Rdu::default().profile(&w),
                        "ipu" => Ipu::default().profile(&w),
                        _ => continue,
                    };
                    let Ok(healthy) = healthy else { continue };
                    ck.count(Invariant::FaultMonotone);
                    let mut healthy_tps = quantize_tps(healthy.throughput_tokens_per_s);
                    if ck.take_injection(Invariant::FaultMonotone) {
                        healthy_tps = faulty / 2.0;
                    }
                    ck.push(check_fault_monotone(
                        &o.platform,
                        &label,
                        healthy_tps,
                        faulty,
                    ));
                }
            }
        }
        ScenarioKind::Infer => {
            // FP8 KV shrinkage is a shape-level property of the workload
            // model; check it once per serving scenario.
            let w16 = scenario
                .inference_workload()
                .with_kv_precision(Precision::Fp16);
            let w8 = w16.clone().with_kv_precision(Precision::Fp8);
            ck.count(Invariant::Fp8KvSmaller);
            let mut fp8_bytes = w8.kv_cache_peak_bytes();
            if ck.take_injection(Invariant::Fp8KvSmaller) {
                fp8_bytes = w16.kv_cache_peak_bytes();
            }
            ck.push(check_fp8_kv(
                &label,
                w16.kv_cache_peak_bytes(),
                fp8_bytes,
                w16.weight_bytes(),
                w8.weight_bytes(),
            ));

            // Batch ladder per platform: monotone throughput within a
            // memory level, consistent OOM wall.
            let base = scenario.inference_workload();
            for platform in PLATFORMS {
                let probe = platform_probe(platform, &base);
                let mut rungs: Vec<u64> = Vec::new();
                let mut b = 1;
                while b < probe.max_batch && rungs.len() < 20 {
                    rungs.push(b);
                    b *= 2;
                }
                if probe.max_batch >= 1 {
                    rungs.push(probe.max_batch);
                }
                // A wall at PROBE_LIMIT is the search cap, not a real
                // wall — only cross the edge when the wall is genuine.
                let capped = probe.max_batch >= PROBE_LIMIT;
                if !capped {
                    rungs.push(probe.max_batch + 1);
                }
                rungs.dedup();
                let mut ladder: Vec<LadderPoint> = rungs
                    .iter()
                    .map(|&batch| {
                        let point = base.with_batch_size(batch).ok().and_then(|w| {
                            let m = super::infer::platform_model(platform, &w);
                            profile_inference(&m, &w).ok().map(|r| (w, r))
                        });
                        match point {
                            Some((_, r)) => LadderPoint {
                                batch,
                                level: Some(r.memory.name),
                                tokens_per_s: Some(r.e2e_tokens_per_s),
                            },
                            None => LadderPoint {
                                batch,
                                level: None,
                                tokens_per_s: None,
                            },
                        }
                    })
                    .collect();
                if ck.take_injection(Invariant::BatchMonotone) {
                    // Halve the second fitting rung of a same-level pair.
                    for k in 1..ladder.len() {
                        if ladder[k].tokens_per_s.is_some()
                            && ladder[k].level == ladder[k - 1].level
                            && ladder[k - 1].tokens_per_s.is_some()
                        {
                            ladder[k].tokens_per_s = ladder[k - 1].tokens_per_s.map(|t| t / 2.0);
                            break;
                        }
                    }
                }
                let mut wall_violation: Option<Violation> = None;
                if ck.take_injection(Invariant::OomWallConsistent) {
                    // Fabricate a fit-after-OOM pair: a rung that fails
                    // admission followed by a larger one that "fits".
                    // (A lone fitting rung would read as a monotonicity
                    // drop on ladders whose wall sits past PROBE_LIMIT.)
                    ladder.push(LadderPoint {
                        batch: probe.max_batch.saturating_add(2),
                        level: None,
                        tokens_per_s: None,
                    });
                    ladder.push(LadderPoint {
                        batch: probe.max_batch.saturating_add(3),
                        level: Some(probe.kv_level.clone()),
                        tokens_per_s: Some(1.0),
                    });
                } else if !capped && probe.max_batch >= 1 {
                    // The probed wall must itself be exact: max_batch
                    // fits, max_batch + 1 does not.
                    let at_wall = ladder.iter().find(|p| p.batch == probe.max_batch);
                    let over_wall = ladder.iter().find(|p| p.batch == probe.max_batch + 1);
                    if let (Some(a), Some(o)) = (at_wall, over_wall) {
                        if a.tokens_per_s.is_none() {
                            wall_violation = Some(Violation {
                                invariant: Invariant::OomWallConsistent,
                                scenario: label.clone(),
                                platform: platform.to_owned(),
                                detail: format!(
                                    "probed wall B={} does not actually fit",
                                    probe.max_batch
                                ),
                            });
                        } else if o.tokens_per_s.is_some() {
                            wall_violation = Some(Violation {
                                invariant: Invariant::OomWallConsistent,
                                scenario: label.clone(),
                                platform: platform.to_owned(),
                                detail: format!(
                                    "B={} fits although the probe called B={} the wall",
                                    probe.max_batch + 1,
                                    probe.max_batch
                                ),
                            });
                        }
                    }
                }
                ck.count(Invariant::BatchMonotone);
                ck.count(Invariant::OomWallConsistent);
                for v in check_batch_ladder(platform, &label, &ladder) {
                    ck.violations.push(v);
                }
                ck.push(wall_violation);
            }
        }
    }
}

/// Check the invariant catalog over a population of journaled records.
///
/// `records` maps scenario index → record text, in index order. `inject`
/// carries a `gen=violate:<invariant>` clause from `DABENCH_INJECT`: the
/// first eligible observation is perturbed so the named invariant fails
/// loudly — proof the checker is alive. If the population offers no
/// eligible observation (e.g. `fault_monotone` on an all-healthy baby
/// tier), a synthetic counterexample is fed through the same checker.
#[must_use]
pub fn check_population(
    tier: Tier,
    seed: u64,
    records: &[(u64, String)],
    inject: Option<Invariant>,
) -> CheckOutcome {
    let mut ck = Checker::new(inject);
    for (index, record) in records {
        let scenario = sample(tier, seed, *index);
        let Some((label, obs)) = parse_record(record) else {
            ck.violations.push(Violation {
                invariant: Invariant::SeedDeterminism,
                scenario: format_label(tier, seed, *index),
                platform: "-".to_owned(),
                detail: "journaled record is not a parsable gen-v1 block".to_owned(),
            });
            continue;
        };
        if label != scenario.label() {
            ck.violations.push(Violation {
                invariant: Invariant::SeedDeterminism,
                scenario: scenario.label(),
                platform: "-".to_owned(),
                detail: format!("journaled record carries label `{label}`"),
            });
            continue;
        }
        check_scenario(&mut ck, &scenario, &obs);
        // Determinism: re-derive the whole record from the label alone
        // and compare byte-for-byte. Sampled (every DETERMINISM_STRIDE-th
        // index) because it doubles the scenario's evaluation cost.
        if index % DETERMINISM_STRIDE == 0 {
            ck.count(Invariant::SeedDeterminism);
            let mut fresh = render_scenario(tier, seed, *index);
            if ck.take_injection(Invariant::SeedDeterminism) {
                fresh.push('#');
            }
            ck.push(check_determinism(&scenario.label(), record, &fresh));
        }
    }
    // A requested injection that found no eligible observation still must
    // prove the checker fires: feed a synthetic counterexample through
    // the same comparator.
    if let Some(inv) = ck.inject.take() {
        ck.count(inv);
        let label = "gen:injected";
        match inv {
            Invariant::FaultMonotone => {
                ck.push(check_fault_monotone("injected", label, 1.0, 2.0));
            }
            Invariant::Fp8KvSmaller => ck.push(check_fp8_kv(label, 100, 100, 1, 1)),
            Invariant::BatchMonotone | Invariant::OomWallConsistent => {
                let lvl = Some("injected".to_owned());
                let ladder = [
                    LadderPoint {
                        batch: 1,
                        level: lvl.clone(),
                        tokens_per_s: Some(10.0),
                    },
                    LadderPoint {
                        batch: 2,
                        level: None,
                        tokens_per_s: None,
                    },
                    LadderPoint {
                        batch: 4,
                        level: lvl,
                        tokens_per_s: Some(5.0),
                    },
                ];
                for v in check_batch_ladder("injected", label, &ladder) {
                    ck.violations.push(v);
                }
            }
            Invariant::SeedDeterminism => ck.push(check_determinism(label, "a", "b")),
        }
    }
    CheckOutcome {
        checked: Invariant::ALL
            .iter()
            .enumerate()
            .map(|(i, inv)| (*inv, ck.counts[i]))
            .collect(),
        violations: ck.violations,
    }
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// Render the tier catalog (`dabench gen --list-tiers`).
#[must_use]
pub fn render_tiers() -> Table {
    let mut t = Table::new("Scenario difficulty tiers");
    t.set_headers(["Tier", "Rank", "Description"]);
    for tier in Tier::ALL {
        t.add_row(vec![
            tier.as_str().to_owned(),
            tier.rank().to_string(),
            tier.describe().to_owned(),
        ]);
    }
    t
}

/// Render the sampled population table.
#[must_use]
pub fn render_population(tier: Tier, seed: u64, scenarios: &[Scenario]) -> Table {
    let mut t = Table::new(format!(
        "Generated population (tier={}, seed={seed}, count={})",
        tier.as_str(),
        scenarios.len()
    ));
    t.set_headers([
        "Idx", "Kind", "Family", "Hidden", "Layers", "KVh", "B", "Seq", "Dec", "Prec", "KV", "Par",
        "Dead", "Link", "Stalls", "Drop", "Edge",
    ]);
    for s in scenarios {
        t.add_row(vec![
            s.index.to_string(),
            s.kind.as_str().to_owned(),
            s.family.as_str().to_owned(),
            s.hidden.to_string(),
            s.layers.to_string(),
            s.kv_heads.to_string(),
            s.batch.to_string(),
            s.seq.to_string(),
            s.decode.to_string(),
            s.precision.as_str().to_owned(),
            s.kv_precision.as_str().to_owned(),
            s.parallelism.to_string(),
            format!("{:.3}", s.faults.dead_fraction),
            format!("{:.3}", s.faults.link_retained),
            s.faults.transient_stalls.to_string(),
            s.faults.dropped_devices.to_string(),
            s.memory_edge.as_str().to_owned(),
        ]);
    }
    t
}

fn obs_cell(obs: &[GenObs], platform: &str) -> String {
    let Some(o) = obs.iter().find(|o| o.platform == platform) else {
        return "?".to_owned();
    };
    match o.tokens_per_s {
        Some(t) => format!("{t:.3e}"),
        None if o.note.contains("out of memory") || o.note.contains("edge-over") => {
            "OOM".to_owned()
        }
        None => "Fail".to_owned(),
    }
}

/// Render the per-scenario results matrix (tokens/s per platform).
#[must_use]
pub fn render_results(records: &[(Scenario, Vec<GenObs>)]) -> Table {
    let mut t = Table::new("Generated results (tokens/s; OOM = admission refused)");
    t.set_headers(["Idx", "Kind", "Edge", "wse", "rdu", "ipu", "gpu"]);
    for (s, obs) in records {
        let mut cells = vec![
            s.index.to_string(),
            s.kind.as_str().to_owned(),
            s.memory_edge.as_str().to_owned(),
        ];
        for p in PLATFORMS {
            cells.push(obs_cell(obs, p));
        }
        t.add_row(cells);
    }
    t
}

/// Render the ranking report.
#[must_use]
pub fn render_ranking(tier: Tier, rows: &[RankRow]) -> Table {
    let mut t = Table::new(format!(
        "Platform ranking (tier={}): pairwise Elo + Pareto throughput/robustness",
        tier.as_str()
    ));
    t.set_headers([
        "Platform", "Elo", "W", "L", "D", "Robust", "NormTput", "Pareto",
    ]);
    for r in rows {
        t.add_row(vec![
            r.platform.clone(),
            format!("{:.0}", r.elo),
            r.wins.to_string(),
            r.losses.to_string(),
            r.draws.to_string(),
            format!("{:.0}%", 100.0 * r.robustness),
            format!("{:.3}", r.norm_throughput),
            if r.pareto { "yes" } else { "no" }.to_owned(),
        ]);
    }
    t
}

/// Render the invariant-check summary.
#[must_use]
pub fn render_invariants(outcome: &CheckOutcome) -> Table {
    let mut t = Table::new("Metamorphic invariants");
    t.set_headers(["Invariant", "Description", "Checked", "Violations"]);
    for (inv, checked) in &outcome.checked {
        let violations = outcome
            .violations
            .iter()
            .filter(|v| v.invariant == *inv)
            .count();
        t.add_row(vec![
            inv.name().to_owned(),
            inv.describe().to_owned(),
            checked.to_string(),
            violations.to_string(),
        ]);
    }
    t
}

/// Evaluate the default population inline and render every table — the
/// suite entry behind `dabench csv gen` and the serve `gen` job.
#[must_use]
pub fn default_tables() -> Vec<Table> {
    let (tier, seed, count) = (DEFAULT_TIER, DEFAULT_SEED, DEFAULT_COUNT);
    let scenarios = dabench_core::gen::population(tier, seed, count);
    let rendered: Vec<(u64, String)> = scenarios
        .iter()
        .map(|s| (s.index, render_record(s, &evaluate(s))))
        .collect();
    let parsed: Vec<(Scenario, Vec<GenObs>)> = rendered
        .iter()
        .map(|(index, record)| {
            let (_, obs) = parse_record(record).expect("freshly rendered record parses");
            (sample(tier, seed, *index), obs)
        })
        .collect();
    let outcome = check_population(tier, seed, &rendered, None);
    vec![
        render_population(tier, seed, &scenarios),
        render_results(&parsed),
        render_ranking(tier, &ranking(&parsed)),
        render_invariants(&outcome),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_and_parse_round_trip() {
        let s = sample(Tier::Baby, 42, 0);
        let obs = evaluate(&s);
        assert_eq!(obs.len(), PLATFORMS.len());
        let record = render_record(&s, &obs);
        let (label, parsed) = parse_record(&record).expect("parses");
        assert_eq!(label, s.label());
        assert_eq!(parsed.len(), obs.len());
        for (a, b) in parsed.iter().zip(&obs) {
            assert_eq!(a.platform, b.platform);
            assert_eq!(a.batch, b.batch);
            assert_eq!(a.tokens_per_s.is_some(), b.tokens_per_s.is_some());
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        for i in 0..4 {
            assert_eq!(
                render_scenario(Tier::Baby, 7, i),
                render_scenario(Tier::Baby, 7, i)
            );
        }
    }

    #[test]
    fn baby_population_passes_every_invariant() {
        let records: Vec<(u64, String)> = (0..DEFAULT_COUNT)
            .map(|i| (i, render_scenario(DEFAULT_TIER, DEFAULT_SEED, i)))
            .collect();
        let outcome = check_population(DEFAULT_TIER, DEFAULT_SEED, &records, None);
        assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
        // Every invariant actually ran at least once on this population
        // except fault monotonicity (baby is faultless by design).
        for (inv, checked) in &outcome.checked {
            if *inv != Invariant::FaultMonotone {
                assert!(*checked > 0, "{inv} never checked");
            }
        }
    }

    #[test]
    fn injection_fails_loudly_for_every_invariant() {
        let records: Vec<(u64, String)> = (0..2)
            .map(|i| (i, render_scenario(Tier::Baby, 42, i)))
            .collect();
        for inv in Invariant::ALL {
            let outcome = check_population(Tier::Baby, 42, &records, Some(inv));
            assert!(
                outcome.violations.iter().any(|v| v.invariant == inv),
                "{inv}: injection did not surface"
            );
        }
    }

    #[test]
    fn ranking_is_complete_and_orders_by_throughput() {
        let records: Vec<(Scenario, Vec<GenObs>)> = (0..DEFAULT_COUNT)
            .map(|i| {
                let s = sample(DEFAULT_TIER, DEFAULT_SEED, i);
                let obs = evaluate(&s);
                (s, obs)
            })
            .collect();
        let rows = ranking(&records);
        assert_eq!(rows.len(), PLATFORMS.len());
        assert!(rows.iter().any(|r| r.pareto), "frontier is never empty");
        // Baby workloads fit everywhere: full robustness all around.
        for r in &rows {
            assert!((r.robustness - 1.0).abs() < 1e-12, "{}", r.platform);
            assert!(r.norm_throughput > 0.0 && r.norm_throughput <= 1.0);
        }
        // Wins + losses + draws must balance across the population.
        let wins: u64 = rows.iter().map(|r| r.wins).sum();
        let losses: u64 = rows.iter().map(|r| r.losses).sum();
        assert_eq!(wins, losses);
    }

    #[test]
    fn default_tables_cover_all_four_reports() {
        let tables = default_tables();
        assert_eq!(tables.len(), 4);
        let text: String = tables.iter().map(ToString::to_string).collect();
        assert!(text.contains("Generated population"));
        assert!(text.contains("Platform ranking"));
        assert!(text.contains("Metamorphic invariants"));
    }

    #[test]
    fn fault_monotone_twin_is_quantized_to_the_record_grid() {
        // The faulted observation round-trips through the record's {:.6e}
        // wire format; the healthy twin is a live f64. If the recorded
        // value rounded UP, a genuinely-equal pair would read as a
        // violation unless the twin is pushed onto the same grid first
        // (tier easy, seed 1, index 103 on wse found this at count 200).
        let healthy = 123_456.78; // formats to 1.234568e5 — rounds up
        let faulted: f64 = fmt_opt_f64(Some(healthy)).parse().expect("parses");
        assert!(faulted > healthy, "precondition: record rounded up");
        assert!(
            dabench_core::gen::check_fault_monotone("wse", "s", healthy, faulted).is_some(),
            "unquantized twin must reproduce the false positive"
        );
        assert!(
            dabench_core::gen::check_fault_monotone("wse", "s", quantize_tps(healthy), faulted)
                .is_none(),
            "quantized twin must not flag an equal pair"
        );
    }
}
