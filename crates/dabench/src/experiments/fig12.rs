//! Fig. 12: throughput vs batch size on each platform.

use crate::render::{num_or_fail, Table};
use dabench_core::tier2;
use dabench_core::{batch_saturation_point, BatchPoint, Platform};
use dabench_ipu::Ipu;
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::Wse;
use serde::{Deserialize, Serialize};

/// Batch-size series of one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Series {
    /// Platform name.
    pub platform: String,
    /// Sweep points.
    pub points: Vec<BatchPoint>,
}

impl Fig12Series {
    /// The smallest batch reaching `fraction` of the best throughput.
    #[must_use]
    pub fn saturation_batch(&self, fraction: f64) -> Option<u64> {
        batch_saturation_point(&self.points, fraction)
    }
}

/// WSE batch sweep (the paper's series crosses the ~200 knee).
pub const WSE_BATCHES: [u64; 7] = [25, 50, 100, 200, 300, 400, 800];
/// RDU batch sweep.
pub const RDU_BATCHES: [u64; 6] = [1, 2, 4, 8, 16, 32];
/// IPU batch sweep.
pub const IPU_BATCHES: [u64; 6] = [1, 2, 4, 8, 16, 32];

fn sweep(platform: &dyn Platform, base: &TrainingWorkload, batches: &[u64]) -> Fig12Series {
    Fig12Series {
        platform: platform.name().to_owned(),
        points: tier2::batch_sweep(platform, base, batches),
    }
}

/// Reproduce Fig. 12 on all three platforms.
#[must_use]
pub fn run() -> Vec<Fig12Series> {
    let wse_base =
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 256, 1024, Precision::Fp16);
    let rdu_base =
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 8, 1024, Precision::Fp16);
    let ipu_base = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 8, 1024, Precision::Fp16);
    vec![
        sweep(&Wse::default(), &wse_base, &WSE_BATCHES),
        sweep(
            &Rdu::with_mode(CompilationMode::O3),
            &rdu_base,
            &RDU_BATCHES,
        ),
        sweep(&Ipu::default(), &ipu_base, &IPU_BATCHES),
    ]
}

/// Render all series.
#[must_use]
pub fn render(series: &[Fig12Series]) -> Table {
    let mut t = Table::new("Fig. 12: throughput (tokens/s) vs batch size");
    t.set_headers(["Platform", "Batch", "Tokens/s"]);
    for s in series {
        for p in &s.points {
            t.add_row([
                s.platform.clone(),
                p.batch_size.to_string(),
                num_or_fail(p.throughput_tokens_per_s, 0),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str) -> Fig12Series {
        run()
            .into_iter()
            .find(|s| s.platform.contains(name))
            .unwrap()
    }

    #[test]
    fn wse_saturates_near_200() {
        let wse = series("wse");
        let knee = wse.saturation_batch(0.85).unwrap();
        assert!((100..=300).contains(&knee), "{knee}");
        // Beyond 200 the gains are marginal.
        let at = |b: u64| {
            wse.points
                .iter()
                .find(|p| p.batch_size == b)
                .unwrap()
                .throughput_tokens_per_s
                .unwrap()
        };
        assert!(at(400) / at(200) < 1.15);
        assert!(at(200) / at(50) > 1.3);
    }

    #[test]
    fn rdu_and_ipu_keep_gaining() {
        for name in ["sn30", "ipu"] {
            let s = series(name);
            let first = s.points.first().unwrap().throughput_tokens_per_s.unwrap();
            let last = s.points.last().unwrap().throughput_tokens_per_s.unwrap();
            assert!(last / first > 1.8, "{name}: {first} → {last}");
            // Monotone increasing throughout the plotted range.
            let vals: Vec<f64> = s
                .points
                .iter()
                .filter_map(|p| p.throughput_tokens_per_s)
                .collect();
            assert!(vals.windows(2).all(|w| w[1] >= w[0]), "{name}: {vals:?}");
        }
    }

    #[test]
    fn render_lists_all_platforms() {
        let s = render(&run()).to_string();
        assert!(s.contains("cerebras"));
        assert!(s.contains("sn30"));
        assert!(s.contains("ipu"));
    }
}
