//! Fig. 9: memory-utilization and compute-performance interaction on all
//! three chips.

use super::workloads::{
    ipu_probe, rdu_o1_probe, rdu_probe, wse_probe, IPU_LAYER_SWEEP, RDU_HS_SWEEP, RDU_LAYER_SWEEP,
    RDU_O1_HS_SWEEP,
};
use crate::render::{num_or_fail, Table};
use dabench_core::{par_map, tier1_cached, with_point_label};
use dabench_ipu::Ipu;
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::{compile, execute, Wse};
use serde::{Deserialize, Serialize};

/// One point of Fig. 9(a): WSE memory breakdown and compute utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WseMemoryRow {
    /// Decoder layer count.
    pub layers: u64,
    /// Configuration-memory share of total SRAM.
    pub config_fraction: f64,
    /// Training-memory share of total SRAM.
    pub training_fraction: f64,
    /// Combined share.
    pub total_fraction: f64,
    /// Fraction of runtime spent computing.
    pub compute_fraction: f64,
    /// Achieved TFLOP/s.
    pub tflops: f64,
}

/// One point of Fig. 9(b)/(c): RDU TFLOPs per mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RduTflopsRow {
    /// Compilation mode.
    pub mode: String,
    /// Swept parameter (layers or hidden size).
    pub x: u64,
    /// Achieved TFLOP/s.
    pub tflops: f64,
}

/// One point of Fig. 9(d): IPU memory and TFLOPs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpuRow {
    /// Decoder layer count.
    pub layers: u64,
    /// SRAM utilization, `None` when execution fails (OOM).
    pub memory_utilization: Option<f64>,
    /// Achieved TFLOP/s, `None` on failure.
    pub tflops: Option<f64>,
}

/// Fig. 9(a): WSE memory/compute vs layers.
#[must_use]
pub fn run_wse() -> Vec<WseMemoryRow> {
    let wse = Wse::default();
    par_map(&[6u64, 12, 18, 24, 36, 48, 60, 72], |&layers| {
        with_point_label(&format!("fig9 wse L={layers}"), || {
            let w = wse_probe(layers);
            let c =
                compile(wse.wse_spec(), wse.compiler_params(), &w, None).expect("range compiles");
            let e = execute(wse.wse_spec(), wse.compiler_params(), &c, &w);
            WseMemoryRow {
                layers,
                config_fraction: c.memory.config_fraction(),
                training_fraction: c.memory.training_fraction(),
                total_fraction: c.memory.total_fraction(),
                compute_fraction: e.compute_time_fraction,
                tflops: e.achieved_tflops,
            }
        })
    })
}

/// Fig. 9(b): RDU TFLOPs vs layers (all modes, HS fixed).
#[must_use]
pub fn run_rdu_layers() -> Vec<RduTflopsRow> {
    let specs: Vec<_> = RDU_LAYER_SWEEP
        .iter()
        .flat_map(|&l| {
            [
                (CompilationMode::O0, l, rdu_probe(768, l)),
                (CompilationMode::O1, l, rdu_o1_probe(4096, l)),
                (CompilationMode::O3, l, rdu_probe(768, l)),
            ]
        })
        .collect();
    rdu_points(&specs)
}

/// Profile `(mode, x, workload)` points in parallel, rows in input order.
fn rdu_points(
    specs: &[(CompilationMode, u64, dabench_model::TrainingWorkload)],
) -> Vec<RduTflopsRow> {
    par_map(specs, |(mode, x, w)| {
        with_point_label(&format!("fig9 rdu-{mode} x={x}"), || {
            let r = tier1_cached(&Rdu::with_mode(*mode), w).expect("probe profiles");
            RduTflopsRow {
                mode: mode.to_string(),
                x: *x,
                tflops: r.achieved_tflops,
            }
        })
    })
}

/// Fig. 9(c): RDU TFLOPs vs hidden size.
#[must_use]
pub fn run_rdu_hidden() -> Vec<RduTflopsRow> {
    let mut specs: Vec<_> = RDU_HS_SWEEP
        .iter()
        .flat_map(|&hs| {
            [
                (CompilationMode::O0, hs, rdu_probe(hs, 12)),
                (CompilationMode::O3, hs, rdu_probe(hs, 12)),
            ]
        })
        .collect();
    specs.extend(
        RDU_O1_HS_SWEEP
            .iter()
            .map(|&hs| (CompilationMode::O1, hs, rdu_o1_probe(hs, 4))),
    );
    rdu_points(&specs)
}

/// Fig. 9(d): IPU memory + TFLOPs vs layers, with the OOM at 10.
#[must_use]
pub fn run_ipu() -> Vec<IpuRow> {
    let ipu = Ipu::default();
    par_map(&IPU_LAYER_SWEEP, |&layers| {
        with_point_label(&format!("fig9 ipu L={layers}"), || {
            match tier1_cached(&ipu, &ipu_probe(layers)) {
                Ok(r) => IpuRow {
                    layers,
                    memory_utilization: r.memory_utilization_of("tile-sram"),
                    tflops: Some(r.achieved_tflops),
                },
                Err(_) => IpuRow {
                    layers,
                    memory_utilization: None,
                    tflops: None,
                },
            }
        })
    })
}

/// Render all four panels.
#[must_use]
pub fn render(
    wse: &[WseMemoryRow],
    rdu_layers: &[RduTflopsRow],
    rdu_hidden: &[RduTflopsRow],
    ipu: &[IpuRow],
) -> Vec<Table> {
    let mut a = Table::new("Fig. 9(a): WSE memory breakdown and compute utilization");
    a.set_headers([
        "Layers",
        "Config%",
        "Training%",
        "Total%",
        "Compute util",
        "TFLOPs",
    ]);
    for r in wse {
        a.add_row([
            r.layers.to_string(),
            format!("{:.1}", 100.0 * r.config_fraction),
            format!("{:.1}", 100.0 * r.training_fraction),
            format!("{:.1}", 100.0 * r.total_fraction),
            format!("{:.2}", r.compute_fraction),
            format!("{:.1}", r.tflops),
        ]);
    }
    let mk = |title: &str, rows: &[RduTflopsRow]| {
        let mut t = Table::new(title);
        t.set_headers(["Mode", "x", "TFLOPs"]);
        for r in rows {
            t.add_row([r.mode.clone(), r.x.to_string(), format!("{:.2}", r.tflops)]);
        }
        t
    };
    let b = mk("Fig. 9(b): RDU TFLOPs vs layers", rdu_layers);
    let c = mk("Fig. 9(c): RDU TFLOPs vs hidden size", rdu_hidden);
    let mut d = Table::new("Fig. 9(d): IPU memory and TFLOPs vs layers");
    d.set_headers(["Layers", "Memory util", "TFLOPs"]);
    for r in ipu {
        d.add_row([
            r.layers.to_string(),
            num_or_fail(r.memory_utilization, 3),
            num_or_fail(r.tflops, 1),
        ]);
    }
    vec![a, b, c, d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wse_config_memory_explodes_past_36() {
        let rows = run_wse();
        let get = |l: u64| rows.iter().find(|r| r.layers == l).unwrap();
        let early_growth = get(36).config_fraction - get(12).config_fraction;
        let late_growth = get(72).config_fraction - get(36).config_fraction;
        assert!(late_growth > early_growth);
        // TFLOPs peak in the middle, decline at depth.
        assert!(get(24).tflops > get(6).tflops);
        assert!(get(24).tflops > get(72).tflops);
    }

    #[test]
    fn rdu_o0_severely_limited() {
        let rows = run_rdu_layers();
        for &l in &RDU_LAYER_SWEEP {
            let get = |m: &str| {
                rows.iter()
                    .find(|r| r.mode == m && r.x == l)
                    .unwrap()
                    .tflops
            };
            assert!(get("o0") < 0.5 * get("o3"), "L={l}");
        }
    }

    #[test]
    fn rdu_tflops_rise_with_hidden_size() {
        let rows = run_rdu_hidden();
        let o3: Vec<f64> = rows
            .iter()
            .filter(|r| r.mode == "o3")
            .map(|r| r.tflops)
            .collect();
        assert!(o3.last().unwrap() > o3.first().unwrap());
        // Paper band: 35-50 TFLOPs at the top of the sweep.
        assert!((25.0..60.0).contains(o3.last().unwrap()), "{:?}", o3);
    }

    #[test]
    fn ipu_fails_at_ten_layers() {
        let rows = run_ipu();
        let last = rows.last().unwrap();
        assert_eq!(last.layers, 10);
        assert!(last.tflops.is_none());
        // Memory grows monotonically until then.
        let mems: Vec<f64> = rows.iter().filter_map(|r| r.memory_utilization).collect();
        assert!(mems.windows(2).all(|w| w[1] > w[0]), "{mems:?}");
    }

    #[test]
    fn render_produces_four_panels() {
        let tables = render(&run_wse(), &run_rdu_layers(), &run_rdu_hidden(), &run_ipu());
        assert_eq!(tables.len(), 4);
    }
}
