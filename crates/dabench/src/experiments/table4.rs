//! Table IV: mixed-precision throughput across platforms.

use crate::render::{num_or_fail, Table};
use dabench_core::Platform;
use dabench_ipu::Ipu;
use dabench_model::{ModelConfig, Precision, TrainingWorkload};
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::Wse;
use serde::{Deserialize, Serialize};

/// One cell of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Device family.
    pub device: String,
    /// Precision configuration label (the paper's column names).
    pub configuration: String,
    /// Throughput, tokens/second (`None` on failure).
    pub throughput: Option<f64>,
}

fn throughput(platform: &dyn Platform, w: &TrainingWorkload) -> Option<f64> {
    platform.profile(w).ok().map(|p| p.throughput_tokens_per_s)
}

/// Reproduce Table IV.
///
/// Per platform the two paper configurations are mapped to our precision
/// model: IPU Full=FP32 / Mixed=FP16, WSE FP16 / CB16, RDU BF16 (vendor
/// default flow) / Mixed (tuned 16-bit flow, `Precision::Fp16`).
#[must_use]
pub fn run() -> Vec<Table4Row> {
    let mut rows = Vec::new();

    let ipu = Ipu::default();
    // Six layers: the FP32 ("Full") configuration still fits in SRAM.
    let ipu_base =
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 64, 1024, Precision::Fp32);
    rows.push(Table4Row {
        device: "IPU".to_owned(),
        configuration: "Full".to_owned(),
        throughput: throughput(&ipu, &ipu_base),
    });
    rows.push(Table4Row {
        device: "IPU".to_owned(),
        configuration: "Mixed".to_owned(),
        throughput: throughput(&ipu, &ipu_base.with_precision(Precision::Fp16)),
    });

    let wse = Wse::default();
    let wse_base =
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 12), 256, 1024, Precision::Fp16);
    rows.push(Table4Row {
        device: "WSE".to_owned(),
        configuration: "FP16".to_owned(),
        throughput: throughput(&wse, &wse_base),
    });
    rows.push(Table4Row {
        device: "WSE".to_owned(),
        configuration: "CB16".to_owned(),
        throughput: throughput(&wse, &wse_base.with_precision(Precision::Cb16)),
    });

    let rdu = Rdu::with_mode(CompilationMode::O1);
    let rdu_base = TrainingWorkload::new(ModelConfig::llama2_7b(), 8, 4096, Precision::Bf16);
    rows.push(Table4Row {
        device: "RDU (7B)".to_owned(),
        configuration: "BF16".to_owned(),
        throughput: throughput(&rdu, &rdu_base),
    });
    rows.push(Table4Row {
        device: "RDU (7B)".to_owned(),
        configuration: "Mixed".to_owned(),
        throughput: throughput(&rdu, &rdu_base.with_precision(Precision::Fp16)),
    });

    rows
}

/// Render the table.
#[must_use]
pub fn render(rows: &[Table4Row]) -> Table {
    let mut t = Table::new("Table IV: mixed-precision throughput across platforms (tokens/s)");
    t.set_headers(["Device", "Configuration", "Throughput"]);
    for r in rows {
        t.add_row([
            r.device.clone(),
            r.configuration.clone(),
            num_or_fail(r.throughput, 0),
        ]);
    }
    t
}

/// Relative gain of the second configuration over the first for a device.
#[must_use]
pub fn gain(rows: &[Table4Row], device: &str) -> Option<f64> {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.device == device)
        .filter_map(|r| r.throughput)
        .collect();
    (vals.len() == 2 && vals[0] > 0.0).then(|| vals[1] / vals[0] - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_match_paper_ordering() {
        // Paper: RDU +34.3% > IPU +22.0% > WSE +10.7%.
        let rows = run();
        let rdu = gain(&rows, "RDU (7B)").unwrap();
        let ipu = gain(&rows, "IPU").unwrap();
        let wse = gain(&rows, "WSE").unwrap();
        assert!(rdu > ipu, "rdu {rdu} vs ipu {ipu}");
        assert!(ipu > wse, "ipu {ipu} vs wse {wse}");
        assert!((0.15..0.55).contains(&rdu), "{rdu}");
        assert!((0.10..0.35).contains(&ipu), "{ipu}");
        assert!((0.05..0.18).contains(&wse), "{wse}");
    }

    #[test]
    fn all_cells_populated() {
        let rows = run();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.throughput.is_some()));
    }

    #[test]
    fn render_shows_configurations() {
        let s = render(&run()).to_string();
        assert!(s.contains("CB16"));
        assert!(s.contains("BF16"));
        assert!(s.contains("Mixed"));
    }
}
