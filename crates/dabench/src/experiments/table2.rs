//! Table II: O3 layer partitioning (a) and O1 LM-head sharding (b).

use super::workloads::{rdu_o1_probe, rdu_probe, RDU_HS_SWEEP, RDU_O1_HS_SWEEP};
use crate::render::Table;
use dabench_rdu::{o3_ratios, partition, shard_lm_head, CompilationMode, Rdu};
use serde::{Deserialize, Serialize};

/// One row of Table II(a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct O3PartitionRow {
    /// Hidden size.
    pub hidden_size: u64,
    /// Weighted PCU allocation of the forward decoder sections (`0..=1`).
    pub forward_alloc: f64,
    /// Forward sections per decoder.
    pub forward_ratio: f64,
    /// Weighted PCU allocation of the backward decoder sections.
    pub backward_alloc: f64,
    /// Backward sections per decoder.
    pub backward_ratio: f64,
}

/// One row of Table II(b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRow {
    /// Hidden size.
    pub hidden_size: u64,
    /// Shard count.
    pub shards: u64,
    /// Section count.
    pub sections: u64,
    /// PMUs per shard section.
    pub pmus: u64,
    /// PCUs per shard section.
    pub pcus: u64,
}

/// Reproduce Table II(a): O3 forward/backward partitioning vs hidden size.
#[must_use]
pub fn run_o3() -> Vec<O3PartitionRow> {
    let rdu = Rdu::with_mode(CompilationMode::O3);
    RDU_HS_SWEEP
        .iter()
        .map(|&hs| {
            let w = rdu_probe(hs, 12);
            let (fwd_ratio, bwd_ratio) = o3_ratios(&w, rdu.compiler_params());
            let sections = partition(
                &w,
                rdu.rdu_spec(),
                rdu.compiler_params(),
                CompilationMode::O3,
            );
            let alloc = |prefix: &str| -> f64 {
                let selected: Vec<&dabench_rdu::Section> = sections
                    .iter()
                    .filter(|s| s.name.starts_with(prefix))
                    .collect();
                let total: u64 = selected.iter().map(|s| s.pcus).sum();
                total as f64 / (selected.len().max(1) as f64 * 640.0)
            };
            O3PartitionRow {
                hidden_size: hs,
                forward_alloc: alloc("o3.decoders.fwd"),
                forward_ratio: fwd_ratio,
                backward_alloc: alloc("o3.decoders.bwd"),
                backward_ratio: bwd_ratio,
            }
        })
        .collect()
}

/// Reproduce Table II(b): O1 LM-head shard information vs hidden size.
#[must_use]
pub fn run_shards() -> Vec<ShardRow> {
    let rdu = Rdu::with_mode(CompilationMode::O1);
    RDU_O1_HS_SWEEP
        .iter()
        .map(|&hs| {
            let w = rdu_o1_probe(hs, 4);
            let plan = shard_lm_head(
                hs,
                w.model().vocab_size,
                w.precision().bytes_per_element(),
                rdu.compiler_params(),
            );
            ShardRow {
                hidden_size: hs,
                shards: plan.shards,
                sections: plan.sections,
                pmus: plan.pmus_per_section,
                pcus: plan.pcus_per_section,
            }
        })
        .collect()
}

/// Render both halves of Table II.
#[must_use]
pub fn render(o3: &[O3PartitionRow], shards: &[ShardRow]) -> (Table, Table) {
    let mut a = Table::new("Table II(a): O3 forward/backward partitioning");
    a.set_headers(["HS", "Forward/%", "Ratio", "Backward/%", "Ratio"]);
    for r in o3 {
        a.add_row([
            r.hidden_size.to_string(),
            format!("{:.0}%", 100.0 * r.forward_alloc),
            format!("{:.2}", r.forward_ratio),
            format!("{:.0}%", 100.0 * r.backward_alloc),
            format!("{:.2}", r.backward_ratio),
        ]);
    }
    let mut b = Table::new("Table II(b): O1 LM-head shard info");
    b.set_headers(["HS", "Shard", "Section", "PMU", "PCU"]);
    for r in shards {
        b.add_row([
            r.hidden_size.to_string(),
            r.shards.to_string(),
            r.sections.to_string(),
            r.pmus.to_string(),
            r.pcus.to_string(),
        ]);
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o3_ratios_match_table_shape() {
        let rows = run_o3();
        // Forward ratios 2/3 → 1 as HS grows; backward ≥ 11/6.
        assert!((rows[0].forward_ratio - 2.0 / 3.0).abs() < 1e-9);
        assert!(rows[3].forward_ratio >= 1.0);
        for r in &rows {
            assert!(r.backward_ratio >= 11.0 / 6.0 - 1e-9, "{r:?}");
            assert!(r.backward_ratio >= r.forward_ratio);
        }
    }

    #[test]
    fn o3_allocations_in_paper_band() {
        // Paper: forward 53-64%, backward 44-60%. Our per-section claims
        // approach the 520-PCU compiler ceiling (81%) at large HS; the
        // runtime-weighted chip allocation stays below ~0.67 (Fig. 7).
        for r in run_o3() {
            assert!((0.25..0.85).contains(&r.forward_alloc), "{r:?}");
            assert!((0.25..0.85).contains(&r.backward_alloc), "{r:?}");
        }
    }

    #[test]
    fn shard_counts_jump_at_fine_threshold() {
        let rows = run_shards();
        assert_eq!(rows[0].shards, 9); // h=3072
        assert!(rows[2].shards > 2 * rows[1].shards); // 5120 ≫ 4096
        assert!(rows[4].sections >= 3); // h=8192
                                        // PCU per section stays well below the 640 limit.
        for r in &rows {
            assert!(r.pcus < 640, "{r:?}");
        }
    }

    #[test]
    fn render_produces_both_tables() {
        let (a, b) = render(&run_o3(), &run_shards());
        assert_eq!(a.row_count(), 5);
        assert_eq!(b.row_count(), 5);
    }
}
