//! Fig. 8: load imbalance of WSE-2 (kernel level) and RDU (operator level).

use super::workloads::{rdu_o1_probe, rdu_probe, wse_probe, RDU_HS_SWEEP, RDU_LAYER_SWEEP};
use crate::render::Table;
use dabench_core::{par_map, tier1_cached, with_point_label};
use dabench_model::TrainingWorkload;
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::Wse;
use serde::{Deserialize, Serialize};

/// One LI observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Series label (`"wse"`, `"rdu-o1"`, `"rdu-o3"`).
    pub series: String,
    /// Swept parameter (layers for panel a, hidden size for panel b).
    pub x: u64,
    /// Load imbalance (Eq. 3 / Eq. 4).
    pub li: f64,
}

/// One LI probe: which platform to profile and on what workload.
enum LiProbe {
    Wse(TrainingWorkload),
    Rdu(CompilationMode, TrainingWorkload),
}

fn li_of(probe: &LiProbe) -> f64 {
    match probe {
        LiProbe::Wse(w) => tier1_cached(&Wse::default(), w)
            .expect("wse probe compiles")
            .load_imbalance
            .expect("wse reports LI"),
        LiProbe::Rdu(mode, w) => tier1_cached(&Rdu::with_mode(*mode), w)
            .expect("rdu probe profiles")
            .load_imbalance
            .expect("rdu reports LI"),
    }
}

/// Profile `(series, x, probe)` points in parallel, rows in input order.
fn rows_of(specs: &[(String, u64, LiProbe)]) -> Vec<Fig8Row> {
    par_map(specs, |(series, x, probe)| {
        with_point_label(&format!("fig8 {series} x={x}"), || Fig8Row {
            series: series.clone(),
            x: *x,
            li: li_of(probe),
        })
    })
}

/// Fig. 8(a): LI vs layer count.
#[must_use]
pub fn run_layers() -> Vec<Fig8Row> {
    let mut specs: Vec<(String, u64, LiProbe)> = [6u64, 12, 24, 36, 48]
        .iter()
        .map(|&l| ("wse".to_owned(), l, LiProbe::Wse(wse_probe(l))))
        .collect();
    for &l in &RDU_LAYER_SWEEP {
        for (mode, w) in [
            (CompilationMode::O1, rdu_o1_probe(4096, l)),
            (CompilationMode::O3, rdu_probe(768, l)),
        ] {
            specs.push((format!("rdu-{mode}"), l, LiProbe::Rdu(mode, w)));
        }
    }
    rows_of(&specs)
}

/// Fig. 8(b): RDU LI vs hidden size.
#[must_use]
pub fn run_hidden_sizes() -> Vec<Fig8Row> {
    let mut specs: Vec<(String, u64, LiProbe)> = RDU_HS_SWEEP
        .iter()
        .map(|&hs| {
            (
                "rdu-o3".to_owned(),
                hs,
                LiProbe::Rdu(CompilationMode::O3, rdu_probe(hs, 12)),
            )
        })
        .collect();
    specs.extend([3072u64, 4096, 5120, 6686, 8192].iter().map(|&hs| {
        (
            "rdu-o1".to_owned(),
            hs,
            LiProbe::Rdu(CompilationMode::O1, rdu_o1_probe(hs, 4)),
        )
    }));
    rows_of(&specs)
}

/// Render one panel.
#[must_use]
pub fn render(rows: &[Fig8Row], panel: &str) -> Table {
    let mut t = Table::new(format!("Fig. 8({panel}): load imbalance (1 = balanced)"));
    t.set_headers(["Series", "x", "LI"]);
    for r in rows {
        t.add_row([r.series.clone(), r.x.to_string(), format!("{:.3}", r.li)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[Fig8Row], s: &str) -> Vec<f64> {
        rows.iter()
            .filter(|r| r.series == s)
            .map(|r| r.li)
            .collect()
    }

    #[test]
    fn wse_li_between_096_and_1() {
        let rows = run_layers();
        for li in series(&rows, "wse") {
            assert!((0.94..=1.0).contains(&li), "{li}");
        }
    }

    #[test]
    fn o1_balances_better_than_o3() {
        let rows = run_layers();
        let o1_min = series(&rows, "rdu-o1")
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let o3_max = series(&rows, "rdu-o3").into_iter().fold(0.0f64, f64::max);
        assert!(o1_min > o3_max, "o1 min {o1_min} vs o3 max {o3_max}");
    }

    #[test]
    fn o3_li_decreases_with_layers() {
        let rows = run_layers();
        let o3 = series(&rows, "rdu-o3");
        assert!(o3.first().unwrap() > o3.last().unwrap());
    }

    #[test]
    fn li_improves_with_hidden_size() {
        let rows = run_hidden_sizes();
        let o1 = series(&rows, "rdu-o1");
        let o3 = series(&rows, "rdu-o3");
        assert!(o1.last().unwrap() > o1.first().unwrap());
        assert!(o3.last().unwrap() > o3.first().unwrap());
    }

    #[test]
    fn render_has_both_rdu_series() {
        let s = render(&run_hidden_sizes(), "b").to_string();
        assert!(s.contains("rdu-o1") && s.contains("rdu-o3"));
    }
}
