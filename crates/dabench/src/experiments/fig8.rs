//! Fig. 8: load imbalance of WSE-2 (kernel level) and RDU (operator level).

use super::workloads::{rdu_o1_probe, rdu_probe, wse_probe, RDU_HS_SWEEP, RDU_LAYER_SWEEP};
use crate::render::Table;
use dabench_core::tier1;
use dabench_rdu::{CompilationMode, Rdu};
use dabench_wse::Wse;
use serde::{Deserialize, Serialize};

/// One LI observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Series label (`"wse"`, `"rdu-o1"`, `"rdu-o3"`).
    pub series: String,
    /// Swept parameter (layers for panel a, hidden size for panel b).
    pub x: u64,
    /// Load imbalance (Eq. 3 / Eq. 4).
    pub li: f64,
}

/// Fig. 8(a): LI vs layer count.
#[must_use]
pub fn run_layers() -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    let wse = Wse::default();
    for &l in &[6u64, 12, 24, 36, 48] {
        let li = tier1::run(&wse, &wse_probe(l))
            .expect("wse probe compiles")
            .load_imbalance
            .expect("wse reports LI");
        rows.push(Fig8Row {
            series: "wse".to_owned(),
            x: l,
            li,
        });
    }
    for &l in &RDU_LAYER_SWEEP {
        for (mode, w) in [
            (CompilationMode::O1, rdu_o1_probe(4096, l)),
            (CompilationMode::O3, rdu_probe(768, l)),
        ] {
            let li = tier1::run(&Rdu::with_mode(mode), &w)
                .expect("rdu probe profiles")
                .load_imbalance
                .expect("rdu reports LI");
            rows.push(Fig8Row {
                series: format!("rdu-{mode}"),
                x: l,
                li,
            });
        }
    }
    rows
}

/// Fig. 8(b): RDU LI vs hidden size.
#[must_use]
pub fn run_hidden_sizes() -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for &hs in &RDU_HS_SWEEP {
        let li = tier1::run(&Rdu::with_mode(CompilationMode::O3), &rdu_probe(hs, 12))
            .expect("o3 probe")
            .load_imbalance
            .expect("li");
        rows.push(Fig8Row {
            series: "rdu-o3".to_owned(),
            x: hs,
            li,
        });
    }
    for &hs in &[3072u64, 4096, 5120, 6686, 8192] {
        let li = tier1::run(&Rdu::with_mode(CompilationMode::O1), &rdu_o1_probe(hs, 4))
            .expect("o1 probe")
            .load_imbalance
            .expect("li");
        rows.push(Fig8Row {
            series: "rdu-o1".to_owned(),
            x: hs,
            li,
        });
    }
    rows
}

/// Render one panel.
#[must_use]
pub fn render(rows: &[Fig8Row], panel: &str) -> Table {
    let mut t = Table::new(format!("Fig. 8({panel}): load imbalance (1 = balanced)"));
    t.set_headers(["Series", "x", "LI"]);
    for r in rows {
        t.add_row([r.series.clone(), r.x.to_string(), format!("{:.3}", r.li)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[Fig8Row], s: &str) -> Vec<f64> {
        rows.iter()
            .filter(|r| r.series == s)
            .map(|r| r.li)
            .collect()
    }

    #[test]
    fn wse_li_between_096_and_1() {
        let rows = run_layers();
        for li in series(&rows, "wse") {
            assert!((0.94..=1.0).contains(&li), "{li}");
        }
    }

    #[test]
    fn o1_balances_better_than_o3() {
        let rows = run_layers();
        let o1_min = series(&rows, "rdu-o1")
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let o3_max = series(&rows, "rdu-o3").into_iter().fold(0.0f64, f64::max);
        assert!(o1_min > o3_max, "o1 min {o1_min} vs o3 max {o3_max}");
    }

    #[test]
    fn o3_li_decreases_with_layers() {
        let rows = run_layers();
        let o3 = series(&rows, "rdu-o3");
        assert!(o3.first().unwrap() > o3.last().unwrap());
    }

    #[test]
    fn li_improves_with_hidden_size() {
        let rows = run_hidden_sizes();
        let o1 = series(&rows, "rdu-o1");
        let o3 = series(&rows, "rdu-o3");
        assert!(o1.last().unwrap() > o1.first().unwrap());
        assert!(o3.last().unwrap() > o3.first().unwrap());
    }

    #[test]
    fn render_has_both_rdu_series() {
        let s = render(&run_hidden_sizes(), "b").to_string();
        assert!(s.contains("rdu-o1") && s.contains("rdu-o3"));
    }
}
