//! Fig. 7: RDU resource allocation ratio across layers and hidden sizes,
//! per compilation mode.

use super::workloads::{rdu_o1_probe, rdu_probe, RDU_HS_SWEEP, RDU_LAYER_SWEEP, RDU_O1_HS_SWEEP};
use crate::render::Table;
use dabench_core::{par_map, tier1_cached, with_point_label};
use dabench_model::TrainingWorkload;
use dabench_rdu::{CompilationMode, Rdu};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 7 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Compilation mode.
    pub mode: String,
    /// Swept parameter value (layer count or hidden size).
    pub x: u64,
    /// Runtime-weighted PCU allocation ratio (Eq. 2).
    pub pcu_allocation: f64,
    /// Runtime-weighted PMU allocation ratio (Eq. 2).
    pub pmu_allocation: f64,
}

fn point(mode: CompilationMode, x: u64, w: &TrainingWorkload) -> Fig7Row {
    with_point_label(&format!("fig7 {mode} x={x}"), || {
        let rdu = Rdu::with_mode(mode);
        let report = tier1_cached(&rdu, w).expect("probe profiles");
        Fig7Row {
            mode: mode.to_string(),
            x,
            pcu_allocation: report.allocation_of("pcu").expect("pcu tracked"),
            pmu_allocation: report.allocation_of("pmu").expect("pmu tracked"),
        }
    })
}

/// Profile a list of `(mode, x, workload)` points in parallel, rows in
/// input order.
fn points(specs: &[(CompilationMode, u64, TrainingWorkload)]) -> Vec<Fig7Row> {
    par_map(specs, |(mode, x, w)| point(*mode, *x, w))
}

/// Fig. 7(a): allocation vs layer count at HS 768 (O0/O3) and the LLaMA
/// block (O1).
#[must_use]
pub fn run_layers() -> Vec<Fig7Row> {
    let specs: Vec<_> = RDU_LAYER_SWEEP
        .iter()
        .flat_map(|&l| {
            [
                (CompilationMode::O0, l, rdu_probe(768, l)),
                (CompilationMode::O1, l, rdu_o1_probe(4096, l)),
                (CompilationMode::O3, l, rdu_probe(768, l)),
            ]
        })
        .collect();
    points(&specs)
}

/// Fig. 7(b): allocation vs hidden size (O0/O3 on 480-1600, O1 on
/// 3072-8192).
#[must_use]
pub fn run_hidden_sizes() -> Vec<Fig7Row> {
    let mut specs: Vec<_> = RDU_HS_SWEEP
        .iter()
        .flat_map(|&hs| {
            [
                (CompilationMode::O0, hs, rdu_probe(hs, 12)),
                (CompilationMode::O3, hs, rdu_probe(hs, 12)),
            ]
        })
        .collect();
    specs.extend(
        RDU_O1_HS_SWEEP
            .iter()
            .map(|&hs| (CompilationMode::O1, hs, rdu_o1_probe(hs, 4))),
    );
    points(&specs)
}

/// Render one of the two panels.
#[must_use]
pub fn render(rows: &[Fig7Row], panel: &str) -> Table {
    let mut t = Table::new(format!("Fig. 7({panel}): RDU allocation ratio"));
    t.set_headers(["Mode", "x", "PCU alloc", "PMU alloc"]);
    for r in rows {
        t.add_row([
            r.mode.clone(),
            r.x.to_string(),
            format!("{:.3}", r.pcu_allocation),
            format!("{:.3}", r.pmu_allocation),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode_series<'a>(rows: &'a [Fig7Row], mode: &str) -> Vec<&'a Fig7Row> {
        rows.iter().filter(|r| r.mode == mode).collect()
    }

    #[test]
    fn o3_highest_o0_lowest() {
        let rows = run_layers();
        for &l in &RDU_LAYER_SWEEP {
            let get = |m: &str| {
                rows.iter()
                    .find(|r| r.mode == m && r.x == l)
                    .unwrap()
                    .pcu_allocation
            };
            assert!(get("o3") > get("o0"), "L={l}");
        }
    }

    #[test]
    fn allocation_never_exceeds_seventy_percent() {
        // Paper: "overall RDU resource allocation never exceeds 60%"; our
        // O3 peaks slightly above at large HS (see EXPERIMENTS.md).
        for r in run_layers().iter().chain(run_hidden_sizes().iter()) {
            assert!(r.pcu_allocation < 0.70, "{r:?}");
        }
    }

    #[test]
    fn o0_allocation_falls_with_layers() {
        let rows = run_layers();
        let o0 = mode_series(&rows, "o0");
        assert!(o0.first().unwrap().pcu_allocation > o0.last().unwrap().pcu_allocation);
    }

    #[test]
    fn o3_allocation_rises_with_hidden_size() {
        let rows = run_hidden_sizes();
        let o3 = mode_series(&rows, "o3");
        assert!(o3.last().unwrap().pcu_allocation > o3.first().unwrap().pcu_allocation);
    }

    #[test]
    fn render_covers_modes() {
        let s = render(&run_hidden_sizes(), "b").to_string();
        assert!(s.contains("o0") && s.contains("o1") && s.contains("o3"));
    }
}
