//! Integration tests of fault-tolerant multi-process sharding:
//! `dabench all --shards N`, worker crash/respawn, respawn-budget
//! exhaustion, and crash-safe merge + resume across the sharded journal
//! layout (see docs/sharding.md).
//!
//! Worker deaths are injected with the `DABENCH_INJECT` process-level
//! hooks (`<experiment>=abort[:N]` / `<experiment>=exit:CODE[:N]`), which
//! the workers inherit through the environment — the parent never has to
//! be crashed to observe the fleet supervisor working.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

/// Run `dabench` with `DABENCH_INJECT` scrubbed (or set to `inject`).
fn run(args: &[&str], inject: Option<&str>) -> Run {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dabench"));
    cmd.args(args).env_remove("DABENCH_INJECT");
    if let Some(inject) = inject {
        cmd.env("DABENCH_INJECT", inject);
    }
    let out = cmd.output().expect("binary runs");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dabench-cli-shard-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journal(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("journal.jsonl")).expect("combined journal exists")
}

fn shard_journals(dir: &Path) -> Vec<String> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir).expect("run dir readable") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        if name.starts_with("journal.shard-") {
            found.push(name);
        }
    }
    found.sort();
    found
}

/// The single-process reference: stdout and journal bytes that every
/// sharded variant must reproduce exactly.
fn reference(tag: &str) -> (Run, PathBuf) {
    let dir = temp_dir(tag);
    let r = run(
        &["all", "--jobs", "1", "--run-dir", dir.to_str().unwrap()],
        None,
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    (r, dir)
}

#[test]
fn clean_sharded_run_is_byte_identical_to_single_process() {
    let (reference, ref_dir) = reference("clean-ref");
    let dir = temp_dir("clean-sharded");
    let r = run(
        &["all", "--shards", "3", "--run-dir", dir.to_str().unwrap()],
        None,
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_eq!(r.stdout, reference.stdout, "sharded stdout differs");
    assert_eq!(journal(&dir), journal(&ref_dir), "merged journal differs");
    assert!(
        r.stderr
            .contains("shard rollup: 3 shards — 3 clean, 0 partial, 0 dead"),
        "{}",
        r.stderr
    );
    assert!(
        shard_journals(&dir).is_empty(),
        "shard journals not cleaned up after merge"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborted_worker_is_respawned_and_the_run_stays_byte_identical() {
    let (reference, ref_dir) = reference("abort-ref");
    let dir = temp_dir("abort-sharded");
    // The worker holding fig11 calls abort() on its first life, then the
    // respawned process (life 1) clears the counted injection and runs
    // the point normally.
    let r = run(
        &["all", "--shards", "3", "--run-dir", dir.to_str().unwrap()],
        Some("fig11=abort:1"),
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_eq!(r.stdout, reference.stdout, "stdout differs after respawn");
    assert_eq!(
        journal(&dir),
        journal(&ref_dir),
        "merged journal differs after respawn"
    );
    // SIGABRT is signal 6; the rollup names the death and the respawn.
    assert!(r.stderr.contains("killed by signal 6"), "{}", r.stderr);
    assert!(r.stderr.contains("1 respawns"), "{}", r.stderr);
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_code_injection_is_treated_as_a_crash_and_respawned() {
    let (reference, ref_dir) = reference("exit-ref");
    let dir = temp_dir("exit-sharded");
    let r = run(
        &["all", "--shards", "2", "--run-dir", dir.to_str().unwrap()],
        Some("fig11=exit:7:1"),
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_eq!(r.stdout, reference.stdout, "stdout differs after respawn");
    assert_eq!(journal(&dir), journal(&ref_dir), "journal differs");
    assert!(r.stderr.contains("exited with code 7"), "{}", r.stderr);
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_respawn_budget_drops_the_points_loudly() {
    let dir = temp_dir("budget");
    // Unconditional abort: the worker dies on every life, so with a zero
    // respawn budget the shard is declared dead and its unfinished point
    // becomes a named synthetic failure — never a silent drop.
    let r = run(
        &[
            "all",
            "--shards",
            "3",
            "--max-respawns",
            "0",
            "--run-dir",
            dir.to_str().unwrap(),
        ],
        Some("fig11=abort"),
    );
    assert_eq!(r.code, Some(2), "{}", r.stderr);
    assert!(
        r.stderr
            .contains("respawn budget exhausted after 0 respawns"),
        "{}",
        r.stderr
    );
    assert!(r.stderr.contains("dropped: fig11"), "{}", r.stderr);
    assert!(r.stderr.contains("[   failed] fig11"), "{}", r.stderr);
    assert!(
        r.stderr.contains("respawn budget (0) exhausted"),
        "{}",
        r.stderr
    );
    // Every other artifact still rendered.
    assert!(r.stdout.contains("Table I"), "table1 missing");
    assert!(r.stdout.contains("Fig. 12"), "fig12 missing");
    assert!(
        !r.stdout.contains("Fig. 11"),
        "dropped point printed output"
    );

    // Resume single-process, no injection: the failed point re-runs and
    // the final output matches an uninterrupted run byte-for-byte.
    let (reference, ref_dir) = reference("budget-ref");
    let resumed = run(
        &["all", "--resume", dir.to_str().unwrap(), "--jobs", "1"],
        None,
    );
    assert_eq!(resumed.code, Some(0), "{}", resumed.stderr);
    assert_eq!(
        resumed.stdout, reference.stdout,
        "resume after dropped shard differs from uninterrupted run"
    );
    assert!(
        resumed.stderr.contains("replayed from journal"),
        "{}",
        resumed.stderr
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_folds_stale_shard_journals_into_the_combined_journal() {
    // Simulate a parent killed after its workers finished but before the
    // merge: the combined journal is missing fig11, whose records sit in
    // a leftover shard journal. `--resume` must adopt them.
    let (reference, ref_dir) = reference("fold-ref");
    let ref_journal = journal(&ref_dir);
    let dir = temp_dir("fold");
    std::fs::create_dir_all(&dir).expect("run dir");
    let mut combined = String::new();
    let mut stale = String::new();
    for (i, line) in ref_journal.lines().enumerate() {
        if i == 0 {
            combined.push_str(line);
            combined.push('\n');
            stale.push_str(line);
            stale.push('\n');
        } else if line.contains("\"label\":\"fig11\"") {
            stale.push_str(line);
            stale.push('\n');
        } else {
            combined.push_str(line);
            combined.push('\n');
        }
    }
    assert!(
        stale.lines().count() > 1,
        "reference journal has no fig11 records"
    );
    std::fs::write(dir.join("journal.jsonl"), &combined).expect("write combined");
    std::fs::write(dir.join("journal.shard-1.jsonl"), &stale).expect("write stale shard");

    let r = run(
        &["all", "--resume", dir.to_str().unwrap(), "--jobs", "1"],
        None,
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_eq!(r.stdout, reference.stdout, "folded resume stdout differs");
    assert_eq!(
        journal(&dir),
        ref_journal,
        "folded journal differs from uninterrupted run"
    );
    assert!(
        shard_journals(&dir).is_empty(),
        "stale shard journal survived the fold"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ephemeral_sharded_run_needs_no_run_dir() {
    let (reference, ref_dir) = reference("ephemeral-ref");
    let r = run(&["all", "--shards", "2"], None);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_eq!(
        r.stdout, reference.stdout,
        "ephemeral sharded stdout differs"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn flag_validation_rejects_nonsense() {
    let r = run(&["all", "--shards", "0"], None);
    assert_eq!(r.code, Some(1), "{:?}", r.code);
    assert!(r.stderr.contains("--shards"), "{}", r.stderr);

    let r = run(&["all", "--shards", "2", "--heartbeat-ms", "0"], None);
    assert_eq!(r.code, Some(1), "{:?}", r.code);
    assert!(r.stderr.contains("--heartbeat-ms"), "{}", r.stderr);

    let r = run(&["all", "--shards", "2", "--shard-stall-s", "nan"], None);
    assert_eq!(r.code, Some(1), "{:?}", r.code);
    assert!(r.stderr.contains("--shard-stall-s"), "{}", r.stderr);
}

#[test]
fn shard_worker_rejects_unknown_points() {
    let dir = temp_dir("badworker");
    std::fs::create_dir_all(&dir).expect("run dir");
    let r = run(
        &[
            "shard-worker",
            "--run-dir",
            dir.to_str().unwrap(),
            "--shard",
            "0",
            "--points",
            "not-an-experiment",
        ],
        None,
    );
    assert_eq!(r.code, Some(1), "{:?}", r.code);
    assert!(r.stderr.contains("not-an-experiment"), "{}", r.stderr);
    let _ = std::fs::remove_dir_all(&dir);
}
