//! Differential equivalence harness for incremental sweep recompilation.
//!
//! Every sweep command is run twice — once with the incremental compile
//! cache active (the default) and once with `DABENCH_NO_INCREMENTAL=1`
//! forcing a from-scratch graph build at every point — and the rendered
//! bytes must be identical. The same invariant is checked across worker
//! counts, process sharding, and journal resume, so the cache can never
//! change an answer no matter how the sweep is scheduled.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

/// Run `dabench` with the incremental compile cache on or off.
///
/// `DABENCH_INJECT` is scrubbed (fault hooks would perturb output) and
/// `DABENCH_NO_INCREMENTAL` is explicitly set or removed so the two modes
/// differ in exactly one bit. Sharded workers inherit the environment, so
/// the toggle reaches every process in a fleet.
fn run_mode(args: &[&str], incremental: bool) -> Run {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dabench"));
    cmd.args(args).env_remove("DABENCH_INJECT");
    if incremental {
        cmd.env_remove("DABENCH_NO_INCREMENTAL");
    } else {
        cmd.env("DABENCH_NO_INCREMENTAL", "1");
    }
    let out = cmd.output().expect("binary runs");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dabench-compile-equiv-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journal(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("journal.jsonl")).expect("journal exists")
}

/// Assert one command renders byte-identical stdout with the cache on and
/// off, and that both invocations succeed.
fn assert_equivalent(args: &[&str]) {
    let on = run_mode(args, true);
    let off = run_mode(args, false);
    assert_eq!(on.code, Some(0), "{args:?} (incremental): {}", on.stderr);
    assert_eq!(off.code, Some(0), "{args:?} (scratch): {}", off.stderr);
    assert_eq!(
        on.stdout,
        off.stdout,
        "incremental compilation changed `dabench {}` output",
        args.join(" ")
    );
}

#[test]
fn check_and_tables_are_identical_with_and_without_incremental() {
    assert_equivalent(&["check"]);
    assert_equivalent(&["table1"]);
    assert_equivalent(&["table3"]);
}

#[test]
fn figure_sweeps_are_identical_with_and_without_incremental() {
    for fig in ["fig7", "fig8", "fig9", "fig10", "fig11"] {
        assert_equivalent(&[fig]);
    }
}

#[test]
fn inference_and_generated_sweeps_are_identical() {
    assert_equivalent(&["infer"]);
    assert_equivalent(&["gen", "--tier", "baby", "--count", "8", "--seed", "42"]);
}

#[test]
fn csv_exports_are_identical() {
    assert_equivalent(&["csv", "infer"]);
    assert_equivalent(&["csv", "gen"]);
}

#[test]
fn worker_count_does_not_interact_with_the_cache() {
    // The cache is process-global and shared across sweep workers; the
    // rendered bytes must not depend on how many threads race it.
    let scratch = run_mode(&["fig7", "--jobs", "1"], false);
    assert_eq!(scratch.code, Some(0), "{}", scratch.stderr);
    for jobs in ["1", "4"] {
        let r = run_mode(&["fig7", "--jobs", jobs], true);
        assert_eq!(r.code, Some(0), "{}", r.stderr);
        assert_eq!(
            r.stdout, scratch.stdout,
            "fig7 --jobs {jobs} with incremental differs from scratch build"
        );
    }
}

#[test]
fn sharded_sweep_with_incremental_matches_scratch_single_process() {
    // Reference: single process, one worker, cache disabled.
    let ref_dir = temp_dir("shard-ref");
    let reference = run_mode(
        &["all", "--jobs", "1", "--run-dir", ref_dir.to_str().unwrap()],
        false,
    );
    assert_eq!(reference.code, Some(0), "{}", reference.stderr);

    // Candidate: three worker processes, each warming its own cache.
    let dir = temp_dir("shard-inc");
    let r = run_mode(
        &["all", "--shards", "3", "--run-dir", dir.to_str().unwrap()],
        true,
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_eq!(
        r.stdout, reference.stdout,
        "sharded incremental stdout differs from scratch reference"
    );
    assert_eq!(
        journal(&dir),
        journal(&ref_dir),
        "sharded incremental journal differs from scratch reference"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_sweep_with_incremental_matches_scratch_reference() {
    // Reference run with the cache off.
    let ref_dir = temp_dir("resume-ref");
    let reference = run_mode(
        &["all", "--jobs", "1", "--run-dir", ref_dir.to_str().unwrap()],
        false,
    );
    assert_eq!(reference.code, Some(0), "{}", reference.stderr);
    let ref_journal = journal(&ref_dir);

    // Forge an interrupted run: the journal is missing every fig11
    // record, so `--resume` replays the rest and recomputes fig11 — with
    // the cache on, against journal entries written with it off.
    let dir = temp_dir("resume-inc");
    std::fs::create_dir_all(&dir).expect("run dir");
    let mut partial = String::new();
    let mut dropped = 0;
    for (i, line) in ref_journal.lines().enumerate() {
        if i > 0 && line.contains("\"label\":\"fig11\"") {
            dropped += 1;
            continue;
        }
        partial.push_str(line);
        partial.push('\n');
    }
    assert!(dropped > 0, "reference journal has no fig11 records");
    std::fs::write(dir.join("journal.jsonl"), &partial).expect("write partial journal");

    let r = run_mode(
        &["all", "--resume", dir.to_str().unwrap(), "--jobs", "1"],
        true,
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_eq!(
        r.stdout, reference.stdout,
        "resumed incremental stdout differs from scratch reference"
    );
    // A re-run point appends at the journal tail instead of its canonical
    // slot, so compare records order-insensitively: every line — including
    // the recomputed fig11 payload — must still be byte-identical.
    let resumed_journal = journal(&dir);
    let mut got: Vec<&str> = resumed_journal.lines().collect();
    let mut want: Vec<&str> = ref_journal.lines().collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(
        got, want,
        "resumed incremental journal records differ from scratch reference"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
