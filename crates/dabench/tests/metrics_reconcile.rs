//! Reconciliation of observability counters with rendered report figures.
//!
//! The `--metrics` table is only trustworthy if the counters it aggregates
//! are the *same numbers* the reports print. This test runs Table I with
//! the recorder on and checks, cell by cell, that the `wse.allocated_pes`
//! / `wse.chip_pes` counters of each sweep point reproduce the table's PE
//! allocation ratio exactly. Together with the golden snapshot of the
//! rendered table (tests/golden/table1.stdout.golden), this pins the whole
//! chain: compiler output → counters → report cells → rendered text.
//!
//! Lives in its own integration-test binary because the recorder is
//! process-global; nothing else may record concurrently.

use dabench::core::obs;
use dabench::experiments::table1;

#[test]
fn table1_cells_reconcile_with_wse_counters() {
    obs::disable();
    let _ = obs::take();
    obs::enable();
    let rows = table1::run();
    let traces = obs::take();
    obs::disable();

    // One trace per sweep cell, in sweep order (paths sort by point index).
    assert_eq!(traces.len(), rows.len(), "one trace per Table I cell");
    for (row, trace) in rows.iter().zip(&traces) {
        match row.allocation_pct {
            Some(pct) => {
                let allocated = trace
                    .counter_total("wse.allocated_pes")
                    .unwrap_or_else(|| panic!("L={}: no wse.allocated_pes", row.layers));
                let chip = trace
                    .counter_total("wse.chip_pes")
                    .unwrap_or_else(|| panic!("L={}: no wse.chip_pes", row.layers));
                assert!(
                    allocated / chip == pct,
                    "L={}: counters say {}, report says {pct}",
                    row.layers,
                    allocated / chip
                );
            }
            None => {
                // The failing 78-layer cell must not fabricate counters.
                assert_eq!(
                    trace.counter_total("wse.allocated_pes"),
                    None,
                    "L={}: failed compile recorded an allocation",
                    row.layers
                );
            }
        }
    }
}
