//! Smoke tests of the `dabench` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dabench"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn table1_prints_the_table() {
    let (ok, stdout, _) = run(&["table1"]);
    assert!(ok);
    assert!(stdout.contains("Table I"));
    assert!(stdout.contains("Fail"));
}

#[test]
fn tier1_profiles_a_platform() {
    let (ok, stdout, _) = run(&["tier1", "wse", "--layers", "12", "--batch", "64"]);
    assert!(ok);
    assert!(stdout.contains("Tier1Report"));
    assert!(stdout.contains("cerebras-wse2"));
}

#[test]
fn tier1_reports_mapping_failures() {
    let (ok, _, stderr) = run(&["tier1", "ipu", "--layers", "10", "--batch", "64"]);
    assert!(!ok);
    assert!(stderr.contains("out of memory"), "{stderr}");
}

#[test]
fn summary_prints_all_platforms() {
    let (ok, stdout, _) = run(&["summary", "--layers", "6", "--batch", "16"]);
    assert!(ok);
    assert!(stdout.contains("cerebras"));
    assert!(stdout.contains("sn30"));
    assert!(stdout.contains("ipu"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn bad_flag_value_is_reported() {
    let (ok, _, stderr) = run(&["summary", "--layers", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("--layers"));
}

#[test]
fn zero_valued_flags_get_clean_errors() {
    for args in [
        ["summary", "--batch", "0"],
        ["summary", "--layers", "0"],
        ["tier1", "wse", "--seq"],
    ] {
        let (ok, _, stderr) = run(&args);
        assert!(!ok, "{args:?}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("commands"));
    assert!(stdout.contains("--jobs"));
}

#[test]
fn summary_output_is_jobs_invariant() {
    let (ok1, seq, _) = run(&["summary", "--layers", "6", "--batch", "16", "--jobs", "1"]);
    let (ok4, par, _) = run(&["summary", "--layers", "6", "--batch", "16", "--jobs", "4"]);
    assert!(ok1 && ok4);
    assert_eq!(seq, par, "summary output must not depend on --jobs");
}

#[test]
fn fig7_output_is_jobs_invariant() {
    let (ok1, seq, _) = run(&["fig7", "--jobs", "1"]);
    let (ok4, par, _) = run(&["fig7", "--jobs", "4"]);
    assert!(ok1 && ok4);
    assert_eq!(seq, par, "fig7 output must not depend on --jobs");
}

#[test]
fn faults_output_is_jobs_invariant() {
    let base = [
        "faults", "wse", "--seed", "7", "--layers", "6", "--batch", "16",
    ];
    let mut seq_args = base.to_vec();
    seq_args.extend(["--jobs", "1"]);
    let mut par_args = base.to_vec();
    par_args.extend(["--jobs", "4"]);
    let (ok1, seq, _) = run(&seq_args);
    let (ok4, par, _) = run(&par_args);
    assert!(ok1 && ok4);
    assert_eq!(seq, par, "faults output must not depend on --jobs");
    assert!(seq.contains("Resilience"));
}

#[test]
fn infer_output_is_jobs_invariant() {
    let (ok1, seq, _) = run(&["infer", "--jobs", "1"]);
    let (ok4, par, _) = run(&["infer", "--jobs", "4"]);
    assert!(ok1 && ok4);
    assert_eq!(seq, par, "infer output must not depend on --jobs");
    assert!(seq.contains("Inference serving"));
}

#[test]
fn infer_accepts_explicit_workload_flags() {
    let (ok, out, _) = run(&[
        "infer",
        "--model",
        "llama2-7b",
        "--batch",
        "4",
        "--prompt",
        "1024",
        "--decode",
        "64",
        "--kv-precision",
        "fp8",
        "--continuous",
    ]);
    assert!(ok);
    assert!(out.contains("Workload:"), "{out}");
    assert!(out.contains("kv=fp8"), "{out}");
    for platform in ["wse", "rdu", "ipu", "gpu"] {
        assert!(out.contains(platform), "missing {platform}: {out}");
    }
}

#[test]
fn infer_rejects_invalid_workloads() {
    let (ok, _, stderr) = run(&["infer", "--batch", "0"]);
    assert!(!ok, "zero batch must be rejected");
    assert!(stderr.contains("batch"), "{stderr}");
    let (ok, _, stderr) = run(&["infer", "--model", "nonexistent"]);
    assert!(!ok);
    assert!(stderr.contains("model"), "{stderr}");
}

#[test]
fn jobs_flag_rejects_bad_values() {
    for bad in ["0", "abc"] {
        let (ok, _, stderr) = run(&["summary", "--jobs", bad]);
        assert!(!ok, "--jobs {bad} should fail");
        assert!(stderr.contains("--jobs"), "{stderr}");
    }
    let (ok, _, stderr) = run(&["summary", "--jobs"]);
    assert!(!ok);
    assert!(stderr.contains("--jobs"), "{stderr}");
}

#[test]
fn csv_exports_every_experiment_and_ablations() {
    for name in ["table1", "fig9", "fig11", "ablations"] {
        let (ok, stdout, stderr) = run(&["csv", name]);
        assert!(ok, "csv {name}: {stderr}");
        assert!(stdout.contains(','), "csv {name} produced no rows");
    }
}

#[test]
fn csv_rejects_unknown_experiment() {
    let (ok, _, stderr) = run(&["csv", "fig99"]);
    assert!(!ok);
    assert!(stderr.contains("no CSV export"), "{stderr}");
}

#[test]
fn faults_failed_points_show_dash_not_zero() {
    // A 50%-dead plan makes the WSE remap fail; the failed row must not
    // fabricate a 0.00 s recovery time.
    let (ok, stdout, _) = run(&[
        "faults", "wse", "--seed", "7", "--plan", "dead=0.5", "--layers", "6", "--batch", "16",
    ]);
    assert!(ok);
    if let Some(line) = stdout.lines().find(|l| l.contains("FAILED")) {
        assert!(!line.contains("0.00"), "{line}");
    }
}
