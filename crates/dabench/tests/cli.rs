//! Smoke tests of the `dabench` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dabench"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn table1_prints_the_table() {
    let (ok, stdout, _) = run(&["table1"]);
    assert!(ok);
    assert!(stdout.contains("Table I"));
    assert!(stdout.contains("Fail"));
}

#[test]
fn tier1_profiles_a_platform() {
    let (ok, stdout, _) = run(&["tier1", "wse", "--layers", "12", "--batch", "64"]);
    assert!(ok);
    assert!(stdout.contains("Tier1Report"));
    assert!(stdout.contains("cerebras-wse2"));
}

#[test]
fn tier1_reports_mapping_failures() {
    let (ok, _, stderr) = run(&["tier1", "ipu", "--layers", "10", "--batch", "64"]);
    assert!(!ok);
    assert!(stderr.contains("out of memory"), "{stderr}");
}

#[test]
fn summary_prints_all_platforms() {
    let (ok, stdout, _) = run(&["summary", "--layers", "6", "--batch", "16"]);
    assert!(ok);
    assert!(stdout.contains("cerebras"));
    assert!(stdout.contains("sn30"));
    assert!(stdout.contains("ipu"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn bad_flag_value_is_reported() {
    let (ok, _, stderr) = run(&["summary", "--layers", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("--layers"));
}

#[test]
fn zero_valued_flags_get_clean_errors() {
    for args in [
        ["summary", "--batch", "0"],
        ["summary", "--layers", "0"],
        ["tier1", "wse", "--seq"],
    ] {
        let (ok, _, stderr) = run(&args);
        assert!(!ok, "{args:?}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("commands"));
}
