//! Integration tests of the `dabench serve` daemon over real TCP: smoke,
//! shared-cache hits, structured load shedding, graceful drain, error
//! injection over the wire, and the headline robustness property —
//! SIGKILL mid-run, restart with `--resume`, byte-identical responses
//! (see docs/serve.md).

use dabench::core::jsonl;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    stderr: Option<ChildStderr>,
    addr: String,
}

/// Spawn `dabench serve` with the given extra flags, wait for the
/// `listening on` line, and return a handle holding the resolved address.
fn spawn_daemon(args: &[&str], inject: Option<&str>) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dabench"));
    cmd.arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .env_remove("DABENCH_INJECT");
    if let Some(inject) = inject {
        cmd.env("DABENCH_INJECT", inject);
    }
    let mut child = cmd.spawn().expect("daemon spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("listening line");
    // "dabench serve listening on 127.0.0.1:PORT (protocol dabench-serve-v1)"
    let addr = line
        .split_whitespace()
        .nth(4)
        .unwrap_or_else(|| panic!("unexpected listening line: {line:?}"))
        .to_owned();
    assert!(
        line.contains("dabench-serve-v1"),
        "listening line must name the protocol: {line:?}"
    );
    let stderr = child.stderr.take();
    Daemon {
        child,
        stderr,
        addr,
    }
}

impl Daemon {
    fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// Graceful stop via the `drain` op; returns (exit code, stderr).
    fn drain_and_wait(mut self) -> (Option<i32>, String) {
        let mut client = self.connect();
        let reply = client.request("{\"op\":\"drain\",\"id\":\"shutdown\"}");
        assert!(reply.contains("\"draining\":\"true\""), "{reply}");
        drop(client);
        let status = self.child.wait().expect("daemon exits");
        let mut stderr = String::new();
        if let Some(mut pipe) = self.stderr.take() {
            pipe.read_to_string(&mut stderr).expect("stderr");
        }
        (status.code(), stderr)
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone().expect("clone"));
                    return Self {
                        reader,
                        writer: stream,
                    };
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        assert!(reply.ends_with('\n'), "unterminated reply: {reply:?}");
        reply.trim_end().to_owned()
    }

    fn submit(&mut self, id: &str, job: &str) -> String {
        self.request(&format!(
            "{{\"op\":\"submit\",\"id\":\"{id}\",\"job\":\"{job}\"}}"
        ))
    }
}

/// Extract the escaped `data` payload from an `ok` response line. Escaped
/// payloads compare byte-identically iff the unescaped renderings do.
fn data_field(reply: &str) -> &str {
    let start = reply
        .find("\"data\":\"")
        .unwrap_or_else(|| panic!("no data field in {reply}"));
    let payload = &reply[start + "\"data\":\"".len()..];
    payload.strip_suffix("\"}").expect("data is the last field")
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dabench-cli-serve-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reference rendering of an experiment via the one-shot CLI; the daemon
/// must serve exactly these bytes.
fn reference_output(experiment: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_dabench"))
        .arg(experiment)
        .env_remove("DABENCH_INJECT")
        .output()
        .expect("reference run");
    assert!(out.status.success(), "reference {experiment} failed");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn smoke_ping_submit_cache_stats_drain() {
    let daemon = spawn_daemon(&["--workers", "2"], None);
    let mut client = daemon.connect();

    let pong = client.request("{\"op\":\"ping\",\"id\":\"p\"}");
    assert!(pong.contains("\"protocol\":\"dabench-serve-v1\""), "{pong}");

    // First submission executes; the rendered bytes match the one-shot CLI.
    let first = client.submit("1", "table1");
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    assert!(first.contains("\"source\":\"executed\""), "{first}");
    assert_eq!(
        data_field(&first),
        jsonl::escape(&reference_output("table1")),
        "served bytes must match the CLI rendering"
    );

    // Second identical submission is a shared-cache hit, byte-identical.
    let second = client.submit("2", "table1");
    assert!(second.contains("\"source\":\"cache\""), "{second}");
    assert_eq!(data_field(&first), data_field(&second));

    // The hit is observable in the stats op.
    let stats = client.request("{\"op\":\"stats\",\"id\":\"s\"}");
    assert!(stats.contains("\"cache_hits\":\"1\""), "{stats}");
    assert!(stats.contains("\"served_cached\":\"1\""), "{stats}");

    // Unknown jobs are rejected with a structured error.
    let bad = client.submit("3", "fig99");
    assert!(bad.contains("\"status\":\"error\""), "{bad}");
    assert!(bad.contains("unknown job"), "{bad}");

    drop(client);
    let (code, stderr) = daemon.drain_and_wait();
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("serve: 1 accepted"), "{stderr}");
    assert!(stderr.contains("1 from cache"), "{stderr}");
}

#[test]
fn metrics_flag_surfaces_store_hit_counters() {
    let daemon = spawn_daemon(&["--workers", "1", "--metrics"], None);
    let mut client = daemon.connect();
    let first = client.submit("1", "table3");
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    let second = client.submit("2", "table3");
    assert!(second.contains("\"source\":\"cache\""), "{second}");
    drop(client);
    let (code, stderr) = daemon.drain_and_wait();
    assert_eq!(code, Some(0), "{stderr}");
    // The store counters land on the obs bus and in the --metrics table.
    assert!(stderr.contains("serve.store.hits"), "{stderr}");
}

#[test]
fn saturated_queue_sheds_instead_of_blocking() {
    // One worker, queue of one: the third concurrent submission must be
    // shed immediately with a structured response and a retry hint.
    let daemon = spawn_daemon(
        &["--workers", "1", "--queue", "1"],
        Some("fig6=sleep:2,fig10=sleep:2"),
    );

    let addr = daemon.addr.clone();
    let a = std::thread::spawn({
        let addr = addr.clone();
        move || Client::connect(&addr).submit("a", "fig6")
    });
    std::thread::sleep(Duration::from_millis(300));
    let b = std::thread::spawn({
        let addr = addr.clone();
        move || Client::connect(&addr).submit("b", "fig10")
    });
    std::thread::sleep(Duration::from_millis(300));

    let mut c = daemon.connect();
    let started = Instant::now();
    let shed = c.submit("c", "table3");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "shed response must not wait for the queue"
    );
    assert!(shed.contains("\"status\":\"shed\""), "{shed}");
    assert!(shed.contains("\"reason\":\"queue full\""), "{shed}");
    assert!(shed.contains("\"retry_after_ms\":\"250\""), "{shed}");

    // The blocked submissions still complete normally.
    let a_reply = a.join().expect("a");
    let b_reply = b.join().expect("b");
    assert!(a_reply.contains("\"status\":\"ok\""), "{a_reply}");
    assert!(b_reply.contains("\"status\":\"ok\""), "{b_reply}");

    let (code, stderr) = daemon.drain_and_wait();
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("1 shed"), "{stderr}");
}

#[test]
fn injected_errors_surface_and_retry_over_the_wire() {
    let daemon = spawn_daemon(
        &["--workers", "1", "--max-retries", "1"],
        Some("table1=err:device_fault,table4=err:compile_failure:1"),
    );
    let mut client = daemon.connect();

    // Permanent injection: retried once, then reported as failed.
    let failed = client.submit("1", "table1");
    assert!(failed.contains("\"status\":\"failed\""), "{failed}");
    assert!(failed.contains("device fault on `injected`"), "{failed}");
    assert!(failed.contains("after 1 retries"), "{failed}");

    // One-shot injection: the retry succeeds and serves real bytes.
    let ok = client.submit("2", "table4");
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    assert_eq!(data_field(&ok), jsonl::escape(&reference_output("table4")));

    drop(client);
    let (code, stderr) = daemon.drain_and_wait();
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("1 failed"), "{stderr}");
}

#[test]
fn sigkill_then_resume_serves_byte_identical_results() {
    let dir = temp_dir("resume");
    let dir_s = dir.to_str().expect("utf-8 temp path");

    // First daemon: table1 completes and is journaled; fig10 is accepted
    // but stuck executing (injected sleep) when the SIGKILL lands.
    let daemon = spawn_daemon(
        &["--workers", "2", "--run-dir", dir_s],
        Some("fig10=sleep:30"),
    );
    let mut client = daemon.connect();
    let original = client.submit("1", "table1");
    assert!(original.contains("\"status\":\"ok\""), "{original}");
    let addr = daemon.addr.clone();
    let _stuck = std::thread::spawn(move || {
        // This submission never gets an answer: the daemon dies mid-job.
        let _ = Client::connect(&addr).submit("2", "fig10");
    });
    std::thread::sleep(Duration::from_millis(500));
    daemon.kill();

    // Second daemon resumes the journal: the completed rendering replays
    // from cache byte-identically, the in-flight job is re-adopted and
    // re-run (no injection this time).
    let resumed = spawn_daemon(&["--workers", "2", "--resume", dir_s], None);
    let mut client = resumed.connect();

    let replayed = client.submit("3", "table1");
    assert!(replayed.contains("\"source\":\"cache\""), "{replayed}");
    assert_eq!(
        data_field(&original),
        data_field(&replayed),
        "replayed rendering must be byte-identical"
    );

    // The adopted job completes shortly after startup and then serves
    // the same bytes as the one-shot CLI.
    let expected = jsonl::escape(&reference_output("fig10"));
    let deadline = Instant::now() + Duration::from_secs(30);
    let adopted = loop {
        let reply = client.submit("4", "fig10");
        if reply.contains("\"status\":\"ok\"") {
            break reply;
        }
        assert!(Instant::now() < deadline, "adopted job never completed");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(data_field(&adopted), expected, "adopted job re-rendered");

    drop(client);
    let (code, stderr) = resumed.drain_and_wait();
    assert_eq!(code, Some(0), "{stderr}");
    assert!(
        stderr.contains("resume: 1 replayed from journal, 1 adopted (re-run)"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gen_job_sheds_under_pressure_and_resumes_byte_identically() {
    // The generated-population job is classified heavy: with the queue
    // saturated it must shed instead of blocking. After a SIGKILL the
    // journaled result replays from cache byte-identically.
    let dir = temp_dir("gen-resume");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let daemon = spawn_daemon(
        &["--workers", "1", "--queue", "1", "--run-dir", dir_s],
        Some("fig6=sleep:2,fig10=sleep:2"),
    );

    let addr = daemon.addr.clone();
    let a = std::thread::spawn({
        let addr = addr.clone();
        move || Client::connect(&addr).submit("a", "fig6")
    });
    std::thread::sleep(Duration::from_millis(300));
    let b = std::thread::spawn({
        let addr = addr.clone();
        move || Client::connect(&addr).submit("b", "fig10")
    });
    std::thread::sleep(Duration::from_millis(300));

    // Queue full: the generated-population job is shed, not queued.
    let mut c = daemon.connect();
    let shed = c.submit("c", "gen");
    assert!(shed.contains("\"status\":\"shed\""), "{shed}");

    let a_reply = a.join().expect("a");
    let b_reply = b.join().expect("b");
    assert!(a_reply.contains("\"status\":\"ok\""), "{a_reply}");
    assert!(b_reply.contains("\"status\":\"ok\""), "{b_reply}");

    // With the queue drained the same job executes and is journaled.
    let original = c.submit("d", "gen");
    assert!(original.contains("\"status\":\"ok\""), "{original}");
    assert!(original.contains("\"source\":\"executed\""), "{original}");
    drop(c);
    daemon.kill();

    // Restart from the journal: the generated population replays from
    // cache, byte-identical to the pre-kill rendering.
    let resumed = spawn_daemon(&["--workers", "1", "--resume", dir_s], None);
    let mut client = resumed.connect();
    let replayed = client.submit("e", "gen");
    assert!(replayed.contains("\"source\":\"cache\""), "{replayed}");
    assert_eq!(
        data_field(&original),
        data_field(&replayed),
        "replayed generated population must be byte-identical"
    );
    drop(client);
    let (code, stderr) = resumed.drain_and_wait();
    assert_eq!(code, Some(0), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully() {
    let daemon = spawn_daemon(&["--workers", "1"], None);
    let mut client = daemon.connect();
    let ok = client.submit("1", "table4");
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    drop(client);

    let term = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());

    let mut daemon = daemon;
    let status = daemon.child.wait().expect("daemon exits");
    let mut stderr = String::new();
    if let Some(mut pipe) = daemon.stderr.take() {
        pipe.read_to_string(&mut stderr).expect("stderr");
    }
    assert_eq!(status.code(), Some(0), "{stderr}");
    assert!(stderr.contains("serve: 1 accepted"), "{stderr}");
}
