//! Integration tests for `dabench gen`: the seeded scenario generator,
//! its supervised sweep plumbing (`--jobs`/`--shards`/`--run-dir`/
//! `--resume`), the ranking report, and the metamorphic invariant layer
//! (see docs/generation.md).

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run_with(args: &[&str], inject: Option<&str>) -> Run {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dabench"));
    cmd.args(args).env_remove("DABENCH_INJECT");
    if let Some(inject) = inject {
        cmd.env("DABENCH_INJECT", inject);
    }
    let out = cmd.output().expect("binary runs");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn run(args: &[&str]) -> Run {
    run_with(args, None)
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dabench-cli-gen-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn list_tiers_names_all_five() {
    let r = run(&["gen", "--list-tiers"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    for tier in ["baby", "easy", "medium", "hard", "cosmic"] {
        assert!(
            r.stdout.contains(tier),
            "missing tier {tier}:\n{}",
            r.stdout
        );
    }
}

#[test]
fn unknown_tier_is_a_structured_error() {
    let r = run(&["gen", "--tier", "galactic"]);
    assert_eq!(r.code, Some(1));
    assert!(r.stderr.contains("unknown tier `galactic`"), "{}", r.stderr);
    assert!(r.stderr.contains("cosmic"), "error must list the tiers");
}

#[test]
fn output_is_byte_identical_across_jobs_and_shards() {
    // The acceptance bar: same tier+seed renders the same bytes at any
    // worker-thread count and across a multi-process sharded run.
    let base = &["gen", "--tier", "easy", "--seed", "7", "--count", "6"];
    let serial = run(&[base as &[&str], &["--jobs", "1"]].concat());
    assert_eq!(serial.code, Some(0), "{}", serial.stderr);
    let parallel = run(&[base as &[&str], &["--jobs", "8"]].concat());
    assert_eq!(parallel.code, Some(0), "{}", parallel.stderr);
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--jobs must not perturb gen output"
    );

    let dir = temp_dir("shards");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let sharded = run(&[base as &[&str], &["--shards", "3", "--run-dir", dir_s]].concat());
    assert_eq!(sharded.code, Some(0), "{}", sharded.stderr);
    assert_eq!(
        serial.stdout, sharded.stdout,
        "--shards must not perturb gen output"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_point_then_resume_is_byte_identical_to_a_clean_run() {
    // Fail one scenario (injected device fault), then resume: the
    // journaled scenarios replay, only the failed one re-runs, and the
    // final bytes match an uninterrupted run exactly.
    let base = &["gen", "--tier", "baby", "--seed", "42", "--count", "6"];
    let clean = run(&[base as &[&str], &["--jobs", "1"]].concat());
    assert_eq!(clean.code, Some(0), "{}", clean.stderr);

    let dir = temp_dir("resume");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let broken = run_with(
        &[base as &[&str], &["--jobs", "1", "--run-dir", dir_s]].concat(),
        Some("gen:baby:s42:i3=err:device_fault"),
    );
    assert_eq!(broken.code, Some(2), "injected failure: {}", broken.stderr);
    assert!(broken.stderr.contains("1 failed"), "{}", broken.stderr);

    let resumed = run(&[base as &[&str], &["--jobs", "1", "--resume", dir_s]].concat());
    assert_eq!(resumed.code, Some(0), "{}", resumed.stderr);
    assert_eq!(
        clean.stdout, resumed.stdout,
        "resumed population must render the clean run's bytes"
    );
    assert!(
        resumed.stderr.contains("replayed from journal"),
        "resume must account for the journaled scenarios: {}",
        resumed.stderr
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_worker_death_is_survived_by_a_respawn() {
    // A shard worker dies (injected exit) on its first attempt at one
    // generated scenario; the supervisor respawns it, the respawned
    // worker counts the spent life and completes — final bytes identical
    // to a clean single-process run. The crash-safe-journal property of
    // docs/sharding.md applied to a generated population.
    let base = &["gen", "--tier", "baby", "--seed", "42", "--count", "6"];
    let clean = run(&[base as &[&str], &["--jobs", "1"]].concat());
    assert_eq!(clean.code, Some(0), "{}", clean.stderr);

    let dir = temp_dir("respawn");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let survived = run_with(
        &[
            base as &[&str],
            &["--shards", "2", "--run-dir", dir_s, "--max-respawns", "2"],
        ]
        .concat(),
        Some("gen:baby:s42:i3=exit:7:1"),
    );
    assert_eq!(survived.code, Some(0), "{}", survived.stderr);
    assert_eq!(
        clean.stdout, survived.stdout,
        "a respawned shard fleet must render the clean run's bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_tier_passes_its_invariants() {
    for tier in ["baby", "easy", "medium", "hard", "cosmic"] {
        let r = run(&["gen", "--tier", tier, "--seed", "11", "--count", "12"]);
        assert_eq!(r.code, Some(0), "tier {tier}: {}", r.stderr);
        assert!(
            !r.stderr.contains("invariant violated"),
            "tier {tier}: {}",
            r.stderr
        );
        assert!(r.stdout.contains("Platform ranking"), "tier {tier}");
        assert!(r.stdout.contains("Metamorphic invariants"), "tier {tier}");
    }
}

#[test]
fn violate_injection_exits_4_and_names_the_invariant() {
    // `DABENCH_INJECT=gen=violate:<name>` perturbs one observation so
    // the named invariant must fail loudly — proof the checker is wired
    // to the exit code, for every invariant in the catalog.
    for invariant in [
        "fault_monotone",
        "fp8_kv_smaller",
        "batch_monotone",
        "oom_wall_consistent",
        "seed_determinism",
    ] {
        let r = run_with(
            &["gen", "--tier", "baby", "--seed", "1", "--count", "2"],
            Some(&format!("gen=violate:{invariant}")),
        );
        assert_eq!(r.code, Some(4), "{invariant}: {}", r.stderr);
        assert!(
            r.stderr
                .contains(&format!("invariant violated: {invariant}")),
            "{invariant} not named in stderr:\n{}",
            r.stderr
        );
    }
}

#[test]
fn unknown_violate_target_is_rejected_at_parse_time() {
    let r = run_with(
        &["gen", "--tier", "baby", "--count", "1"],
        Some("gen=violate:nonsense"),
    );
    assert_eq!(r.code, Some(1), "{}", r.stderr);
    assert!(r.stderr.contains("unknown invariant"), "{}", r.stderr);
}
