//! Integration tests of the supervised `dabench all` run: panic isolation,
//! deadlines, and crash-safe resume (see docs/supervision.md).
//!
//! Failure injection uses the `DABENCH_INJECT` test hook
//! (`<experiment>=panic` / `<experiment>=sleep:SECS`), so no bug has to be
//! planted in an experiment to observe the supervisor working.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

/// Run `dabench` with `DABENCH_INJECT` scrubbed (or set to `inject`).
fn run(args: &[&str], inject: Option<&str>) -> Run {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dabench"));
    cmd.args(args).env_remove("DABENCH_INJECT");
    if let Some(inject) = inject {
        cmd.env("DABENCH_INJECT", inject);
    }
    let out = cmd.output().expect("binary runs");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dabench-cli-supervise-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn injected_panic_does_not_abort_the_sweep() {
    let r = run(&["all"], Some("fig9=panic"));
    // Partial failure: exit code 2, not a crash and not success.
    assert_eq!(r.code, Some(2), "{}", r.stderr);
    // The other artifacts still rendered.
    assert!(r.stdout.contains("Table I"), "table1 missing");
    assert!(r.stdout.contains("Fig. 12"), "fig12 missing");
    assert!(
        !r.stdout.contains("Fig. 9"),
        "panicked point printed output"
    );
    // The report names the point and the panic.
    assert!(r.stderr.contains("1 panicked"), "{}", r.stderr);
    assert!(r.stderr.contains("[ panicked] fig9"), "{}", r.stderr);
    assert!(r.stderr.contains("injected failure"), "{}", r.stderr);
}

#[test]
fn deadline_overrun_is_reported_and_abandoned() {
    let started = std::time::Instant::now();
    let r = run(&["all", "--deadline-s", "0.5"], Some("fig11=sleep:30"));
    // The watchdog abandoned the sleeping point: the whole run finishes
    // far sooner than the 30 s sleep.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(20),
        "run did not abandon the sleeping point"
    );
    assert_eq!(r.code, Some(2), "{}", r.stderr);
    assert!(r.stderr.contains("1 timed out"), "{}", r.stderr);
    assert!(
        r.stderr
            .contains("[timed-out] fig11: exceeded 0.5 s deadline"),
        "{}",
        r.stderr
    );
    assert!(
        !r.stdout.contains("Fig. 11"),
        "timed-out point printed output"
    );
}

#[test]
fn resume_after_partial_run_is_byte_identical() {
    let clean = run(&["all"], None);
    assert_eq!(clean.code, Some(0), "{}", clean.stderr);

    for jobs in ["1", "4"] {
        let dir = temp_dir(&format!("resume-j{jobs}"));
        let dir_s = dir.to_str().expect("utf-8 temp path");

        // Partial run: fig9 panics, everything else lands in the journal.
        let partial = run(
            &["all", "--run-dir", dir_s, "--jobs", jobs],
            Some("fig9=panic"),
        );
        assert_eq!(partial.code, Some(2), "{}", partial.stderr);

        // Resume without the injection: only fig9 re-runs, and stdout is
        // byte-identical to an uninterrupted clean run.
        let resumed = run(&["all", "--resume", dir_s, "--jobs", jobs], None);
        assert_eq!(resumed.code, Some(0), "{}", resumed.stderr);
        assert_eq!(
            resumed.stdout, clean.stdout,
            "resumed stdout differs at --jobs {jobs}"
        );
        assert!(
            resumed.stderr.contains("10 from journal"),
            "{}",
            resumed.stderr
        );
        // The one-line resume accounting: fig9's failed record makes it
        // an adopted (re-run) point, the other ten replay verbatim.
        assert!(
            resumed
                .stderr
                .contains("resume: 10 replayed from journal, 1 adopted (re-run), 0 abandoned"),
            "{}",
            resumed.stderr
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncated_trailing_journal_line_is_reported_and_healed() {
    let dir = temp_dir("truncated");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let clean = run(&["all"], None);

    let partial = run(&["all", "--run-dir", dir_s], Some("fig9=panic"));
    assert_eq!(partial.code, Some(2), "{}", partial.stderr);

    // Chop bytes off the final record, as a SIGKILL mid-append would.
    let journal = dir.join("journal.jsonl");
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&journal)
        .expect("journal exists");
    let mut contents = String::new();
    file.read_to_string(&mut contents).expect("read journal");
    file.set_len(contents.len() as u64 - 9).expect("truncate");

    let resumed = run(&["all", "--resume", dir_s], None);
    assert_eq!(resumed.code, Some(0), "{}", resumed.stderr);
    assert!(
        resumed
            .stderr
            .contains("discarded truncated journal record"),
        "{}",
        resumed.stderr
    );
    assert!(
        resumed.stderr.contains("1 abandoned (truncated tail)"),
        "{}",
        resumed.stderr
    );
    assert_eq!(
        resumed.stdout, clean.stdout,
        "healed resume must still match"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_file_corruption_is_a_hard_error() {
    let dir = temp_dir("corrupt");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let first = run(&["all", "--run-dir", dir_s], None);
    assert_eq!(first.code, Some(0), "{}", first.stderr);

    // Flip bytes in the middle of the journal: real corruption, not the
    // benign truncated-tail case.
    let journal = dir.join("journal.jsonl");
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&journal)
        .expect("journal exists");
    // Stray quotes break the record's string structure outright.
    file.seek(SeekFrom::Start(80)).expect("seek");
    file.write_all(b"\"##\"").expect("corrupt");
    drop(file);

    let resumed = run(&["all", "--resume", dir_s], None);
    assert_eq!(resumed.code, Some(1), "{}", resumed.stderr);
    assert!(
        resumed.stderr.contains("corrupt journal record at line"),
        "{}",
        resumed.stderr
    );
    assert!(
        resumed.stderr.contains("byte offset") && resumed.stderr.contains("hex"),
        "corruption errors must locate the damage: {}",
        resumed.stderr
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_dir_refuses_to_clobber_an_existing_journal() {
    let dir = temp_dir("clobber");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let first = run(&["all", "--run-dir", dir_s], None);
    assert_eq!(first.code, Some(0), "{}", first.stderr);

    let second = run(&["all", "--run-dir", dir_s], None);
    assert_eq!(second.code, Some(1), "{}", second.stderr);
    assert!(second.stderr.contains("--resume"), "{}", second.stderr);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_all_matches_per_command_output() {
    // The supervision layer must not perturb stdout: `all` is still the
    // concatenation of each experiment's own output, in paper order.
    let all = run(&["all"], None);
    assert_eq!(all.code, Some(0), "{}", all.stderr);
    let table1 = run(&["table1"], None);
    assert!(all.stdout.starts_with(&table1.stdout), "table1 must lead");
    assert!(
        all.stderr.contains("11 points — 11 completed"),
        "{}",
        all.stderr
    );
}

#[test]
fn trace_and_metrics_are_byte_identical_across_jobs() {
    // docs/observability.md: tracing must not perturb determinism — the
    // Chrome trace, the metrics table, and stdout are identical at any
    // worker count.
    let dir = temp_dir("trace-jobs");
    std::fs::create_dir_all(&dir).expect("trace dir");
    let p1 = dir.join("t1.json");
    let p4 = dir.join("t4.json");
    let trace = |jobs: &str, path: &std::path::Path| {
        run(
            &[
                "all",
                "--trace-out",
                path.to_str().expect("utf-8 temp path"),
                "--metrics",
                "--jobs",
                jobs,
            ],
            None,
        )
    };
    let r1 = trace("1", &p1);
    let r4 = trace("4", &p4);
    assert_eq!(r1.code, Some(0), "{}", r1.stderr);
    assert_eq!(r4.code, Some(0), "{}", r4.stderr);
    assert_eq!(r1.stdout, r4.stdout, "stdout depends on --jobs");
    assert_eq!(r1.stderr, r4.stderr, "metrics table depends on --jobs");
    let t1 = std::fs::read_to_string(&p1).expect("trace 1");
    let t4 = std::fs::read_to_string(&p4).expect("trace 4");
    assert_eq!(t1, t4, "trace depends on --jobs");
    // The trace covers all four platforms and is structurally a Chrome
    // trace_event document (CI additionally json-parses it).
    assert!(t1.starts_with("{\"traceEvents\":["), "{}", &t1[..40]);
    assert!(t1.trim_end().ends_with('}'));
    for needle in ["wse.compile", "rdu.execute", "ipu.bsp", "gpu.megatron"] {
        assert!(t1.contains(needle), "{needle} missing from trace");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_run_replays_identical_trace_and_metrics() {
    let files = temp_dir("trace-files");
    std::fs::create_dir_all(&files).expect("trace dir");
    let clean_t = files.join("clean.json");
    let clean = run(
        &[
            "all",
            "--trace-out",
            clean_t.to_str().expect("utf-8 temp path"),
            "--metrics",
        ],
        None,
    );
    assert_eq!(clean.code, Some(0), "{}", clean.stderr);

    // Partial traced run: fig9 panics, the other ten journal both their
    // output and their metrics digest.
    let dir = temp_dir("trace-resume");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let partial = run(
        &["all", "--run-dir", dir_s, "--metrics"],
        Some("fig9=panic"),
    );
    assert_eq!(partial.code, Some(2), "{}", partial.stderr);

    // Resume re-runs only fig9; replayed points contribute their journaled
    // digests, so the trace is byte-identical to the uninterrupted run's.
    let resumed_t = files.join("resumed.json");
    let resumed = run(
        &[
            "all",
            "--resume",
            dir_s,
            "--trace-out",
            resumed_t.to_str().expect("utf-8 temp path"),
            "--metrics",
        ],
        None,
    );
    assert_eq!(resumed.code, Some(0), "{}", resumed.stderr);
    assert_eq!(resumed.stdout, clean.stdout, "resumed stdout differs");
    assert_eq!(
        std::fs::read_to_string(&resumed_t).expect("resumed trace"),
        std::fs::read_to_string(&clean_t).expect("clean trace"),
        "resumed trace differs from an uninterrupted traced run"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&files);
}

#[test]
fn failed_points_leave_no_events_in_the_trace() {
    let dir = temp_dir("trace-failed");
    std::fs::create_dir_all(&dir).expect("trace dir");
    let path = dir.join("t.json");
    let r = run(
        &[
            "all",
            "--trace-out",
            path.to_str().expect("utf-8 temp path"),
        ],
        Some("fig12=panic"),
    );
    assert_eq!(r.code, Some(2), "{}", r.stderr);
    let trace = std::fs::read_to_string(&path).expect("trace");
    // fig12 is experiment index 10, so its point contexts all start with
    // path component 10; none may survive the panic.
    assert!(
        !trace.contains("\"point 10"),
        "panicked point leaked events into the trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_supervision_flags_are_reported() {
    for (args, needle) in [
        (vec!["all", "--deadline-s", "abc"], "--deadline-s"),
        (vec!["all", "--deadline-s", "-1"], "--deadline-s"),
        (vec!["all", "--max-retries", "x"], "--max-retries"),
        (vec!["all", "--frobnicate"], "unknown flag"),
        (vec!["all", "--run-dir"], "needs a value"),
    ] {
        let r = run(&args, None);
        assert_eq!(r.code, Some(1), "{args:?}");
        assert!(r.stderr.contains(needle), "{args:?}: {}", r.stderr);
    }
    let r = run(&["all"], Some("fig9=explode"));
    assert_eq!(r.code, Some(1), "{}", r.stderr);
    assert!(r.stderr.contains("DABENCH_INJECT"), "{}", r.stderr);
}

#[test]
fn injected_error_exhausts_retries_and_is_reported() {
    let r = run(&["all"], Some("table1=err:device_fault"));
    assert_eq!(r.code, Some(2), "{}", r.stderr);
    assert!(
        !r.stdout.contains("Table I:"),
        "failed point printed output"
    );
    assert!(r.stdout.contains("Fig. 12"), "other points still rendered");
    assert!(r.stderr.contains("1 failed"), "{}", r.stderr);
    assert!(
        r.stderr.contains("device fault on `injected`"),
        "{}",
        r.stderr
    );
    assert!(r.stderr.contains("DABENCH_INJECT"), "{}", r.stderr);
}

#[test]
fn injected_error_clears_within_the_retry_budget() {
    let clean = run(&["table1"], None);
    assert_eq!(clean.code, Some(0), "{}", clean.stderr);

    // Two injected transient faults, two retries: the third attempt
    // succeeds and the output is byte-identical to an uninjected run.
    let r = run(
        &["all", "--max-retries", "2"],
        Some("table1=err:device_fault:2"),
    );
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert!(
        r.stdout.starts_with(&clean.stdout),
        "retried point must render byte-identically"
    );
    assert!(r.stderr.contains("11 completed"), "{}", r.stderr);

    // One retry is not enough for two injected faults.
    let short = run(
        &["all", "--max-retries", "1"],
        Some("table1=err:device_fault:2"),
    );
    assert_eq!(short.code, Some(2), "{}", short.stderr);
    assert!(short.stderr.contains("after 1 retry"), "{}", short.stderr);
}

#[test]
fn malformed_err_injection_clause_is_rejected() {
    let r = run(&["all"], Some("table1=err:gremlins"));
    assert_eq!(r.code, Some(1), "{}", r.stderr);
    assert!(r.stderr.contains("unknown error kind"), "{}", r.stderr);
}
