//! Integration tests for `dabench bench`: report determinism across
//! `--jobs`, the `--baseline`/`--gate` regression gate (exit code 3), the
//! `DABENCH_INJECT` slowdown hook, and `--record` trajectory accumulation.
//!
//! Everything here runs the real binary, like `cli.rs` and `golden.rs`.

use std::path::PathBuf;
use std::process::Command;

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run_env(args: &[&str], env: &[(&str, &str)]) -> Run {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dabench"));
    cmd.args(args)
        .env_remove("DABENCH_INJECT")
        .env_remove("DABENCH_JOBS");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn run(args: &[&str]) -> Run {
    run_env(args, &[])
}

/// Unique scratch path per test so the harness's parallel test threads
/// never share a report file (the bench runner carries trajectory state
/// over from an existing `--out` file).
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dabench_bench_test_{}_{name}", std::process::id()))
}

/// Zero out timing-derived fields; same normalization as the golden shape
/// test, duplicated here because test binaries cannot share helpers.
fn normalize(json: &str) -> String {
    const KEYS: [&str; 5] = ["kept", "median_ns", "mad_ns", "min_ns", "max_ns"];
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    'outer: while !rest.is_empty() {
        for key in KEYS {
            let tag = format!("\"{key}\":");
            if let Some(tail) = rest.strip_prefix(&tag) {
                out.push_str(&tag);
                out.push('0');
                rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
                continue 'outer;
            }
        }
        let c = rest.chars().next().unwrap();
        out.push(c);
        rest = &rest[c.len_utf8()..];
    }
    out
}

#[test]
fn report_structure_is_jobs_invariant() {
    // The full quick suite at --jobs 1 and --jobs 4 must agree on every
    // non-timing byte of the report: same benchmarks, plans, phase span
    // counts and counter totals. par_map collects in input order, so the
    // profile pass sees identical traces at any worker count.
    let out1 = scratch("jobs1.json");
    let out4 = scratch("jobs4.json");
    let _ = std::fs::remove_file(&out1);
    let _ = std::fs::remove_file(&out4);

    let r1 = run(&[
        "bench",
        "--quick",
        "--jobs",
        "1",
        "--out",
        out1.to_str().unwrap(),
    ]);
    assert_eq!(r1.code, Some(0), "{}", r1.stderr);
    let r4 = run(&[
        "bench",
        "--quick",
        "--jobs",
        "4",
        "--out",
        out4.to_str().unwrap(),
    ]);
    assert_eq!(r4.code, Some(0), "{}", r4.stderr);

    let j1 = std::fs::read_to_string(&out1).expect("jobs=1 report");
    let j4 = std::fs::read_to_string(&out4).expect("jobs=4 report");
    let _ = std::fs::remove_file(&out1);
    let _ = std::fs::remove_file(&out4);
    assert_eq!(
        normalize(&j1),
        normalize(&j4),
        "non-timing report fields must be byte-identical across --jobs"
    );
}

#[test]
fn self_baseline_passes_the_gate() {
    let base = scratch("selfbase.json");
    let cur = scratch("selfcur.json");
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);

    let r = run(&[
        "bench",
        "--quick",
        "--filter",
        "fig7",
        "--out",
        base.to_str().unwrap(),
    ]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    // A re-run of the same workload must sit within a 200% gate of itself
    // even on a noisy host.
    let r = run(&[
        "bench",
        "--quick",
        "--filter",
        "fig7",
        "--out",
        cur.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
        "--gate",
        "200",
    ]);
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);
    assert_eq!(r.code, Some(0), "self-compare must pass: {}", r.stderr);
    assert!(!r.stderr.contains("regression:"), "{}", r.stderr);
}

#[test]
fn injected_slowdown_trips_the_gate() {
    let base = scratch("injbase.json");
    let cur = scratch("injcur.json");
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);

    let r = run(&[
        "bench",
        "--quick",
        "--filter",
        "fig7",
        "--out",
        base.to_str().unwrap(),
    ]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    // A 50 ms sleep injected into every timed sample dwarfs fig7's
    // millisecond-scale median; the gate must fail with exit code 3.
    let r = run_env(
        &[
            "bench",
            "--quick",
            "--filter",
            "fig7",
            "--out",
            cur.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
            "--gate",
            "50",
        ],
        &[("DABENCH_INJECT", "fig7=sleep:0.05")],
    );
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);
    assert_eq!(
        r.code,
        Some(3),
        "stdout: {}\nstderr: {}",
        r.stdout,
        r.stderr
    );
    assert!(r.stderr.contains("regression: fig7"), "{}", r.stderr);
}

#[test]
fn record_accumulates_trajectory_across_runs() {
    let out = scratch("traj.json");
    let _ = std::fs::remove_file(&out);

    let r = run(&[
        "bench",
        "--quick",
        "--filter",
        "fig7",
        "--out",
        out.to_str().unwrap(),
        "--record",
        "first-pass",
    ]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    let r = run(&[
        "bench",
        "--quick",
        "--filter",
        "fig7",
        "--out",
        out.to_str().unwrap(),
        "--record",
        "second-pass",
    ]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);

    let json = std::fs::read_to_string(&out).expect("report written");
    let _ = std::fs::remove_file(&out);
    assert!(json.contains("\"label\":\"first-pass\""), "{json}");
    assert!(json.contains("\"label\":\"second-pass\""), "{json}");
}

#[test]
fn unknown_filter_is_an_error() {
    let out = scratch("nomatch.json");
    let _ = std::fs::remove_file(&out);
    let r = run(&[
        "bench",
        "--quick",
        "--filter",
        "nosuchbench",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(r.code, Some(1), "stderr: {}", r.stderr);
    assert!(!out.exists(), "no report should be written");
}
