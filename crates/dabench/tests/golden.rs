//! Golden snapshot tests: exact-byte pins of user-facing renderings.
//!
//! Each test runs the real `dabench` binary and diffs its output against a
//! checked-in snapshot under `tests/golden/`. Any change to a rendering —
//! down to a single character — fails the suite, so formatting and numeric
//! regressions cannot slip through a review unnoticed.
//!
//! To accept an intentional change, regenerate the snapshots:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dabench --test golden
//! ```
//!
//! then review the diff like any other code change (see tests/README.md).

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run(args: &[&str]) -> Run {
    let out = Command::new(env!("CARGO_BIN_EXE_dabench"))
        .args(args)
        .env_remove("DABENCH_INJECT")
        .output()
        .expect("binary runs");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Diff `actual` against `tests/golden/<name>`, or rewrite the snapshot
/// when `UPDATE_GOLDEN` is set. Failure messages point at the first
/// differing line so a one-character drift is easy to locate.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test -p dabench --test golden",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mismatch = expected
        .lines()
        .zip(actual.lines())
        .position(|(e, a)| e != a)
        .map(|i| {
            format!(
                "first difference at line {}:\n  golden: {:?}\n  actual: {:?}",
                i + 1,
                expected.lines().nth(i).unwrap_or(""),
                actual.lines().nth(i).unwrap_or(""),
            )
        })
        .unwrap_or_else(|| {
            format!(
                "line counts differ: golden {} vs actual {}",
                expected.lines().count(),
                actual.lines().count()
            )
        });
    panic!(
        "output differs from golden snapshot {name}\n{mismatch}\n\
         if the change is intentional: UPDATE_GOLDEN=1 cargo test -p dabench --test golden"
    );
}

/// Zero out every timing-derived field (`kept`, `median_ns`, `mad_ns`,
/// `min_ns`, `max_ns`) so a BENCH report can be pinned as a golden
/// snapshot: what remains — schema, benchmark set and order, plans,
/// phases, counters, trajectory labels — is fully deterministic.
fn normalize_bench_timings(json: &str) -> String {
    const KEYS: [&str; 5] = ["kept", "median_ns", "mad_ns", "min_ns", "max_ns"];
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    'outer: while !rest.is_empty() {
        for key in KEYS {
            let tag = format!("\"{key}\":");
            if let Some(tail) = rest.strip_prefix(&tag) {
                out.push_str(&tag);
                out.push('0');
                rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
                continue 'outer;
            }
        }
        let c = rest.chars().next().unwrap();
        out.push(c);
        rest = &rest[c.len_utf8()..];
    }
    out
}

#[test]
fn check_scorecard_matches_golden() {
    let r = run(&["check"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("check.stdout.golden", &r.stdout);
}

#[test]
fn table1_rendering_matches_golden() {
    let r = run(&["table1"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("table1.stdout.golden", &r.stdout);
}

#[test]
fn table3_rendering_matches_golden() {
    let r = run(&["table3"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("table3.stdout.golden", &r.stdout);
}

#[test]
fn bench_list_matches_golden() {
    let r = run(&["bench", "--list"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("bench_list.stdout.golden", &r.stdout);
}

#[test]
fn bench_report_shape_matches_golden() {
    // Pins the BENCH_sweeps.json structure end to end — schema string, the
    // benchmark roster in suite order, iteration plans, per-phase span
    // counts and obs counter totals from the profile pass — with the
    // machine-dependent timings normalized to zero.
    let out =
        std::env::temp_dir().join(format!("dabench_golden_bench_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let r = run(&["bench", "--quick", "--out", out.to_str().unwrap()]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    let json = std::fs::read_to_string(&out).expect("report written");
    let _ = std::fs::remove_file(&out);
    assert_golden("bench_report.shape.golden", &normalize_bench_timings(&json));
}

#[test]
fn infer_rendering_matches_golden() {
    // Pins both serving tables — the batch × prompt × KV-precision sweep
    // (including the OOM cells at the WSE/GPU capacity walls) and the
    // static-vs-continuous batching comparison.
    let r = run(&["infer"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("infer.stdout.golden", &r.stdout);
}

#[test]
fn infer_csv_matches_golden() {
    let r = run(&["csv", "infer"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("infer.csv.golden", &r.stdout);
}

#[test]
fn gen_tier_list_matches_golden() {
    let r = run(&["gen", "--list-tiers"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("gen_tiers.stdout.golden", &r.stdout);
}

#[test]
fn gen_baby_population_matches_golden() {
    // Pins the whole `dabench gen` rendering end to end: the sampled
    // population table (the seed-42 baby scenarios), every gen-v1 record,
    // the results matrix, the Elo/Pareto ranking report, and the
    // invariant summary. Any drift in the sampler, the platform models,
    // or the report shapes fails here first.
    let r = run(&["gen", "--tier", "baby", "--count", "8", "--seed", "42"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("gen_baby.stdout.golden", &r.stdout);
}

#[test]
fn gen_csv_matches_golden() {
    let r = run(&["csv", "gen"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("gen.csv.golden", &r.stdout);
}

#[test]
fn check_metrics_table_matches_golden() {
    // Pins the observability layer end to end: phase attribution, counter
    // totals, span counts, and the table format itself. The model is
    // analytic, so these figures are bit-stable across runs and hosts.
    let r = run(&["check", "--metrics"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("check.metrics.golden", &r.stderr);
}
