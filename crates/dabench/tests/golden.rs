//! Golden snapshot tests: exact-byte pins of user-facing renderings.
//!
//! Each test runs the real `dabench` binary and diffs its output against a
//! checked-in snapshot under `tests/golden/`. Any change to a rendering —
//! down to a single character — fails the suite, so formatting and numeric
//! regressions cannot slip through a review unnoticed.
//!
//! To accept an intentional change, regenerate the snapshots:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dabench --test golden
//! ```
//!
//! then review the diff like any other code change (see tests/README.md).

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn run(args: &[&str]) -> Run {
    let out = Command::new(env!("CARGO_BIN_EXE_dabench"))
        .args(args)
        .env_remove("DABENCH_INJECT")
        .output()
        .expect("binary runs");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Diff `actual` against `tests/golden/<name>`, or rewrite the snapshot
/// when `UPDATE_GOLDEN` is set. Failure messages point at the first
/// differing line so a one-character drift is easy to locate.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test -p dabench --test golden",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mismatch = expected
        .lines()
        .zip(actual.lines())
        .position(|(e, a)| e != a)
        .map(|i| {
            format!(
                "first difference at line {}:\n  golden: {:?}\n  actual: {:?}",
                i + 1,
                expected.lines().nth(i).unwrap_or(""),
                actual.lines().nth(i).unwrap_or(""),
            )
        })
        .unwrap_or_else(|| {
            format!(
                "line counts differ: golden {} vs actual {}",
                expected.lines().count(),
                actual.lines().count()
            )
        });
    panic!(
        "output differs from golden snapshot {name}\n{mismatch}\n\
         if the change is intentional: UPDATE_GOLDEN=1 cargo test -p dabench --test golden"
    );
}

#[test]
fn check_scorecard_matches_golden() {
    let r = run(&["check"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("check.stdout.golden", &r.stdout);
}

#[test]
fn table1_rendering_matches_golden() {
    let r = run(&["table1"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("table1.stdout.golden", &r.stdout);
}

#[test]
fn table3_rendering_matches_golden() {
    let r = run(&["table3"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("table3.stdout.golden", &r.stdout);
}

#[test]
fn check_metrics_table_matches_golden() {
    // Pins the observability layer end to end: phase attribution, counter
    // totals, span counts, and the table format itself. The model is
    // analytic, so these figures are bit-stable across runs and hosts.
    let r = run(&["check", "--metrics"]);
    assert_eq!(r.code, Some(0), "{}", r.stderr);
    assert_golden("check.metrics.golden", &r.stderr);
}
