//! Determinism guarantees of the parallel runner and the tier-1 cache,
//! exercised against the real platform models.

use dabench::core::{cache_stats, par_map_with, tier1, tier1_cached};
use dabench::faults::{render_report, resilience_sweep, PlanSpec};
use dabench::ipu::Ipu;
use dabench::model::{ModelConfig, Precision, TrainingWorkload};
use dabench::rdu::{CompilationMode, Rdu};
use dabench::wse::Wse;

fn probe() -> TrainingWorkload {
    TrainingWorkload::new(ModelConfig::gpt2_probe(768, 6), 16, 1024, Precision::Fp16)
}

#[test]
fn cached_tier1_equals_cold_run_on_every_platform() {
    let w = probe();
    let wse = Wse::default();
    let rdu = Rdu::with_mode(CompilationMode::O3);
    let ipu = Ipu::default();

    assert_eq!(tier1_cached(&wse, &w), tier1::run(&wse, &w));
    assert_eq!(tier1_cached(&rdu, &w), tier1::run(&rdu, &w));
    assert_eq!(tier1_cached(&ipu, &w), tier1::run(&ipu, &w));

    // Hits are PartialEq-equal to the first (cold) result.
    assert_eq!(tier1_cached(&wse, &w), tier1_cached(&wse, &w));
    assert!(cache_stats().hits > 0);
}

#[test]
fn cached_errors_match_cold_errors() {
    // 78 layers OOMs the WSE; the cache must replay the error too.
    let big = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 78), 16, 1024, Precision::Fp16);
    let wse = Wse::default();
    assert_eq!(tier1_cached(&wse, &big), tier1::run(&wse, &big));
    assert_eq!(tier1_cached(&wse, &big), tier1_cached(&wse, &big));
}

#[test]
fn resilience_sweep_is_seed_deterministic_under_parallelism() {
    let w = probe();
    let wse = Wse::default();
    let spec = PlanSpec::default();
    let a = resilience_sweep(&wse, &w, &spec, 42);
    let b = resilience_sweep(&wse, &w, &spec, 42);
    assert_eq!(a, b);
    assert_eq!(render_report(&a), render_report(&b));
    assert_ne!(a, resilience_sweep(&wse, &w, &spec, 43));
}

#[test]
fn par_map_with_matches_sequential_for_experiment_shaped_work() {
    let items: Vec<u64> = (0..40).collect();
    let sequential: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
    for workers in [1, 2, 4, 16] {
        assert_eq!(
            par_map_with(workers, &items, |&x| x * x + 1),
            sequential,
            "workers={workers}"
        );
    }
}
