//! Generic operator-fusion pass.
//!
//! Dataflow compilers fuse elementwise and normalization operators into
//! their producing/consuming GEMMs before mapping (SambaFlow's O1 mode is
//! the paper's example). This module provides a reusable pass: fuse every
//! non-matmul node into an adjacent matmul group when the connection is a
//! simple chain, and report the resulting groups.

use crate::graph::{DataflowGraph, NodeId};
use serde::{Deserialize, Serialize};

/// One fusion group: a matmul anchor plus absorbed neighbours.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionGroup {
    /// Anchor node (a matmul, or a standalone non-fusable node).
    pub anchor: NodeId,
    /// All members including the anchor, in topological order.
    pub members: Vec<NodeId>,
}

impl FusionGroup {
    /// Total FLOPs of the group.
    #[must_use]
    pub fn flops(&self, g: &DataflowGraph) -> f64 {
        self.members.iter().map(|&id| g.op(id).flops()).sum()
    }
}

/// Fuse chains of non-matmul operators into their downstream matmul (or,
/// failing that, their upstream one). Nodes with fan-out > 1 stay
/// unfused anchors — duplicating work across consumers is never profitable
/// in a spatial fabric.
///
/// The result partitions every node into exactly one group.
///
/// # Example
///
/// ```
/// use dabench_graph::{fuse::fuse_into_matmuls, GraphBuilder};
/// use dabench_model::ModelConfig;
///
/// let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 2), 2, 128);
/// let groups = fuse_into_matmuls(&g);
/// // Fusion shrinks the schedulable unit count well below the node count.
/// assert!(groups.len() < g.node_count());
/// let covered: usize = groups.iter().map(|gr| gr.members.len()).sum();
/// assert_eq!(covered, g.node_count());
/// ```
#[must_use]
pub fn fuse_into_matmuls(g: &DataflowGraph) -> Vec<FusionGroup> {
    let order = g.topological_order();
    let n = g.node_count();
    // group_of[i] = anchor index each node is assigned to, or usize::MAX.
    let mut group_of: Vec<usize> = vec![usize::MAX; n];

    // Pass 1: every matmul anchors its own group.
    for &NodeId(i) in &order {
        if g.op(NodeId(i)).class().is_matmul() {
            group_of[i] = i;
        }
    }

    // Pass 2 (forward): absorb a non-matmul into its single consumer's
    // group when it has exactly one consumer that is already grouped…
    // walk reverse topological order so chains collapse transitively.
    for &NodeId(i) in order.iter().rev() {
        if group_of[i] != usize::MAX {
            continue;
        }
        let succs = g.succs(NodeId(i));
        if succs.len() == 1 && group_of[succs[0].0] != usize::MAX {
            group_of[i] = group_of[succs[0].0];
        }
    }
    // Pass 3 (backward): remaining nodes try their single producer.
    for &NodeId(i) in &order {
        if group_of[i] != usize::MAX {
            continue;
        }
        let preds = g.preds(NodeId(i));
        if preds.len() == 1 && group_of[preds[0].0] != usize::MAX {
            group_of[i] = group_of[preds[0].0];
        }
    }
    // Pass 4: anything left anchors itself.
    for (i, g) in group_of.iter_mut().enumerate().take(n) {
        if *g == usize::MAX {
            *g = i;
        }
    }

    // Materialize groups in topological order of their anchors.
    let mut groups: Vec<FusionGroup> = Vec::new();
    let mut slot_of_anchor: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for &NodeId(i) in &order {
        let anchor = group_of[i];
        let slot = *slot_of_anchor.entry(anchor).or_insert_with(|| {
            groups.push(FusionGroup {
                anchor: NodeId(anchor),
                members: Vec::new(),
            });
            groups.len() - 1
        });
        groups[slot].members.push(NodeId(i));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use dabench_model::ops::OpClass;
    use dabench_model::ModelConfig;

    fn g() -> DataflowGraph {
        GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 2), 2, 128)
    }

    #[test]
    fn groups_partition_the_graph() {
        let g = g();
        let groups = fuse_into_matmuls(&g);
        let mut seen = vec![false; g.node_count()];
        for gr in &groups {
            for &NodeId(i) in &gr.members {
                assert!(!seen[i], "node {i} in two groups");
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn norms_fuse_into_their_gemms() {
        let g = g();
        let groups = fuse_into_matmuls(&g);
        // norm1.fwd has exactly one consumer (qkv) → fused with it.
        let norm = g.find("l0.norm1.fwd").unwrap();
        let qkv = g.find("l0.qkv_proj.fwd").unwrap();
        let of = |id: NodeId| {
            groups
                .iter()
                .position(|gr| gr.members.contains(&id))
                .unwrap()
        };
        assert_eq!(of(norm), of(qkv));
    }

    #[test]
    fn flops_are_conserved() {
        let g = g();
        let groups = fuse_into_matmuls(&g);
        let sum: f64 = groups.iter().map(|gr| gr.flops(&g)).sum();
        assert!((sum - g.total_flops()).abs() / g.total_flops() < 1e-12);
    }

    #[test]
    fn anchors_are_mostly_matmuls() {
        let g = g();
        let groups = fuse_into_matmuls(&g);
        let matmul_anchored = groups
            .iter()
            .filter(|gr| g.op(gr.anchor).class().is_matmul())
            .count();
        assert!(
            matmul_anchored * 2 > groups.len(),
            "{matmul_anchored}/{}",
            groups.len()
        );
    }

    #[test]
    fn fan_out_nodes_do_not_duplicate() {
        // Residual-add outputs feed two consumers; the add must appear in
        // exactly one group (checked by the partition test) and stays with
        // either its producer or itself.
        let g = g();
        let groups = fuse_into_matmuls(&g);
        let resid = g.find("l0.residual1.fwd").unwrap();
        let count = groups
            .iter()
            .filter(|gr| gr.members.contains(&resid))
            .count();
        assert_eq!(count, 1);
        let _ = OpClass::ResidualAdd; // silence unused import on some cfgs
    }
}
