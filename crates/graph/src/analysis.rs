//! Graph statistics and structural analysis.

use crate::graph::{DataflowGraph, NodeId};
use dabench_model::ops::{OpClass, Phase};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate statistics of a dataflow graph.
///
/// # Example
///
/// ```
/// use dabench_graph::{analysis::GraphStats, GraphBuilder};
/// use dabench_model::ModelConfig;
///
/// let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 2), 4, 256);
/// let stats = GraphStats::of(&g);
/// assert!(stats.matmul_flops_fraction() > 0.9);
/// assert!(stats.depth > 20); // fwd + bwd chains of a 2-layer stack
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Total FLOPs.
    pub total_flops: f64,
    /// FLOPs on dense matmul operators.
    pub matmul_flops: f64,
    /// FLOPs per phase.
    pub flops_by_phase: Vec<(String, f64)>,
    /// Node count per operator class.
    pub nodes_by_class: Vec<(String, usize)>,
    /// Length of the critical path in operators (levels).
    pub depth: usize,
    /// Maximum number of nodes sharing one level (graph parallelism).
    pub max_width: usize,
    /// FLOPs along the heaviest dependency path.
    pub critical_path_flops: f64,
}

impl GraphStats {
    /// Compute statistics of `g`.
    #[must_use]
    pub fn of(g: &DataflowGraph) -> Self {
        let mut by_class: BTreeMap<OpClass, usize> = BTreeMap::new();
        let mut by_phase: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut matmul = 0.0;
        for (_, op) in g.iter() {
            *by_class.entry(op.class()).or_default() += 1;
            let phase = match op.phase() {
                Phase::Forward => "forward",
                Phase::Backward => "backward",
                Phase::Update => "update",
            };
            *by_phase.entry(phase).or_default() += op.flops();
            if op.class().is_matmul() {
                matmul += op.flops();
            }
        }
        let levels = g.levels();
        let depth = levels.iter().copied().max().map_or(0, |d| d + 1);
        let mut width = vec![0usize; depth];
        for &l in &levels {
            width[l] += 1;
        }
        Self {
            nodes: g.node_count(),
            edges: g.edge_count(),
            total_flops: g.total_flops(),
            matmul_flops: matmul,
            flops_by_phase: by_phase
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            nodes_by_class: by_class
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            depth,
            max_width: width.into_iter().max().unwrap_or(0),
            critical_path_flops: g.critical_path_flops(),
        }
    }

    /// Fraction of FLOPs in dense matmuls (`0..=1`).
    #[must_use]
    pub fn matmul_flops_fraction(&self) -> f64 {
        if self.total_flops > 0.0 {
            self.matmul_flops / self.total_flops
        } else {
            0.0
        }
    }

    /// Available graph parallelism: total FLOPs over critical-path FLOPs.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        if self.critical_path_flops > 0.0 {
            self.total_flops / self.critical_path_flops
        } else {
            0.0
        }
    }
}

/// Ids of the producers whose outputs cross from `left` into its
/// complement when the graph is split at a topological position: the cut
/// tensors a section-style executor must spill.
#[must_use]
pub fn frontier_at(g: &DataflowGraph, left: &[NodeId]) -> Vec<NodeId> {
    let set: std::collections::HashSet<NodeId> = left.iter().copied().collect();
    left.iter()
        .copied()
        .filter(|&id| g.succs(id).iter().any(|s| !set.contains(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use dabench_model::ModelConfig;

    fn g() -> DataflowGraph {
        GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 3), 2, 256)
    }

    #[test]
    fn stats_are_consistent() {
        let g = g();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, g.node_count());
        assert_eq!(s.edges, g.edge_count());
        let phase_sum: f64 = s.flops_by_phase.iter().map(|(_, f)| f).sum();
        assert!((phase_sum - s.total_flops).abs() / s.total_flops < 1e-12);
        let class_sum: usize = s.nodes_by_class.iter().map(|(_, n)| n).sum();
        assert_eq!(class_sum, s.nodes);
    }

    #[test]
    fn backward_flops_double_forward() {
        let s = GraphStats::of(&g());
        let get = |p: &str| {
            s.flops_by_phase
                .iter()
                .find(|(k, _)| k == p)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!((get("backward") / get("forward") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn depth_grows_with_layers() {
        let s2 = GraphStats::of(&GraphBuilder::training_step(
            &ModelConfig::gpt2_probe(768, 2),
            1,
            64,
        ));
        let s4 = GraphStats::of(&GraphBuilder::training_step(
            &ModelConfig::gpt2_probe(768, 4),
            1,
            64,
        ));
        assert!(s4.depth > s2.depth);
    }

    #[test]
    fn parallelism_is_modest_for_sequential_models() {
        // A decoder stack is mostly a chain; parallelism comes from the
        // residual branches and weight-gradient ops.
        let s = GraphStats::of(&g());
        let p = s.parallelism();
        assert!((1.0..4.0).contains(&p), "{p}");
    }

    #[test]
    fn frontier_detects_cut_tensors() {
        let g = g();
        let order = g.topological_order();
        let left: Vec<_> = order[..order.len() / 2].to_vec();
        let frontier = frontier_at(&g, &left);
        assert!(!frontier.is_empty());
        // Every frontier node has at least one successor outside the cut.
        let set: std::collections::HashSet<_> = left.iter().copied().collect();
        for id in frontier {
            assert!(g.succs(id).iter().any(|s| !set.contains(s)));
        }
    }
}
