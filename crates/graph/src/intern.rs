//! String interning for operator names.
//!
//! Every node name in a [`crate::DataflowGraph`] is stored once, in a
//! single contiguous buffer, and referred to by a dense [`Symbol`] id.
//! Interning removes the per-op `String` allocations of the legacy graph
//! representation and turns name lookups into integer comparisons: two
//! symbols are equal iff their strings are equal.

use std::collections::HashMap;

/// Interned handle to an operator name.
///
/// Symbols are dense (`0..interner.len()`), `Copy`, and cheap to hash;
/// they are only meaningful relative to the [`Interner`] that produced
/// them. Resolve back to text with [`Interner::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// A symbol table: strings in, dense [`Symbol`] ids out.
///
/// All interned text lives in one shared `String` buffer; per-symbol
/// storage is a `(offset, len)` span. Lookup is a 64-bit FNV-1a hash into
/// open buckets with a full string compare on candidates, so distinct
/// strings can never collapse onto one symbol.
///
/// # Example
///
/// ```
/// use dabench_graph::intern::Interner;
///
/// let mut t = Interner::new();
/// let a = t.intern("l0.qkv_proj.fwd");
/// let b = t.intern("l0.qkv_proj.fwd");
/// assert_eq!(a, b); // dedup: same text, same symbol
/// assert_eq!(t.resolve(a), "l0.qkv_proj.fwd");
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    buf: String,
    spans: Vec<(u32, u32)>,
    buckets: HashMap<u64, Vec<u32>>,
}

/// 64-bit FNV-1a over the bytes of `s`.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Interner {
    /// An empty symbol table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table pre-sized for roughly `names` symbols of average
    /// length `avg_len` bytes.
    #[must_use]
    pub fn with_capacity(names: usize, avg_len: usize) -> Self {
        Self {
            buf: String::with_capacity(names * avg_len),
            spans: Vec::with_capacity(names),
            buckets: HashMap::with_capacity(names),
        }
    }

    /// Intern `s`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        let h = fnv1a(s);
        if let Some(ids) = self.buckets.get(&h) {
            for &id in ids {
                if self.span_str(id) == s {
                    return Symbol(id);
                }
            }
        }
        let id = u32::try_from(self.spans.len()).expect("interner overflow");
        let start = u32::try_from(self.buf.len()).expect("interner buffer overflow");
        self.buf.push_str(s);
        let len = u32::try_from(s.len()).expect("name too long");
        self.spans.push((start, len));
        self.buckets.entry(h).or_default().push(id);
        Symbol(id)
    }

    /// Look up `s` without inserting it.
    #[must_use]
    pub fn get(&self, s: &str) -> Option<Symbol> {
        let ids = self.buckets.get(&fnv1a(s))?;
        ids.iter()
            .copied()
            .find(|&id| self.span_str(id) == s)
            .map(Symbol)
    }

    /// The text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.span_str(sym.0)
    }

    /// Number of distinct interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn span_str(&self, id: u32) -> &str {
        let (start, len) = self.spans[id as usize];
        &self.buf[start as usize..(start + len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_dedup() {
        let mut t = Interner::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = Interner::new();
        assert_eq!(t.get("x"), None);
        let x = t.intern("x");
        assert_eq!(t.get("x"), Some(x));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut t = Interner::new();
        for i in 0..100 {
            let sym = t.intern(&format!("name{i}"));
            assert_eq!(sym, Symbol(i));
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut t = Interner::new();
        let e = t.intern("");
        assert_eq!(t.resolve(e), "");
        assert_eq!(t.intern(""), e);
    }
}
