//! # dabench-graph
//!
//! Dataflow computation-graph IR for LLM training workloads.
//!
//! Dataflow accelerators represent a program as a computation graph whose
//! nodes are operators and whose edges are data dependencies; compilers then
//! map that graph onto the chip (whole-graph on the Cerebras WSE-2,
//! section-by-section on the SambaNova RDU, layer-pipelined on the Graphcore
//! IPU). This crate provides the graph those mappers consume:
//!
//! - [`DataflowGraph`]: an immutable DAG with exact dependency edges
//!   (sequential chains, residual skips, backward mirrors,
//!   gradient→optimizer edges). Node attributes live in contiguous arenas
//!   and names are interned ([`intern::Symbol`]); nodes are accessed
//!   through the [`NodeRef`] view. The shared topology can be re-costed
//!   cheaply ([`DataflowGraph::with_costs`]) for incremental
//!   recompilation across sweep points.
//! - [`GraphBuilder`]: constructs the training-step graph of a model from
//!   allocation-free operator records.
//! - [`intern`]: the symbol table behind every node name.
//! - [`partition`]: reusable contiguous/weighted partitioning utilities used
//!   by the platform compilers.
//! - [`analysis`]: graph statistics (depth, width, per-phase FLOPs).
//! - [`fuse`]: a generic operator-fusion pass (the O1-style transform).
//! - [`dot`]: Graphviz export for debugging.
//!
//! # Example
//!
//! ```
//! use dabench_graph::GraphBuilder;
//! use dabench_model::ModelConfig;
//!
//! let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 2), 4, 256);
//! assert!(g.validate().is_ok());
//! let order = g.topological_order();
//! assert_eq!(order.len(), g.node_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
pub mod dot;
pub mod fuse;
mod graph;
pub mod intern;
pub mod partition;

pub use builder::{class_nodes, layer_nodes, GraphBuilder};
pub use graph::{DataflowGraph, GraphError, NodeId, NodeRef, StepSummary};
pub use intern::{Interner, Symbol};
