//! Graphviz (DOT) export for dataflow graphs.

use crate::graph::DataflowGraph;
use dabench_model::ops::Phase;
use std::fmt::Write as _;

/// Render `g` as a Graphviz `digraph`.
///
/// Forward nodes are drawn as boxes, backward nodes as ellipses and the
/// optimizer as a diamond; the output is valid input for `dot -Tsvg`.
///
/// # Example
///
/// ```
/// use dabench_graph::{dot, GraphBuilder};
/// use dabench_model::ModelConfig;
///
/// let g = GraphBuilder::training_step(&ModelConfig::gpt2_mini(), 1, 32);
/// let text = dot::to_dot(&g, "gpt2_mini_step");
/// assert!(text.starts_with("digraph gpt2_mini_step"));
/// ```
#[must_use]
pub fn to_dot(g: &DataflowGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for (id, op) in g.iter() {
        let shape = match op.phase() {
            Phase::Forward => "box",
            Phase::Backward => "ellipse",
            Phase::Update => "diamond",
        };
        // Labels resolve through the graph's interner: real operator
        // names, never raw symbol ids.
        let _ = writeln!(
            out,
            "  {id} [label=\"{}\\n{:.2e} FLOPs\" shape={shape}];",
            op.name(),
            op.flops()
        );
    }
    for id in g.node_ids() {
        for &s in g.succs(id) {
            let _ = writeln!(out, "  {id} -> {s};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use dabench_model::ModelConfig;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 1), 1, 32);
        let text = to_dot(&g, "t");
        assert_eq!(
            text.matches(" -> ").count(),
            g.edge_count(),
            "every edge rendered"
        );
        assert!(text.contains("embedding.fwd"));
        assert!(text.contains("optimizer.upd"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn labels_are_resolved_names_not_symbol_ids() {
        // Node lines carry the interned name resolved back to text; a raw
        // symbol rendering would look like "label=\"12\\n…\"".
        let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 1), 1, 32);
        let text = to_dot(&g, "t");
        let id = g.find("l0.qkv_proj.fwd").unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("l0.qkv_proj.fwd"))
            .expect("qkv node rendered by name");
        assert!(
            line.starts_with(&format!("  {id} [label=\"l0.qkv_proj.fwd\\n")),
            "{line}"
        );
        assert!(line.ends_with("shape=box];"), "{line}");
    }

    #[test]
    fn shapes_reflect_phases() {
        let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 1), 1, 32);
        let text = to_dot(&g, "t");
        assert!(text.contains("shape=box"));
        assert!(text.contains("shape=ellipse"));
        assert!(text.contains("shape=diamond"));
    }
}
