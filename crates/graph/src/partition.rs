//! Generic partitioning utilities shared by the platform compilers.
//!
//! The RDU compiler cuts the operator graph into *sections*, the IPU
//! compiler groups layers into *pipeline stages*. Both reduce to the same
//! primitive: split a weighted sequence into contiguous groups subject to a
//! balance or capacity objective.

use serde::{Deserialize, Serialize};

/// A contiguous partition of `0..n` into groups, stored as group boundaries.
///
/// # Example
///
/// ```
/// use dabench_graph::partition::Partition;
/// let p = Partition::from_sizes(&[2, 3]).unwrap();
/// assert_eq!(p.group_of(4), Some(1));
/// assert_eq!(p.groups().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Exclusive end index of each group; the last entry equals `n`.
    ends: Vec<usize>,
}

impl Partition {
    /// Build a partition from per-group sizes.
    ///
    /// Returns `None` if any size is zero.
    #[must_use]
    pub fn from_sizes(sizes: &[usize]) -> Option<Self> {
        if sizes.contains(&0) {
            return None;
        }
        let mut ends = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in sizes {
            acc += s;
            ends.push(acc);
        }
        Some(Self { ends })
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.ends.len()
    }

    /// Total number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ends.last().copied().unwrap_or(0)
    }

    /// Whether the partition covers no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the group containing item `i`, if in range.
    #[must_use]
    pub fn group_of(&self, i: usize) -> Option<usize> {
        if i >= self.len() {
            return None;
        }
        Some(self.ends.partition_point(|&e| e <= i))
    }

    /// Iterate over `(start, end)` half-open ranges of each group.
    pub fn groups(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ends.iter().scan(0usize, |start, &end| {
            let s = *start;
            *start = end;
            Some((s, end))
        })
    }

    /// Sizes of each group.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.groups().map(|(s, e)| e - s).collect()
    }
}

/// Split `weights` into exactly `k` contiguous groups minimizing the maximum
/// group weight (classic linear-partition problem, solved by parametric
/// search over the bottleneck value).
///
/// Returns `None` when `k == 0` or `k > weights.len()`.
///
/// # Example
///
/// ```
/// use dabench_graph::partition::balanced_contiguous;
/// let p = balanced_contiguous(&[1.0, 1.0, 1.0, 9.0], 2).unwrap();
/// // Best split isolates the heavy item.
/// assert_eq!(p.sizes(), vec![3, 1]);
/// ```
#[must_use]
pub fn balanced_contiguous(weights: &[f64], k: usize) -> Option<Partition> {
    let n = weights.len();
    if k == 0 || k > n {
        return None;
    }
    let total: f64 = weights.iter().sum();
    let max_w = weights.iter().fold(0.0f64, |a, &b| a.max(b));
    let (mut lo, mut hi) = (max_w, total);
    // Count groups needed if no group may exceed `cap` (greedy is optimal
    // for the feasibility question).
    let groups_needed = |cap: f64| -> usize {
        let mut groups = 1;
        let mut acc = 0.0;
        for &w in weights {
            if acc + w > cap {
                groups += 1;
                acc = w;
            } else {
                acc += w;
            }
        }
        groups
    };
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if groups_needed(mid) <= k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // Materialize a partition at bottleneck `hi` (greedy emits at most k
    // groups because the feasibility check passed at this cap), then split
    // the largest groups until exactly k remain.
    let mut sizes = Vec::with_capacity(k);
    let mut acc = 0.0;
    let mut count = 0usize;
    for &w in weights {
        if acc + w > hi * (1.0 + 1e-9) && count > 0 {
            sizes.push(count);
            acc = w;
            count = 1;
        } else {
            acc += w;
            count += 1;
        }
    }
    sizes.push(count);
    while sizes.len() < k {
        // Degenerate: split the largest group of size > 1.
        let (idx, _) = sizes
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 1)
            .max_by_key(|(_, &s)| s)?;
        sizes[idx] -= 1;
        sizes.insert(idx + 1, 1);
    }
    Partition::from_sizes(&sizes)
}

/// Split `weights` into contiguous groups such that no group exceeds
/// `capacity`, using first-fit. Items heavier than `capacity` get a group
/// of their own (the caller decides whether that is an error).
///
/// # Example
///
/// ```
/// use dabench_graph::partition::capacity_contiguous;
/// let p = capacity_contiguous(&[3.0, 3.0, 3.0, 3.0], 6.0);
/// assert_eq!(p.sizes(), vec![2, 2]);
/// ```
#[must_use]
pub fn capacity_contiguous(weights: &[f64], capacity: f64) -> Partition {
    let mut sizes = Vec::new();
    let mut acc = 0.0;
    let mut count = 0usize;
    for &w in weights {
        if count > 0 && acc + w > capacity {
            sizes.push(count);
            acc = w;
            count = 1;
        } else {
            acc += w;
            count += 1;
        }
    }
    if count > 0 {
        sizes.push(count);
    }
    Partition::from_sizes(&sizes).unwrap_or(Partition { ends: Vec::new() })
}

/// Maximum group weight of a partition over `weights`.
#[must_use]
pub fn bottleneck(p: &Partition, weights: &[f64]) -> f64 {
    p.groups()
        .map(|(s, e)| weights[s..e].iter().sum::<f64>())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sizes_rejects_zero() {
        assert!(Partition::from_sizes(&[1, 0, 2]).is_none());
    }

    #[test]
    fn group_of_boundaries() {
        let p = Partition::from_sizes(&[2, 2]).unwrap();
        assert_eq!(p.group_of(0), Some(0));
        assert_eq!(p.group_of(1), Some(0));
        assert_eq!(p.group_of(2), Some(1));
        assert_eq!(p.group_of(4), None);
    }

    #[test]
    fn balanced_uniform_is_even() {
        let w = vec![1.0; 12];
        let p = balanced_contiguous(&w, 4).unwrap();
        assert_eq!(p.sizes(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn balanced_respects_k() {
        let w = vec![5.0, 1.0, 1.0, 1.0, 1.0, 5.0];
        let p = balanced_contiguous(&w, 3).unwrap();
        assert_eq!(p.group_count(), 3);
        assert_eq!(p.len(), 6);
        assert!(bottleneck(&p, &w) <= 7.0 + 1e-9);
    }

    #[test]
    fn balanced_k_equals_n() {
        let w = vec![2.0, 4.0, 8.0];
        let p = balanced_contiguous(&w, 3).unwrap();
        assert_eq!(p.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn balanced_invalid_k() {
        assert!(balanced_contiguous(&[1.0], 0).is_none());
        assert!(balanced_contiguous(&[1.0], 2).is_none());
    }

    #[test]
    fn capacity_packs_greedily() {
        let p = capacity_contiguous(&[4.0, 4.0, 4.0, 4.0, 4.0], 8.0);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn capacity_oversized_item_isolated() {
        let p = capacity_contiguous(&[1.0, 100.0, 1.0], 10.0);
        assert_eq!(p.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn bottleneck_of_capacity_partition() {
        let w = [4.0, 4.0, 4.0, 4.0, 4.0];
        let p = capacity_contiguous(&w, 8.0);
        assert!((bottleneck(&p, &w) - 8.0).abs() < 1e-12);
    }
}
