//! The dataflow DAG type.
//!
//! Nodes live in contiguous arenas: one `Vec` per attribute (interned
//! name, class, phase, layer, cost) plus CSR adjacency, instead of a
//! `Vec<Op>` of heap-allocated names. The immutable *topology* (names,
//! classes, adjacency) is shared behind an `Arc` so that incremental
//! recompilation can re-cost an existing graph without rebuilding or
//! copying its structure (see [`DataflowGraph::with_costs`]).

use crate::intern::{Interner, Symbol};
use dabench_model::ops::{Op, OpClass, OpCost, Phase};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Index of a node in a [`DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors produced by graph construction and validation.
///
/// Variants carry the *resolved* operator name (looked up through the
/// graph's interner), never a raw symbol id, so error text stays
/// human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a cycle involving the named node.
    Cycle(String),
    /// An edge endpoint is out of range.
    InvalidNode(usize),
    /// Two nodes share a name.
    DuplicateName(String),
    /// A non-source node has no predecessors.
    Orphan(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle(n) => write!(f, "dependency cycle through node `{n}`"),
            GraphError::InvalidNode(i) => write!(f, "edge references missing node index {i}"),
            GraphError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            GraphError::Orphan(n) => write!(f, "non-source node `{n}` has no predecessors"),
        }
    }
}

impl Error for GraphError {}

/// Whole-step aggregate costs, accumulated once at graph construction in
/// node order (so floating-point sums are bitwise reproducible) and read
/// by the platform compilers instead of re-walking the operator list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepSummary {
    /// FLOPs over all nodes.
    pub total_flops: f64,
    /// FLOPs of nodes attributed to a decoder layer (`layer.is_some()`).
    pub layer_flops: f64,
    /// Forward-phase FLOPs of decoder layer 0.
    pub layer0_forward_flops: f64,
    /// Forward-phase output elements of decoder layer 0.
    pub layer0_forward_out_elems: u64,
    /// Output elements over all forward-phase nodes.
    pub forward_out_elems: u64,
    /// Forward output elements excluding attention-internal tensors
    /// (scores and softmax probabilities) — what a fused executor keeps.
    pub forward_out_elems_no_attn_internal: u64,
}

/// Immutable structure shared by every re-costing of one graph shape.
#[derive(Debug)]
struct Topology {
    interner: Interner,
    names: Vec<Symbol>,
    classes: Vec<OpClass>,
    phases: Vec<Phase>,
    layers: Vec<Option<u64>>,
    index: HashMap<Symbol, usize>,
    pred_off: Vec<u32>,
    pred_adj: Vec<NodeId>,
    succ_off: Vec<u32>,
    succ_adj: Vec<NodeId>,
    /// For each backward node, the id of its forward twin (same operator,
    /// `.fwd` suffix); `None` for forward/update nodes.
    fwd_twin: Vec<Option<NodeId>>,
}

/// Borrowed view of one node: identity plus cost, resolved on demand.
///
/// `Copy` and two words wide — pass it by value. Obtained from
/// [`DataflowGraph::op`] or [`DataflowGraph::iter`].
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'g> {
    g: &'g DataflowGraph,
    i: usize,
}

impl<'g> NodeRef<'g> {
    /// This node's id.
    #[must_use]
    pub fn id(self) -> NodeId {
        NodeId(self.i)
    }

    /// The operator name, resolved through the graph's interner.
    #[must_use]
    pub fn name(self) -> &'g str {
        self.g.topo.interner.resolve(self.g.topo.names[self.i])
    }

    /// The interned name symbol.
    #[must_use]
    pub fn symbol(self) -> Symbol {
        self.g.topo.names[self.i]
    }

    /// Operator class.
    #[must_use]
    pub fn class(self) -> OpClass {
        self.g.topo.classes[self.i]
    }

    /// Training phase.
    #[must_use]
    pub fn phase(self) -> Phase {
        self.g.topo.phases[self.i]
    }

    /// Decoder layer, if attributed to one.
    #[must_use]
    pub fn layer(self) -> Option<u64> {
        self.g.topo.layers[self.i]
    }

    /// The full cost record.
    #[must_use]
    pub fn cost(self) -> OpCost {
        self.g.costs[self.i]
    }

    /// FLOPs of this operator.
    #[must_use]
    pub fn flops(self) -> f64 {
        self.g.costs[self.i].flops
    }

    /// Parameter count.
    #[must_use]
    pub fn params(self) -> u64 {
        self.g.costs[self.i].params
    }

    /// Input tensor elements.
    #[must_use]
    pub fn in_elems(self) -> u64 {
        self.g.costs[self.i].in_elems
    }

    /// Output tensor elements.
    #[must_use]
    pub fn out_elems(self) -> u64 {
        self.g.costs[self.i].out_elems
    }

    /// Materialize an owned legacy [`Op`] (allocates the name).
    #[must_use]
    pub fn to_op(self) -> Op {
        let c = self.cost();
        Op {
            name: self.name().to_owned(),
            class: self.class(),
            phase: self.phase(),
            layer: self.layer(),
            flops: c.flops,
            params: c.params,
            in_elems: c.in_elems,
            out_elems: c.out_elems,
        }
    }
}

/// An immutable dataflow DAG whose nodes are LLM training operators.
///
/// Construct with [`DataflowGraph::from_parts`] or, for full training steps,
/// [`crate::GraphBuilder`]. Node attributes are stored in contiguous arenas
/// and names are interned ([`Symbol`]); edges point from producer to
/// consumer. Access a node through the [`NodeRef`] view.
///
/// # Example
///
/// ```
/// use dabench_graph::GraphBuilder;
/// use dabench_model::ModelConfig;
///
/// let g = GraphBuilder::training_step(&ModelConfig::gpt2_mini(), 1, 64);
/// // Every graph built by the builder is a valid DAG.
/// g.validate().unwrap();
/// assert!(g.total_flops() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DataflowGraph {
    topo: Arc<Topology>,
    costs: Vec<OpCost>,
    summary: StepSummary,
}

fn summarize(
    classes: &[OpClass],
    phases: &[Phase],
    layers: &[Option<u64>],
    costs: &[OpCost],
) -> StepSummary {
    let mut s = StepSummary {
        total_flops: 0.0,
        layer_flops: 0.0,
        layer0_forward_flops: 0.0,
        layer0_forward_out_elems: 0,
        forward_out_elems: 0,
        forward_out_elems_no_attn_internal: 0,
    };
    for i in 0..costs.len() {
        let c = costs[i];
        s.total_flops += c.flops;
        if layers[i].is_some() {
            s.layer_flops += c.flops;
        }
        if phases[i] == Phase::Forward {
            s.forward_out_elems += c.out_elems;
            if !matches!(classes[i], OpClass::AttnScores | OpClass::Softmax) {
                s.forward_out_elems_no_attn_internal += c.out_elems;
            }
            if layers[i] == Some(0) {
                s.layer0_forward_flops += c.flops;
                s.layer0_forward_out_elems += c.out_elems;
            }
        }
    }
    s
}

impl DataflowGraph {
    /// Build a graph from node payloads and (producer, consumer) edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidNode`] if an edge endpoint is out of
    /// range and [`GraphError::DuplicateName`] if node names collide.
    pub fn from_parts(nodes: Vec<Op>, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let n = nodes.len();
        let mut interner = Interner::with_capacity(n, 16);
        let mut names = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        let mut phases = Vec::with_capacity(n);
        let mut layers = Vec::with_capacity(n);
        let mut costs = Vec::with_capacity(n);
        for op in &nodes {
            names.push(interner.intern(&op.name));
            classes.push(op.class);
            phases.push(op.phase);
            layers.push(op.layer);
            costs.push(OpCost {
                flops: op.flops,
                params: op.params,
                in_elems: op.in_elems,
                out_elems: op.out_elems,
            });
        }
        Self::from_interned(interner, names, classes, phases, layers, costs, edges)
    }

    /// Build a graph directly from interned arenas (the builder fast path:
    /// no per-node `String` ever exists).
    ///
    /// # Errors
    ///
    /// Same contract as [`DataflowGraph::from_parts`].
    pub(crate) fn from_interned(
        interner: Interner,
        names: Vec<Symbol>,
        classes: Vec<OpClass>,
        phases: Vec<Phase>,
        layers: Vec<Option<u64>>,
        costs: Vec<OpCost>,
        edges: &[(usize, usize)],
    ) -> Result<Self, GraphError> {
        let n = names.len();
        let mut index = HashMap::with_capacity(n);
        for (i, &sym) in names.iter().enumerate() {
            if index.insert(sym, i).is_some() {
                return Err(GraphError::DuplicateName(interner.resolve(sym).to_owned()));
            }
        }
        for &(a, b) in edges {
            if a >= n {
                return Err(GraphError::InvalidNode(a));
            }
            if b >= n {
                return Err(GraphError::InvalidNode(b));
            }
        }
        // CSR adjacency, filled in edge input order so per-node neighbour
        // order matches the legacy Vec-of-Vecs push order exactly.
        let mut pred_deg = vec![0u32; n];
        let mut succ_deg = vec![0u32; n];
        for &(a, b) in edges {
            succ_deg[a] += 1;
            pred_deg[b] += 1;
        }
        let prefix = |deg: &[u32]| {
            let mut off = Vec::with_capacity(n + 1);
            let mut acc = 0u32;
            off.push(0);
            for &d in deg {
                acc += d;
                off.push(acc);
            }
            off
        };
        let pred_off = prefix(&pred_deg);
        let succ_off = prefix(&succ_deg);
        let mut pred_cur: Vec<u32> = pred_off[..n].to_vec();
        let mut succ_cur: Vec<u32> = succ_off[..n].to_vec();
        let mut pred_adj = vec![NodeId(0); edges.len()];
        let mut succ_adj = vec![NodeId(0); edges.len()];
        for &(a, b) in edges {
            succ_adj[succ_cur[a] as usize] = NodeId(b);
            succ_cur[a] += 1;
            pred_adj[pred_cur[b] as usize] = NodeId(a);
            pred_cur[b] += 1;
        }
        // Backward → forward twin links (`l0.qkv_proj.bwd` → `…fwd`).
        let mut buf = String::new();
        let fwd_twin: Vec<Option<NodeId>> = (0..n)
            .map(|i| {
                if phases[i] != Phase::Backward {
                    return None;
                }
                let stem = interner.resolve(names[i]).strip_suffix(".bwd")?;
                buf.clear();
                buf.push_str(stem);
                buf.push_str(".fwd");
                interner
                    .get(&buf)
                    .and_then(|s| index.get(&s).copied().map(NodeId))
            })
            .collect();
        let summary = summarize(&classes, &phases, &layers, &costs);
        Ok(Self {
            topo: Arc::new(Topology {
                interner,
                names,
                classes,
                phases,
                layers,
                index,
                pred_off,
                pred_adj,
                succ_off,
                succ_adj,
                fwd_twin,
            }),
            costs,
            summary,
        })
    }

    /// Re-cost this graph: identical topology (shared, not copied), new
    /// per-node costs. This is the incremental-recompilation patch path —
    /// adjacent sweep points share a graph shape and differ only in costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs` does not have exactly one entry per node.
    #[must_use]
    pub fn with_costs(&self, costs: Vec<OpCost>) -> Self {
        assert_eq!(
            costs.len(),
            self.node_count(),
            "cost vector must match node count"
        );
        let summary = summarize(
            &self.topo.classes,
            &self.topo.phases,
            &self.topo.layers,
            &costs,
        );
        Self {
            topo: Arc::clone(&self.topo),
            costs,
            summary,
        }
    }

    /// Whether `other` shares this graph's topology allocation (same
    /// `Arc`), i.e. was produced by [`DataflowGraph::with_costs`] or a
    /// clone. Used by tests and the compile cache's hit accounting.
    #[must_use]
    pub fn shares_topology(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.topo, &other.topo)
    }

    /// Aggregate step costs, accumulated once at construction.
    #[must_use]
    pub fn summary(&self) -> &StepSummary {
        &self.summary
    }

    /// Number of distinct interned names backing this graph.
    #[must_use]
    pub fn interned_symbol_count(&self) -> usize {
        self.topo.interner.len()
    }

    /// The forward twin of a backward node (`l0.qkv_proj.bwd` →
    /// `l0.qkv_proj.fwd`); `None` for forward/update nodes.
    #[must_use]
    pub fn forward_twin(&self, id: NodeId) -> Option<NodeId> {
        self.topo.fwd_twin[id.0]
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.topo.names.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.topo.succ_adj.len()
    }

    /// The operator at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn op(&self, id: NodeId) -> NodeRef<'_> {
        assert!(id.0 < self.node_count(), "node id out of range");
        NodeRef { g: self, i: id.0 }
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterate over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeRef<'_>)> {
        (0..self.node_count()).map(|i| (NodeId(i), NodeRef { g: self, i }))
    }

    /// Predecessors (producers) of `id`.
    #[must_use]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        let t = &self.topo;
        &t.pred_adj[t.pred_off[id.0] as usize..t.pred_off[id.0 + 1] as usize]
    }

    /// Successors (consumers) of `id`.
    #[must_use]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        let t = &self.topo;
        &t.succ_adj[t.succ_off[id.0] as usize..t.succ_off[id.0 + 1] as usize]
    }

    /// Find a node by exact operator name (constant-time: interner lookup
    /// plus one hash probe, no string scan over the node list).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        let sym = self.topo.interner.get(name)?;
        self.topo.index.get(&sym).copied().map(NodeId)
    }

    /// Total FLOPs over all nodes.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.costs.iter().map(|c| c.flops).sum()
    }

    /// A topological order of all nodes (Kahn's algorithm). Ties are broken
    /// by insertion order, so the result is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle; use [`DataflowGraph::validate`]
    /// first on untrusted input.
    #[must_use]
    pub fn topological_order(&self) -> Vec<NodeId> {
        self.try_topological_order()
            .expect("graph contains a cycle")
    }

    fn try_topological_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.node_count();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.preds(NodeId(i)).len()).collect();
        // A simple FIFO over a sorted frontier keeps the order stable.
        let mut frontier: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < frontier.len() {
            let u = frontier[head];
            head += 1;
            order.push(NodeId(u));
            for &NodeId(v) in self.succs(NodeId(u)) {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    frontier.push(v);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.topo.interner.resolve(self.topo.names[i]).to_owned())
                .unwrap_or_default();
            return Err(GraphError::Cycle(stuck));
        }
        Ok(order)
    }

    /// ASAP level of every node: sources are level 0, every other node is
    /// one more than its deepest predecessor. The maximum level + 1 is the
    /// graph's critical-path length in operators.
    #[must_use]
    pub fn levels(&self) -> Vec<usize> {
        let order = self.topological_order();
        let mut level = vec![0usize; self.node_count()];
        for &NodeId(u) in &order {
            for &NodeId(p) in self.preds(NodeId(u)) {
                level[u] = level[u].max(level[p] + 1);
            }
        }
        level
    }

    /// FLOPs along the heaviest dependency path.
    #[must_use]
    pub fn critical_path_flops(&self) -> f64 {
        let order = self.topological_order();
        let mut best = vec![0f64; self.node_count()];
        let mut max = 0.0f64;
        for &NodeId(u) in &order {
            let from_preds = self
                .preds(NodeId(u))
                .iter()
                .map(|&NodeId(p)| best[p])
                .fold(0.0, f64::max);
            best[u] = from_preds + self.costs[u].flops;
            max = max.max(best[u]);
        }
        max
    }

    /// Check structural invariants: DAG-ness and that every node except the
    /// designated sources is reachable from a producer.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.try_topological_order()?;
        Ok(())
    }

    /// Sum of FLOPs restricted to a node set.
    #[must_use]
    pub fn subset_flops(&self, ids: &[NodeId]) -> f64 {
        ids.iter().map(|&id| self.costs[id.0].flops).sum()
    }

    /// Number of edges crossing from `from` into `to` (data transferred
    /// between two partitions), measured in producer-tensor elements.
    #[must_use]
    pub fn cut_elems(&self, from: &[NodeId], to: &[NodeId]) -> u64 {
        let to_set: std::collections::HashSet<NodeId> = to.iter().copied().collect();
        let mut elems = 0;
        for &id in from {
            if self.succs(id).iter().any(|s| to_set.contains(s)) {
                elems += self.costs[id.0].out_elems;
            }
        }
        elems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::ops::{OpClass, Phase};

    fn mk_op(name: &str, flops: f64) -> Op {
        Op {
            name: name.to_owned(),
            class: OpClass::Norm,
            phase: Phase::Forward,
            layer: None,
            flops,
            params: 0,
            in_elems: 8,
            out_elems: 8,
        }
    }

    fn diamond() -> DataflowGraph {
        // a -> b, a -> c, b -> d, c -> d
        DataflowGraph::from_parts(
            vec![
                mk_op("a", 1.0),
                mk_op("b", 2.0),
                mk_op("c", 10.0),
                mk_op("d", 1.0),
            ],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, NodeId(n)) in order.iter().enumerate() {
                p[*n] = i;
            }
            p
        };
        assert!(pos[0] < pos[1]);
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[3]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let g =
            DataflowGraph::from_parts(vec![mk_op("a", 1.0), mk_op("b", 1.0)], &[(0, 1), (1, 0)])
                .unwrap();
        assert!(matches!(g.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = DataflowGraph::from_parts(vec![mk_op("a", 1.0), mk_op("a", 1.0)], &[]);
        assert!(matches!(err, Err(GraphError::DuplicateName(_))));
    }

    #[test]
    fn invalid_edge_rejected() {
        let err = DataflowGraph::from_parts(vec![mk_op("a", 1.0)], &[(0, 5)]);
        assert!(matches!(err, Err(GraphError::InvalidNode(5))));
    }

    #[test]
    fn critical_path_takes_heavy_branch() {
        let g = diamond();
        // a(1) -> c(10) -> d(1) = 12.
        assert!((g.critical_path_flops() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn levels_of_diamond() {
        let g = diamond();
        assert_eq!(g.levels(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn cut_counts_producer_tensors() {
        let g = diamond();
        let cut = g.cut_elems(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        // a feeds c (8 elems) and b feeds d (8 elems).
        assert_eq!(cut, 16);
    }

    #[test]
    fn find_by_name() {
        let g = diamond();
        assert_eq!(g.find("c"), Some(NodeId(2)));
        assert_eq!(g.find("zzz"), None);
    }

    #[test]
    fn error_messages_render_resolved_names() {
        // Every variant prints the operator's text name, never a symbol id.
        let cycle =
            DataflowGraph::from_parts(vec![mk_op("a", 1.0), mk_op("b", 1.0)], &[(0, 1), (1, 0)])
                .unwrap()
                .validate()
                .unwrap_err();
        assert_eq!(cycle.to_string(), "dependency cycle through node `a`");
        let dup =
            DataflowGraph::from_parts(vec![mk_op("x", 1.0), mk_op("x", 1.0)], &[]).unwrap_err();
        assert_eq!(dup.to_string(), "duplicate node name `x`");
        let invalid = DataflowGraph::from_parts(vec![mk_op("a", 1.0)], &[(0, 7)]).unwrap_err();
        assert_eq!(invalid.to_string(), "edge references missing node index 7");
        let orphan = GraphError::Orphan("l3.rope.fwd".to_owned());
        assert_eq!(
            orphan.to_string(),
            "non-source node `l3.rope.fwd` has no predecessors"
        );
    }

    #[test]
    fn node_ref_resolves_attributes() {
        let g = diamond();
        let c = g.op(NodeId(2));
        assert_eq!(c.name(), "c");
        assert_eq!(c.class(), OpClass::Norm);
        assert_eq!(c.phase(), Phase::Forward);
        assert_eq!(c.layer(), None);
        assert!((c.flops() - 10.0).abs() < 1e-12);
        assert_eq!(c.out_elems(), 8);
        let op = c.to_op();
        assert_eq!(op.name, "c");
    }

    #[test]
    fn with_costs_shares_topology_and_recosts() {
        let g = diamond();
        let costs: Vec<OpCost> = g
            .iter()
            .map(|(_, n)| OpCost {
                flops: n.flops() * 3.0,
                ..n.cost()
            })
            .collect();
        let h = g.with_costs(costs);
        assert!(g.shares_topology(&h));
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert!((h.total_flops() - 3.0 * g.total_flops()).abs() < 1e-9);
        assert!((h.summary().total_flops - h.total_flops()).abs() < 1e-9);
        // Topology queries are unchanged.
        assert_eq!(h.find("c"), Some(NodeId(2)));
        assert_eq!(h.succs(NodeId(0)), g.succs(NodeId(0)));
    }

    #[test]
    fn summary_matches_direct_sums() {
        let g = diamond();
        let s = g.summary();
        assert!((s.total_flops - g.total_flops()).abs() < 1e-12);
        assert_eq!(s.forward_out_elems, 32); // four forward nodes × 8
        assert_eq!(s.forward_out_elems_no_attn_internal, 32);
        assert_eq!(s.layer0_forward_out_elems, 0); // no layered nodes
    }

    #[test]
    fn forward_twin_links_backward_nodes() {
        let mut a = mk_op("l0.qkv_proj.fwd", 1.0);
        a.phase = Phase::Forward;
        let mut b = mk_op("l0.qkv_proj.bwd", 2.0);
        b.phase = Phase::Backward;
        let g = DataflowGraph::from_parts(vec![a, b], &[(0, 1)]).unwrap();
        assert_eq!(g.forward_twin(NodeId(1)), Some(NodeId(0)));
        assert_eq!(g.forward_twin(NodeId(0)), None);
    }

    #[test]
    fn interned_symbol_count_tracks_names() {
        let g = diamond();
        assert_eq!(g.interned_symbol_count(), 4);
    }
}
