//! The dataflow DAG type.

use dabench_model::ops::Op;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Index of a node in a [`DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors produced by graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a cycle involving the named node.
    Cycle(String),
    /// An edge endpoint is out of range.
    InvalidNode(usize),
    /// Two nodes share a name.
    DuplicateName(String),
    /// A non-source node has no predecessors.
    Orphan(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle(n) => write!(f, "dependency cycle through node `{n}`"),
            GraphError::InvalidNode(i) => write!(f, "edge references missing node index {i}"),
            GraphError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            GraphError::Orphan(n) => write!(f, "non-source node `{n}` has no predecessors"),
        }
    }
}

impl Error for GraphError {}

/// An immutable dataflow DAG whose nodes are LLM training operators.
///
/// Construct with [`DataflowGraph::from_parts`] or, for full training steps,
/// [`crate::GraphBuilder`]. Node payloads are [`Op`] values from
/// `dabench-model`; edges point from producer to consumer.
///
/// # Example
///
/// ```
/// use dabench_graph::GraphBuilder;
/// use dabench_model::ModelConfig;
///
/// let g = GraphBuilder::training_step(&ModelConfig::gpt2_mini(), 1, 64);
/// // Every graph built by the builder is a valid DAG.
/// g.validate().unwrap();
/// assert!(g.total_flops() > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataflowGraph {
    nodes: Vec<Op>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
}

impl DataflowGraph {
    /// Build a graph from node payloads and (producer, consumer) edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidNode`] if an edge endpoint is out of
    /// range and [`GraphError::DuplicateName`] if node names collide.
    pub fn from_parts(nodes: Vec<Op>, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let n = nodes.len();
        let mut seen = HashMap::with_capacity(n);
        for op in &nodes {
            if seen.insert(op.name.clone(), ()).is_some() {
                return Err(GraphError::DuplicateName(op.name.clone()));
            }
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n {
                return Err(GraphError::InvalidNode(a));
            }
            if b >= n {
                return Err(GraphError::InvalidNode(b));
            }
            succs[a].push(NodeId(b));
            preds[b].push(NodeId(a));
        }
        Ok(Self {
            nodes,
            preds,
            succs,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// The operator payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn op(&self, id: NodeId) -> &Op {
        &self.nodes[id.0]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterate over `(id, op)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Op)> {
        self.nodes.iter().enumerate().map(|(i, op)| (NodeId(i), op))
    }

    /// Predecessors (producers) of `id`.
    #[must_use]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.0]
    }

    /// Successors (consumers) of `id`.
    #[must_use]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.0]
    }

    /// Find a node by exact operator name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|op| op.name == name).map(NodeId)
    }

    /// Total FLOPs over all nodes.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|op| op.flops).sum()
    }

    /// A topological order of all nodes (Kahn's algorithm). Ties are broken
    /// by insertion order, so the result is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle; use [`DataflowGraph::validate`]
    /// first on untrusted input.
    #[must_use]
    pub fn topological_order(&self) -> Vec<NodeId> {
        self.try_topological_order()
            .expect("graph contains a cycle")
    }

    fn try_topological_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        // A simple FIFO over a sorted frontier keeps the order stable.
        let mut frontier: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < frontier.len() {
            let u = frontier[head];
            head += 1;
            order.push(NodeId(u));
            for &NodeId(v) in &self.succs[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    frontier.push(v);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(GraphError::Cycle(stuck));
        }
        Ok(order)
    }

    /// ASAP level of every node: sources are level 0, every other node is
    /// one more than its deepest predecessor. The maximum level + 1 is the
    /// graph's critical-path length in operators.
    #[must_use]
    pub fn levels(&self) -> Vec<usize> {
        let order = self.topological_order();
        let mut level = vec![0usize; self.nodes.len()];
        for &NodeId(u) in &order {
            for &NodeId(p) in &self.preds[u] {
                level[u] = level[u].max(level[p] + 1);
            }
        }
        level
    }

    /// FLOPs along the heaviest dependency path.
    #[must_use]
    pub fn critical_path_flops(&self) -> f64 {
        let order = self.topological_order();
        let mut best = vec![0f64; self.nodes.len()];
        let mut max = 0.0f64;
        for &NodeId(u) in &order {
            let from_preds = self.preds[u]
                .iter()
                .map(|&NodeId(p)| best[p])
                .fold(0.0, f64::max);
            best[u] = from_preds + self.nodes[u].flops;
            max = max.max(best[u]);
        }
        max
    }

    /// Check structural invariants: DAG-ness and that every node except the
    /// designated sources is reachable from a producer.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.try_topological_order()?;
        Ok(())
    }

    /// Sum of FLOPs restricted to a node set.
    #[must_use]
    pub fn subset_flops(&self, ids: &[NodeId]) -> f64 {
        ids.iter().map(|&id| self.op(id).flops).sum()
    }

    /// Number of edges crossing from `from` into `to` (data transferred
    /// between two partitions), measured in producer-tensor elements.
    #[must_use]
    pub fn cut_elems(&self, from: &[NodeId], to: &[NodeId]) -> u64 {
        let to_set: std::collections::HashSet<NodeId> = to.iter().copied().collect();
        let mut elems = 0;
        for &id in from {
            if self.succs(id).iter().any(|s| to_set.contains(s)) {
                elems += self.op(id).out_elems;
            }
        }
        elems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::ops::{OpClass, Phase};

    fn mk_op(name: &str, flops: f64) -> Op {
        Op {
            name: name.to_owned(),
            class: OpClass::Norm,
            phase: Phase::Forward,
            layer: None,
            flops,
            params: 0,
            in_elems: 8,
            out_elems: 8,
        }
    }

    fn diamond() -> DataflowGraph {
        // a -> b, a -> c, b -> d, c -> d
        DataflowGraph::from_parts(
            vec![
                mk_op("a", 1.0),
                mk_op("b", 2.0),
                mk_op("c", 10.0),
                mk_op("d", 1.0),
            ],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, NodeId(n)) in order.iter().enumerate() {
                p[*n] = i;
            }
            p
        };
        assert!(pos[0] < pos[1]);
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[3]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let g =
            DataflowGraph::from_parts(vec![mk_op("a", 1.0), mk_op("b", 1.0)], &[(0, 1), (1, 0)])
                .unwrap();
        assert!(matches!(g.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = DataflowGraph::from_parts(vec![mk_op("a", 1.0), mk_op("a", 1.0)], &[]);
        assert!(matches!(err, Err(GraphError::DuplicateName(_))));
    }

    #[test]
    fn invalid_edge_rejected() {
        let err = DataflowGraph::from_parts(vec![mk_op("a", 1.0)], &[(0, 5)]);
        assert!(matches!(err, Err(GraphError::InvalidNode(5))));
    }

    #[test]
    fn critical_path_takes_heavy_branch() {
        let g = diamond();
        // a(1) -> c(10) -> d(1) = 12.
        assert!((g.critical_path_flops() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn levels_of_diamond() {
        let g = diamond();
        assert_eq!(g.levels(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn cut_counts_producer_tensors() {
        let g = diamond();
        let cut = g.cut_elems(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        // a feeds c (8 elems) and b feeds d (8 elems).
        assert_eq!(cut, 16);
    }

    #[test]
    fn find_by_name() {
        let g = diamond();
        assert_eq!(g.find("c"), Some(NodeId(2)));
        assert_eq!(g.find("zzz"), None);
    }
}
