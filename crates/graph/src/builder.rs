//! Construction of training-step dataflow graphs.

use crate::graph::{DataflowGraph, NodeId, NodeRef};
use crate::intern::Interner;
use dabench_model::ops::{self, Op, OpClass, Phase};
use dabench_model::{ModelConfig, TrainingWorkload};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Builds [`DataflowGraph`]s for complete LLM training steps.
///
/// The builder consumes the allocation-free operator records from
/// [`dabench_model::ops::step_records`] and reconstructs the real
/// dependency structure:
///
/// - the forward chain (embedding → layer 0 → … → loss), including the
///   residual skip edges inside each decoder block;
/// - the backward chain mirroring it in reverse, with mirrored skips;
/// - gradient → optimizer edges from every parameterized backward op.
///
/// Names are rendered once into the graph's interner through a reused
/// scratch buffer; no per-op `String` is ever allocated on this path.
///
/// # Example
///
/// ```
/// use dabench_graph::GraphBuilder;
/// use dabench_model::ModelConfig;
///
/// let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 4), 2, 128);
/// // The residual add joins two producers: the skip and the out-projection.
/// let resid = g.find("l0.residual1.fwd").unwrap();
/// assert_eq!(g.preds(resid).len(), 2);
/// ```
#[derive(Debug)]
pub struct GraphBuilder;

/// Index of the forward op `l{l}.{label}.fwd`, or `None` when the model
/// family omits it (e.g. `rope` on learned-positional models).
fn layer_get(interner: &Interner, buf: &mut String, l: u64, label: &str) -> Option<usize> {
    buf.clear();
    let _ = write!(buf, "l{l}.{label}.fwd");
    interner.get(buf).map(|s| s.0 as usize)
}

/// Like [`layer_get`] but for ops every decoder block must have.
fn layer_at(interner: &Interner, buf: &mut String, l: u64, label: &str) -> usize {
    layer_get(interner, buf, l, label)
        .unwrap_or_else(|| panic!("op catalogue missing `l{l}.{label}.fwd`"))
}

impl GraphBuilder {
    /// Build the dataflow graph of one training step of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the generated op list violates graph invariants (this
    /// indicates a bug in the op catalogue, not user error).
    #[must_use]
    pub fn training_step(cfg: &ModelConfig, batch: u64, seq: u64) -> DataflowGraph {
        let records = ops::step_records(cfg, batch, seq);
        let n = records.len();

        // Intern every name in node order. All names are distinct, so the
        // interner assigns `Symbol(i)` to node `i` — name lookups during
        // edge construction resolve straight to node indices.
        let mut interner = Interner::with_capacity(n, 18);
        let mut names = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        let mut phases = Vec::with_capacity(n);
        let mut layers = Vec::with_capacity(n);
        let mut costs = Vec::with_capacity(n);
        let mut buf = String::new();
        for r in &records {
            r.write_name(&mut buf);
            names.push(interner.intern(&buf));
            classes.push(r.class);
            phases.push(r.phase);
            layers.push(r.layer);
            costs.push(r.cost);
        }

        // Record layout of `step_records`: forward ops 0..f, then the
        // backward ops as the forward list reversed (f..2f), then the
        // optimizer (2f). So the backward twin of forward op `i` sits at
        // `2f - 1 - i` — no name lookups needed for the mirror pass.
        let f = (n - 1) / 2;
        debug_assert_eq!(interner.resolve(names[f - 1]), "loss.fwd");
        debug_assert_eq!(interner.resolve(names[f]), "loss.bwd");
        debug_assert_eq!(interner.resolve(names[n - 1]), "optimizer.upd");
        let bwd_of = |i: usize| 2 * f - 1 - i;

        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(6 * n);

        // --- Forward chain with residual skips ---
        //
        // Inside a block the main path is
        //   in -> norm1 -> qkv -> [rope] -> scores -> softmax -> context
        //      -> out_proj -> residual1 -> norm2 -> mlp... -> residual2
        // with skips  in -> residual1  and  residual1 -> residual2.
        let mut prev_out = 0usize; // embedding.fwd
        debug_assert_eq!(interner.resolve(names[0]), "embedding.fwd");
        for l in 0..cfg.num_layers {
            let block_in = prev_out;
            let norm1 = layer_at(&interner, &mut buf, l, "norm1");
            edges.push((block_in, norm1));
            let mut cur = norm1;
            for label in [
                "qkv_proj",
                "rope",
                "attn_scores",
                "softmax",
                "attn_context",
                "out_proj",
            ] {
                if let Some(next) = layer_get(&interner, &mut buf, l, label) {
                    edges.push((cur, next));
                    cur = next;
                }
            }
            // residual1 <- out_proj + skip from block input.
            let resid1 = layer_at(&interner, &mut buf, l, "residual1");
            edges.push((cur, resid1));
            edges.push((block_in, resid1));

            let norm2 = layer_at(&interner, &mut buf, l, "norm2");
            edges.push((resid1, norm2));
            // MLP: up (and gate) feed the activation, activation feeds down.
            let mlp_up = layer_at(&interner, &mut buf, l, "mlp_up");
            edges.push((norm2, mlp_up));
            let act = layer_at(&interner, &mut buf, l, "act_fn");
            edges.push((mlp_up, act));
            if let Some(gate) = layer_get(&interner, &mut buf, l, "mlp_gate") {
                edges.push((norm2, gate));
                edges.push((gate, act));
            }
            let mlp_down = layer_at(&interner, &mut buf, l, "mlp_down");
            edges.push((act, mlp_down));
            let resid2 = layer_at(&interner, &mut buf, l, "residual2");
            edges.push((mlp_down, resid2));
            edges.push((resid1, resid2));
            prev_out = resid2;
        }
        // prev_out -> final_norm -> lm_head -> loss, by record position.
        edges.push((prev_out, f - 3));
        edges.push((f - 3, f - 2));
        edges.push((f - 2, f - 1));
        debug_assert_eq!(interner.resolve(names[f - 3]), "final_norm.fwd");

        // --- Backward: mirror every forward edge, reversed, between the
        //     corresponding .bwd nodes; seed from loss.fwd -> loss.bwd. ---
        let fwd_edges = edges.clone();
        edges.push((f - 1, f));
        for &(a, b) in &fwd_edges {
            edges.push((bwd_of(b), bwd_of(a)));
        }
        // The backward of a parameterized op also needs its forward input
        // activation; that dependency is already implied by program order on
        // real systems and by the mirrored edges here, so we do not add
        // duplicate activation edges.

        // --- Optimizer depends on every parameterized backward op. ---
        let opt = n - 1;
        for (i, r) in records.iter().enumerate() {
            if r.phase == Phase::Backward && r.cost.params > 0 {
                edges.push((i, opt));
            }
        }

        edges.sort_unstable();
        edges.dedup();

        DataflowGraph::from_interned(interner, names, classes, phases, layers, costs, &edges)
            .expect("builder produced invalid graph")
    }

    /// Build the graph for a [`TrainingWorkload`].
    #[must_use]
    pub fn for_workload(w: &TrainingWorkload) -> DataflowGraph {
        Self::training_step(w.model(), w.batch_size(), w.seq_len())
    }

    /// Build the forward-only subgraph (used by inference-style probes).
    #[must_use]
    pub fn forward_only(cfg: &ModelConfig, batch: u64, seq: u64) -> DataflowGraph {
        let full = Self::training_step(cfg, batch, seq);
        let (nodes, edges) = Self::subgraph_parts(&full, |op| op.phase() == Phase::Forward);
        DataflowGraph::from_parts(nodes, &edges).expect("forward subgraph invalid")
    }

    /// Build the prefill graph of an autoregressive inference step: the
    /// forward pass over the whole prompt with the training-only loss node
    /// removed (inference produces logits, not a loss).
    #[must_use]
    pub fn prefill(cfg: &ModelConfig, batch: u64, prompt_len: u64) -> DataflowGraph {
        let full = Self::training_step(cfg, batch, prompt_len);
        let (nodes, edges) = Self::subgraph_parts(&full, |op| {
            op.phase() == Phase::Forward && op.class() != OpClass::Loss
        });
        DataflowGraph::from_parts(nodes, &edges).expect("prefill subgraph invalid")
    }

    /// Build the operator graph of one decode step at context length
    /// `ctx`: a forward pass over a single new token per sequence, with
    /// the attention score/softmax/context operators re-scaled to attend
    /// over the `ctx`-position KV cache (their seq-1 accounting only
    /// covers the one new position).
    #[must_use]
    pub fn decode_step(cfg: &ModelConfig, batch: u64, ctx: u64) -> DataflowGraph {
        let full = Self::training_step(cfg, batch, 1);
        let (mut nodes, edges) = Self::subgraph_parts(&full, |op| {
            op.phase() == Phase::Forward && op.class() != OpClass::Loss
        });
        for op in &mut nodes {
            if matches!(
                op.class,
                OpClass::AttnScores | OpClass::Softmax | OpClass::AttnContext
            ) {
                op.flops *= ctx as f64;
                // Scores and probabilities span the whole cached context;
                // the context GEMM still emits one h-vector per sequence.
                if op.class != OpClass::AttnContext {
                    op.out_elems = op.out_elems.saturating_mul(ctx);
                }
            }
        }
        DataflowGraph::from_parts(nodes, &edges).expect("decode subgraph invalid")
    }

    /// Nodes and remapped edges of the induced subgraph of `full` on the
    /// ops satisfying `keep`.
    fn subgraph_parts(
        full: &DataflowGraph,
        keep: impl Fn(NodeRef<'_>) -> bool,
    ) -> (Vec<Op>, Vec<(usize, usize)>) {
        let kept: Vec<NodeId> = full
            .iter()
            .filter(|&(_, op)| keep(op))
            .map(|(id, _)| id)
            .collect();
        let remap: HashMap<NodeId, usize> =
            kept.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let nodes: Vec<Op> = kept.iter().map(|&id| full.op(id).to_op()).collect();
        let mut edges = Vec::new();
        for &id in &kept {
            for &s in full.succs(id) {
                if let (Some(&a), Some(&b)) = (remap.get(&id), remap.get(&s)) {
                    edges.push((a, b));
                }
            }
        }
        (nodes, edges)
    }
}

/// Convenience: ids of all nodes in `g` belonging to decoder layer `layer`.
#[must_use]
pub fn layer_nodes(g: &DataflowGraph, layer: u64) -> Vec<NodeId> {
    g.iter()
        .filter(|&(_, op)| op.layer() == Some(layer))
        .map(|(id, _)| id)
        .collect()
}

/// Convenience: ids of all nodes of a given class.
#[must_use]
pub fn class_nodes(g: &DataflowGraph, class: OpClass) -> Vec<NodeId> {
    g.iter()
        .filter(|&(_, op)| op.class() == class)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::Precision;

    fn g() -> DataflowGraph {
        GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 3), 2, 128)
    }

    #[test]
    fn graph_is_valid_dag() {
        g().validate().unwrap();
    }

    #[test]
    fn llama_graph_is_valid_dag() {
        GraphBuilder::training_step(&ModelConfig::llama2_probe(512, 2), 1, 64)
            .validate()
            .unwrap();
    }

    #[test]
    fn residual_skip_edges_exist() {
        let g = g();
        let r1 = g.find("l1.residual1.fwd").unwrap();
        let r2 = g.find("l1.residual2.fwd").unwrap();
        assert_eq!(g.preds(r1).len(), 2);
        assert_eq!(g.preds(r2).len(), 2);
    }

    #[test]
    fn backward_mirrors_forward_depth() {
        let g = g();
        let levels = g.levels();
        let loss_fwd = g.find("loss.fwd").unwrap();
        let emb_bwd = g.find("embedding.bwd").unwrap();
        // The backward of the embedding is the deepest compute node.
        assert!(levels[emb_bwd.0] > levels[loss_fwd.0]);
    }

    #[test]
    fn optimizer_is_sink() {
        let g = g();
        let opt = g.find("optimizer.upd").unwrap();
        assert!(g.succs(opt).is_empty());
        assert!(g.preds(opt).len() > 5);
    }

    #[test]
    fn forward_only_has_no_backward_nodes() {
        let fwd = GraphBuilder::forward_only(&ModelConfig::gpt2_probe(768, 2), 1, 64);
        fwd.validate().unwrap();
        assert!(fwd.iter().all(|(_, op)| op.phase() == Phase::Forward));
        assert!(fwd.find("loss.fwd").is_some());
    }

    #[test]
    fn prefill_drops_the_loss_node() {
        let cfg = ModelConfig::gpt2_probe(768, 2);
        let p = GraphBuilder::prefill(&cfg, 1, 64);
        p.validate().unwrap();
        assert!(p.find("loss.fwd").is_none());
        assert!(p.find("lm_head.fwd").is_some());
        assert!(p.iter().all(|(_, op)| op.phase() == Phase::Forward));
        // Exactly one node fewer than the forward-only graph.
        let fwd = GraphBuilder::forward_only(&cfg, 1, 64);
        assert_eq!(p.node_count() + 1, fwd.node_count());
    }

    #[test]
    fn decode_step_attention_grows_with_context() {
        let cfg = ModelConfig::gpt2_probe(768, 2);
        let short = GraphBuilder::decode_step(&cfg, 4, 128);
        let long = GraphBuilder::decode_step(&cfg, 4, 1024);
        short.validate().unwrap();
        long.validate().unwrap();
        let attn_flops = |g: &DataflowGraph| -> f64 {
            g.iter()
                .filter(|&(_, op)| op.class() == OpClass::AttnScores)
                .map(|(_, op)| op.flops())
                .sum()
        };
        // Score FLOPs scale linearly with cached context.
        assert!((attn_flops(&long) / attn_flops(&short) - 8.0).abs() < 1e-9);
        // Non-attention ops (the GEMMs on the single new token) do not.
        let qkv = |g: &DataflowGraph| {
            g.find("l0.qkv_proj.fwd")
                .map(|id| g.op(id).flops())
                .unwrap()
        };
        assert!((qkv(&long) - qkv(&short)).abs() < f64::EPSILON);
    }

    #[test]
    fn decode_step_is_a_single_token_pass() {
        let cfg = ModelConfig::llama2_probe(512, 2);
        let g = GraphBuilder::decode_step(&cfg, 2, 256);
        g.validate().unwrap();
        assert!(g.find("loss.fwd").is_none());
        // Softmax output spans the cached context.
        let sm = g.find("l0.softmax.fwd").unwrap();
        assert!(g.op(sm).out_elems() >= 256);
    }

    #[test]
    fn workload_builder_matches_direct() {
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 2, 128, Precision::Fp16);
        let a = GraphBuilder::for_workload(&w);
        let b = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 2), 2, 128);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn layer_nodes_cover_both_phases() {
        let g = g();
        let nodes = layer_nodes(&g, 0);
        let fwd = nodes
            .iter()
            .filter(|&&id| g.op(id).phase() == Phase::Forward)
            .count();
        let bwd = nodes
            .iter()
            .filter(|&&id| g.op(id).phase() == Phase::Backward)
            .count();
        assert_eq!(fwd, bwd);
        assert!(fwd >= 12);
    }

    #[test]
    fn class_query_finds_attention() {
        let g = g();
        assert_eq!(class_nodes(&g, OpClass::AttnScores).len(), 6); // 3 layers × fwd+bwd
    }

    #[test]
    fn no_dangling_interior_nodes() {
        let g = g();
        // Exactly one forward source (embedding.fwd).
        let sources: Vec<_> = g.node_ids().filter(|&id| g.preds(id).is_empty()).collect();
        assert_eq!(sources.len(), 1);
        assert_eq!(g.op(sources[0]).name(), "embedding.fwd");
    }

    #[test]
    fn builder_matches_legacy_string_construction() {
        // Rebuild the same step from the legacy `Vec<Op>` path and compare
        // full topology: same names in the same node order, same edge set.
        for cfg in [
            ModelConfig::gpt2_probe(768, 3),
            ModelConfig::llama2_probe(512, 2),
        ] {
            let fast = GraphBuilder::training_step(&cfg, 2, 128);
            let ops = ops::training_step_ops(&cfg, 2, 128);
            assert_eq!(fast.node_count(), ops.len());
            for (id, node) in fast.iter() {
                assert_eq!(node.name(), ops[id.0].name, "node {id}");
                assert!((node.flops() - ops[id.0].flops).abs() < f64::EPSILON);
            }
            // The backward arithmetic shortcut must agree with name-based
            // twin resolution for every backward node.
            for (id, node) in fast.iter() {
                if node.phase() == Phase::Backward {
                    let twin = fast.forward_twin(id).expect("bwd node has fwd twin");
                    assert_eq!(
                        fast.op(twin).name(),
                        node.name().replace(".bwd", ".fwd"),
                        "twin of {}",
                        node.name()
                    );
                }
            }
        }
    }
}
