//! Construction of training-step dataflow graphs.

use crate::graph::{DataflowGraph, NodeId};
use dabench_model::ops::{self, Op, OpClass, Phase};
use dabench_model::{ModelConfig, TrainingWorkload};
use std::collections::HashMap;

/// Builds [`DataflowGraph`]s for complete LLM training steps.
///
/// The builder consumes the flat operator list from
/// [`dabench_model::ops::training_step_ops`] and reconstructs the real
/// dependency structure:
///
/// - the forward chain (embedding → layer 0 → … → loss), including the
///   residual skip edges inside each decoder block;
/// - the backward chain mirroring it in reverse, with mirrored skips;
/// - gradient → optimizer edges from every parameterized backward op.
///
/// # Example
///
/// ```
/// use dabench_graph::GraphBuilder;
/// use dabench_model::ModelConfig;
///
/// let g = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 4), 2, 128);
/// // The residual add joins two producers: the skip and the out-projection.
/// let resid = g.find("l0.residual1.fwd").unwrap();
/// assert_eq!(g.preds(resid).len(), 2);
/// ```
#[derive(Debug)]
pub struct GraphBuilder;

impl GraphBuilder {
    /// Build the dataflow graph of one training step of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the generated op list violates graph invariants (this
    /// indicates a bug in the op catalogue, not user error).
    #[must_use]
    pub fn training_step(cfg: &ModelConfig, batch: u64, seq: u64) -> DataflowGraph {
        let ops = ops::training_step_ops(cfg, batch, seq);
        let index: HashMap<String, usize> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| (op.name.clone(), i))
            .collect();
        let at = |name: &str| -> usize {
            *index
                .get(name)
                .unwrap_or_else(|| panic!("op catalogue missing `{name}`"))
        };

        let mut edges: Vec<(usize, usize)> = Vec::new();

        // --- Forward chain with residual skips ---
        //
        // Inside a block the main path is
        //   in -> norm1 -> qkv -> [rope] -> scores -> softmax -> context
        //      -> out_proj -> residual1 -> norm2 -> mlp... -> residual2
        // with skips  in -> residual1  and  residual1 -> residual2.
        let mut prev_out = at("embedding.fwd");
        for l in 0..cfg.num_layers {
            let n = |label: &str| at(&format!("l{l}.{label}.fwd"));
            let block_in = prev_out;
            edges.push((block_in, n("norm1")));
            let mut cur = n("norm1");
            for label in [
                "qkv_proj",
                "rope",
                "attn_scores",
                "softmax",
                "attn_context",
                "out_proj",
            ] {
                let full = format!("l{l}.{label}.fwd");
                if let Some(&next) = index.get(&full) {
                    edges.push((cur, next));
                    cur = next;
                }
            }
            // residual1 <- out_proj + skip from block input.
            edges.push((cur, n("residual1")));
            edges.push((block_in, n("residual1")));
            let resid1 = n("residual1");

            edges.push((resid1, n("norm2")));
            let norm2 = n("norm2");
            // MLP: up (and gate) feed the activation, activation feeds down.
            edges.push((norm2, n("mlp_up")));
            let act = n("act_fn");
            edges.push((n("mlp_up"), act));
            if let Some(&gate) = index.get(&format!("l{l}.mlp_gate.fwd")) {
                edges.push((norm2, gate));
                edges.push((gate, act));
            }
            edges.push((act, n("mlp_down")));
            edges.push((n("mlp_down"), n("residual2")));
            edges.push((resid1, n("residual2")));
            prev_out = n("residual2");
        }
        edges.push((prev_out, at("final_norm.fwd")));
        edges.push((at("final_norm.fwd"), at("lm_head.fwd")));
        edges.push((at("lm_head.fwd"), at("loss.fwd")));

        // --- Backward: mirror every forward edge, reversed, between the
        //     corresponding .bwd nodes; seed from loss.fwd -> loss.bwd. ---
        let bwd_name = |i: usize| ops[i].name.replace(".fwd", ".bwd");
        let fwd_edges = edges.clone();
        edges.push((at("loss.fwd"), at("loss.bwd")));
        for &(a, b) in &fwd_edges {
            let (ba, bb) = (at(&bwd_name(b)), at(&bwd_name(a)));
            edges.push((ba, bb));
        }
        // The backward of a parameterized op also needs its forward input
        // activation; that dependency is already implied by program order on
        // real systems and by the mirrored edges here, so we do not add
        // duplicate activation edges.

        // --- Optimizer depends on every parameterized backward op. ---
        let opt = at("optimizer.upd");
        for (i, op) in ops.iter().enumerate() {
            if op.phase == Phase::Backward && op.params > 0 {
                edges.push((i, opt));
            }
        }

        edges.sort_unstable();
        edges.dedup();

        DataflowGraph::from_parts(ops, &edges).expect("builder produced invalid graph")
    }

    /// Build the graph for a [`TrainingWorkload`].
    #[must_use]
    pub fn for_workload(w: &TrainingWorkload) -> DataflowGraph {
        Self::training_step(w.model(), w.batch_size(), w.seq_len())
    }

    /// Build the forward-only subgraph (used by inference-style probes).
    #[must_use]
    pub fn forward_only(cfg: &ModelConfig, batch: u64, seq: u64) -> DataflowGraph {
        let full = Self::training_step(cfg, batch, seq);
        let (nodes, edges) = Self::subgraph_parts(&full, |op| op.phase == Phase::Forward);
        DataflowGraph::from_parts(nodes, &edges).expect("forward subgraph invalid")
    }

    /// Build the prefill graph of an autoregressive inference step: the
    /// forward pass over the whole prompt with the training-only loss node
    /// removed (inference produces logits, not a loss).
    #[must_use]
    pub fn prefill(cfg: &ModelConfig, batch: u64, prompt_len: u64) -> DataflowGraph {
        let full = Self::training_step(cfg, batch, prompt_len);
        let (nodes, edges) = Self::subgraph_parts(&full, |op| {
            op.phase == Phase::Forward && op.class != OpClass::Loss
        });
        DataflowGraph::from_parts(nodes, &edges).expect("prefill subgraph invalid")
    }

    /// Build the operator graph of one decode step at context length
    /// `ctx`: a forward pass over a single new token per sequence, with
    /// the attention score/softmax/context operators re-scaled to attend
    /// over the `ctx`-position KV cache (their seq-1 accounting only
    /// covers the one new position).
    #[must_use]
    pub fn decode_step(cfg: &ModelConfig, batch: u64, ctx: u64) -> DataflowGraph {
        let full = Self::training_step(cfg, batch, 1);
        let (mut nodes, edges) = Self::subgraph_parts(&full, |op| {
            op.phase == Phase::Forward && op.class != OpClass::Loss
        });
        for op in &mut nodes {
            if matches!(
                op.class,
                OpClass::AttnScores | OpClass::Softmax | OpClass::AttnContext
            ) {
                op.flops *= ctx as f64;
                // Scores and probabilities span the whole cached context;
                // the context GEMM still emits one h-vector per sequence.
                if op.class != OpClass::AttnContext {
                    op.out_elems = op.out_elems.saturating_mul(ctx);
                }
            }
        }
        DataflowGraph::from_parts(nodes, &edges).expect("decode subgraph invalid")
    }

    /// Nodes and remapped edges of the induced subgraph of `full` on the
    /// ops satisfying `keep`.
    fn subgraph_parts(
        full: &DataflowGraph,
        keep: impl Fn(&Op) -> bool,
    ) -> (Vec<Op>, Vec<(usize, usize)>) {
        let kept: Vec<NodeId> = full
            .iter()
            .filter(|(_, op)| keep(op))
            .map(|(id, _)| id)
            .collect();
        let remap: HashMap<NodeId, usize> =
            kept.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let nodes: Vec<Op> = kept.iter().map(|&id| full.op(id).clone()).collect();
        let mut edges = Vec::new();
        for &id in &kept {
            for &s in full.succs(id) {
                if let (Some(&a), Some(&b)) = (remap.get(&id), remap.get(&s)) {
                    edges.push((a, b));
                }
            }
        }
        (nodes, edges)
    }
}

/// Convenience: ids of all nodes in `g` belonging to decoder layer `layer`.
#[must_use]
pub fn layer_nodes(g: &DataflowGraph, layer: u64) -> Vec<NodeId> {
    g.iter()
        .filter(|(_, op)| op.layer == Some(layer))
        .map(|(id, _)| id)
        .collect()
}

/// Convenience: ids of all nodes of a given class.
#[must_use]
pub fn class_nodes(g: &DataflowGraph, class: OpClass) -> Vec<NodeId> {
    g.iter()
        .filter(|(_, op)| op.class == class)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::Precision;

    fn g() -> DataflowGraph {
        GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 3), 2, 128)
    }

    #[test]
    fn graph_is_valid_dag() {
        g().validate().unwrap();
    }

    #[test]
    fn llama_graph_is_valid_dag() {
        GraphBuilder::training_step(&ModelConfig::llama2_probe(512, 2), 1, 64)
            .validate()
            .unwrap();
    }

    #[test]
    fn residual_skip_edges_exist() {
        let g = g();
        let r1 = g.find("l1.residual1.fwd").unwrap();
        let r2 = g.find("l1.residual2.fwd").unwrap();
        assert_eq!(g.preds(r1).len(), 2);
        assert_eq!(g.preds(r2).len(), 2);
    }

    #[test]
    fn backward_mirrors_forward_depth() {
        let g = g();
        let levels = g.levels();
        let loss_fwd = g.find("loss.fwd").unwrap();
        let emb_bwd = g.find("embedding.bwd").unwrap();
        // The backward of the embedding is the deepest compute node.
        assert!(levels[emb_bwd.0] > levels[loss_fwd.0]);
    }

    #[test]
    fn optimizer_is_sink() {
        let g = g();
        let opt = g.find("optimizer.upd").unwrap();
        assert!(g.succs(opt).is_empty());
        assert!(g.preds(opt).len() > 5);
    }

    #[test]
    fn forward_only_has_no_backward_nodes() {
        let fwd = GraphBuilder::forward_only(&ModelConfig::gpt2_probe(768, 2), 1, 64);
        fwd.validate().unwrap();
        assert!(fwd.iter().all(|(_, op)| op.phase == Phase::Forward));
        assert!(fwd.find("loss.fwd").is_some());
    }

    #[test]
    fn prefill_drops_the_loss_node() {
        let cfg = ModelConfig::gpt2_probe(768, 2);
        let p = GraphBuilder::prefill(&cfg, 1, 64);
        p.validate().unwrap();
        assert!(p.find("loss.fwd").is_none());
        assert!(p.find("lm_head.fwd").is_some());
        assert!(p.iter().all(|(_, op)| op.phase == Phase::Forward));
        // Exactly one node fewer than the forward-only graph.
        let fwd = GraphBuilder::forward_only(&cfg, 1, 64);
        assert_eq!(p.node_count() + 1, fwd.node_count());
    }

    #[test]
    fn decode_step_attention_grows_with_context() {
        let cfg = ModelConfig::gpt2_probe(768, 2);
        let short = GraphBuilder::decode_step(&cfg, 4, 128);
        let long = GraphBuilder::decode_step(&cfg, 4, 1024);
        short.validate().unwrap();
        long.validate().unwrap();
        let attn_flops = |g: &DataflowGraph| -> f64 {
            g.iter()
                .filter(|(_, op)| op.class == OpClass::AttnScores)
                .map(|(_, op)| op.flops)
                .sum()
        };
        // Score FLOPs scale linearly with cached context.
        assert!((attn_flops(&long) / attn_flops(&short) - 8.0).abs() < 1e-9);
        // Non-attention ops (the GEMMs on the single new token) do not.
        let qkv = |g: &DataflowGraph| g.find("l0.qkv_proj.fwd").map(|id| g.op(id).flops).unwrap();
        assert!((qkv(&long) - qkv(&short)).abs() < f64::EPSILON);
    }

    #[test]
    fn decode_step_is_a_single_token_pass() {
        let cfg = ModelConfig::llama2_probe(512, 2);
        let g = GraphBuilder::decode_step(&cfg, 2, 256);
        g.validate().unwrap();
        assert!(g.find("loss.fwd").is_none());
        // Softmax output spans the cached context.
        let sm = g.find("l0.softmax.fwd").unwrap();
        assert!(g.op(sm).out_elems >= 256);
    }

    #[test]
    fn workload_builder_matches_direct() {
        let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 2, 128, Precision::Fp16);
        let a = GraphBuilder::for_workload(&w);
        let b = GraphBuilder::training_step(&ModelConfig::gpt2_probe(768, 2), 2, 128);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn layer_nodes_cover_both_phases() {
        let g = g();
        let nodes = layer_nodes(&g, 0);
        let fwd = nodes
            .iter()
            .filter(|&&id| g.op(id).phase == Phase::Forward)
            .count();
        let bwd = nodes
            .iter()
            .filter(|&&id| g.op(id).phase == Phase::Backward)
            .count();
        assert_eq!(fwd, bwd);
        assert!(fwd >= 12);
    }

    #[test]
    fn class_query_finds_attention() {
        let g = g();
        assert_eq!(class_nodes(&g, OpClass::AttnScores).len(), 6); // 3 layers × fwd+bwd
    }

    #[test]
    fn no_dangling_interior_nodes() {
        let g = g();
        // Exactly one forward source (embedding.fwd).
        let sources: Vec<_> = g.node_ids().filter(|&id| g.preds(id).is_empty()).collect();
        assert_eq!(sources.len(), 1);
        assert_eq!(g.op(sources[0]).name, "embedding.fwd");
    }
}
