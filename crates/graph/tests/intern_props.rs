//! Seeded property tests for the interned-symbol table and the arena
//! graph: round-trips, dedup, no collisions, builder-vs-catalogue
//! equivalence, and the cost-patch primitive that backs incremental sweep
//! recompilation.
//!
//! Generators are hand-rolled (SplitMix64), matching the house style of
//! the supervisor and sharding tests: no `proptest` runtime in the loop,
//! every case reproducible from the printed seed.

use dabench_graph::{DataflowGraph, GraphBuilder, Interner};
use dabench_model::ops::{self, Phase};
use dabench_model::{ModelConfig, Precision, TrainingWorkload};

/// Hand-rolled SplitMix64 — deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// A random op-shaped name: dotted segments over a small alphabet, so the
/// population contains near-misses (shared prefixes/suffixes) that would
/// expose a sloppy hash or a bucket-compare bug.
fn random_name(rng: &mut Rng) -> String {
    const SEGMENTS: [&str; 12] = [
        "qkv_proj", "rope", "softmax", "mlp_up", "mlp_down", "norm1", "norm2", "fwd", "bwd", "upd",
        "attn", "loss",
    ];
    let mut s = String::new();
    if rng.below(2) == 0 {
        s.push('l');
        s.push_str(&rng.below(100).to_string());
        s.push('.');
    }
    let parts = 1 + rng.below(3);
    for i in 0..parts {
        if i > 0 {
            s.push('.');
        }
        s.push_str(rng.pick::<&str>(&SEGMENTS[..]));
    }
    if rng.below(3) == 0 {
        s.push_str(&rng.below(10_000).to_string());
    }
    s
}

#[test]
fn intern_resolve_round_trips_and_dedups_10k_seeded_names() {
    let mut rng = Rng(0xDAB3_2024);
    let mut interner = Interner::new();
    let mut by_name: std::collections::HashMap<String, dabench_graph::Symbol> =
        std::collections::HashMap::new();

    for _ in 0..10_000 {
        let name = random_name(&mut rng);
        let sym = interner.intern(&name);
        // Round trip: the symbol resolves to exactly the interned string.
        assert_eq!(interner.resolve(sym), name, "round trip failed");
        match by_name.get(&name) {
            // Dedup: re-interning an existing name returns the same symbol.
            Some(&prev) => assert_eq!(prev, sym, "dedup failed for {name:?}"),
            None => {
                by_name.insert(name, sym);
            }
        }
    }

    // No collisions: distinct names got distinct symbols, and the table
    // size equals the number of unique names seen.
    assert_eq!(interner.len(), by_name.len());
    let mut symbols: Vec<u32> = by_name.values().map(|s| s.0).collect();
    symbols.sort_unstable();
    symbols.dedup();
    assert_eq!(symbols.len(), by_name.len(), "symbol collision");

    // Non-inserting lookup agrees with the insert path.
    for (name, &sym) in &by_name {
        assert_eq!(interner.get(name), Some(sym));
    }
    assert_eq!(interner.get("never-interned-name"), None);
}

/// Random topology-preserving workload menu: the step-graph shape depends
/// only on (family, num_layers), so points sharing those differ in costs
/// alone.
fn random_workload(rng: &mut Rng) -> TrainingWorkload {
    let layers = 1 + rng.below(6);
    let hidden = *rng.pick(&[256u64, 512, 768]);
    let model = if rng.below(2) == 0 {
        ModelConfig::gpt2_probe(hidden, layers)
    } else {
        ModelConfig::llama2_probe(hidden, layers)
    };
    let batch = 1 + rng.below(32);
    let seq = *rng.pick(&[128u64, 256, 512]);
    TrainingWorkload::new(model, batch, seq, Precision::Fp16)
}

#[test]
fn arena_graph_matches_op_catalogue_for_random_workloads() {
    let mut rng = Rng(0x5EED_0001);
    for trial in 0..40 {
        let w = random_workload(&mut rng);
        let graph = GraphBuilder::for_workload(&w);
        let catalogue = ops::training_step_ops(w.model(), w.batch_size(), w.seq_len());

        // Node-for-node equality with the legacy string-named catalogue,
        // in catalogue order.
        assert_eq!(graph.node_count(), catalogue.len(), "trial {trial}");
        for (i, legacy) in catalogue.iter().enumerate() {
            let node = graph.op(dabench_graph::NodeId(i));
            assert_eq!(node.name(), legacy.name, "trial {trial} node {i}");
            assert_eq!(node.class(), legacy.class, "trial {trial} node {i}");
            assert_eq!(node.phase(), legacy.phase, "trial {trial} node {i}");
            assert_eq!(node.layer(), legacy.layer, "trial {trial} node {i}");
            assert!(
                node.flops() == legacy.flops
                    && node.params() == legacy.params
                    && node.in_elems() == legacy.in_elems
                    && node.out_elems() == legacy.out_elems,
                "trial {trial} node {i}: cost drift"
            );
            // The interner finds every node by its rendered name.
            assert_eq!(graph.find(&legacy.name), Some(dabench_graph::NodeId(i)));
        }

        // Structural invariants: valid DAG, every backward node twins a
        // forward node carrying the swapped suffix.
        graph.validate().expect("generated graph validates");
        assert_eq!(graph.topological_order().len(), graph.node_count());
        for (id, node) in graph.iter() {
            if node.phase() == Phase::Backward {
                let twin = graph.forward_twin(id).expect("backward node has twin");
                assert_eq!(
                    graph.op(twin).name(),
                    node.name().replace(".bwd", ".fwd"),
                    "trial {trial}"
                );
            }
        }

        // The memoized summary equals direct in-order sums.
        let s = graph.summary();
        let direct_total: f64 = catalogue.iter().map(|o| o.flops).sum();
        assert!(
            s.total_flops == direct_total,
            "trial {trial}: summary drift"
        );
        let direct_fwd_elems: u64 = catalogue
            .iter()
            .filter(|o| o.phase == Phase::Forward)
            .map(|o| o.out_elems)
            .sum();
        assert_eq!(s.forward_out_elems, direct_fwd_elems, "trial {trial}");
    }
}

/// Bitwise graph equality: same topology object semantics are not required
/// (a fresh build owns a fresh interner), but every observable — names,
/// costs, edges, summary — must match exactly.
fn assert_graphs_identical(a: &DataflowGraph, b: &DataflowGraph, ctx: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
    assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count");
    for (id, na) in a.iter() {
        let nb = b.op(id);
        assert_eq!(na.name(), nb.name(), "{ctx}: {id}");
        assert!(
            na.flops() == nb.flops()
                && na.params() == nb.params()
                && na.in_elems() == nb.in_elems()
                && na.out_elems() == nb.out_elems(),
            "{ctx}: cost mismatch at {id}"
        );
        assert_eq!(a.preds(id), b.preds(id), "{ctx}: preds of {id}");
        assert_eq!(a.succs(id), b.succs(id), "{ctx}: succs of {id}");
    }
    let (sa, sb) = (a.summary(), b.summary());
    assert!(
        sa.total_flops == sb.total_flops
            && sa.layer_flops == sb.layer_flops
            && sa.layer0_forward_flops == sb.layer0_forward_flops,
        "{ctx}: summary mismatch"
    );
    assert_eq!(sa.forward_out_elems, sb.forward_out_elems, "{ctx}");
    assert_eq!(
        sa.forward_out_elems_no_attn_internal, sb.forward_out_elems_no_attn_internal,
        "{ctx}"
    );
    assert_eq!(
        sa.layer0_forward_out_elems, sb.layer0_forward_out_elems,
        "{ctx}"
    );
}

#[test]
fn cost_patch_equals_rebuild_from_scratch_on_random_deltas() {
    let mut rng = Rng(0x5EED_0002);
    for trial in 0..40 {
        let base = random_workload(&mut rng);
        // A topology-preserving delta: batch and/or sequence change, the
        // (family, layers) shape stays — exactly the adjacent-sweep-point
        // case the incremental compile cache patches.
        let batch = 1 + rng.below(32);
        let seq = *rng.pick(&[128u64, 256, 512]);
        let next = TrainingWorkload::new(base.model().clone(), batch, seq, base.precision());

        let base_graph = GraphBuilder::for_workload(&base);
        let fresh = GraphBuilder::for_workload(&next);
        let costs = ops::step_costs(next.model(), next.batch_size(), next.seq_len());
        let patched = base_graph.with_costs(costs);

        // The patch shares the base topology (no re-interning) yet is
        // observably identical to a from-scratch rebuild.
        assert!(
            patched.shares_topology(&base_graph),
            "trial {trial}: patch re-allocated topology"
        );
        assert_graphs_identical(&patched, &fresh, &format!("trial {trial}"));
    }
}
