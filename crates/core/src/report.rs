//! Report types assembled by the framework drivers.

use crate::platform::MemoryLevelUsage;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which roof limits a workload in the roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundKind {
    /// Limited by peak compute.
    ComputeBound,
    /// Limited by memory bandwidth.
    MemoryBound,
}

impl fmt::Display for BoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BoundKind::ComputeBound => "compute-bound",
            BoundKind::MemoryBound => "memory-bound",
        })
    }
}

/// The complete Tier-1 (intra-chip) report for one workload on one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier1Report {
    /// Platform name.
    pub platform: String,
    /// Workload description.
    pub workload: String,
    /// Resource allocation ratio per unit kind (Eq. 1 / Eq. 2).
    pub allocation: Vec<(String, f64)>,
    /// Load imbalance (Eq. 3 / Eq. 4), when computable.
    pub load_imbalance: Option<f64>,
    /// Achieved compute throughput, TFLOP/s.
    pub achieved_tflops: f64,
    /// Chip peak, TFLOP/s.
    pub peak_tflops: f64,
    /// `achieved / peak`.
    pub compute_efficiency: f64,
    /// Arithmetic intensity of the workload (Eq. 5), FLOPs/byte.
    pub arithmetic_intensity: f64,
    /// Attainable throughput at this intensity under the global-memory
    /// roofline, TFLOP/s (absent when bandwidth is not public).
    pub attainable_tflops: Option<f64>,
    /// Roofline classification (absent when bandwidth is not public).
    pub bound: Option<BoundKind>,
    /// Memory usage per level.
    pub memory: Vec<MemoryLevelUsage>,
    /// Training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Step latency, seconds.
    pub step_time_s: f64,
}

impl Tier1Report {
    /// Render the report as a small Markdown document (for logs, issues
    /// and dashboards).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "### Tier-1 report — {}", self.platform);
        let _ = writeln!(out, "*workload*: {}\n", self.workload);
        let _ = writeln!(out, "| metric | value |");
        let _ = writeln!(out, "|---|---|");
        for (kind, ratio) in &self.allocation {
            let _ = writeln!(out, "| {kind} allocation | {:.1}% |", 100.0 * ratio);
        }
        if let Some(li) = self.load_imbalance {
            let _ = writeln!(out, "| load imbalance | {li:.3} |");
        }
        let _ = writeln!(out, "| achieved | {:.1} TFLOP/s |", self.achieved_tflops);
        let _ = writeln!(
            out,
            "| compute efficiency | {:.1}% of {:.0} TFLOP/s |",
            100.0 * self.compute_efficiency,
            self.peak_tflops
        );
        let _ = writeln!(
            out,
            "| arithmetic intensity | {:.1} FLOPs/B |",
            self.arithmetic_intensity
        );
        if let Some(bound) = self.bound {
            let _ = writeln!(out, "| roofline | {bound} |");
        }
        for m in &self.memory {
            let _ = writeln!(
                out,
                "| {} usage | {:.1}% |",
                m.name,
                100.0 * m.utilization()
            );
        }
        let _ = writeln!(
            out,
            "| throughput | {:.3e} tokens/s |",
            self.throughput_tokens_per_s
        );
        out
    }

    /// Allocation ratio of a given unit kind, if reported.
    #[must_use]
    pub fn allocation_of(&self, kind: &str) -> Option<f64> {
        self.allocation
            .iter()
            .find(|(k, _)| k == kind)
            .map(|&(_, r)| r)
    }

    /// Memory utilization of a named level, if reported.
    #[must_use]
    pub fn memory_utilization_of(&self, level: &str) -> Option<f64> {
        self.memory
            .iter()
            .find(|m| m.name == level)
            .map(MemoryLevelUsage::utilization)
    }
}

/// One point of a Tier-2 batch-size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchPoint {
    /// Batch size in sequences.
    pub batch_size: u64,
    /// Training throughput in tokens/second; `None` when the configuration
    /// failed (e.g. out of memory).
    pub throughput_tokens_per_s: Option<f64>,
}

/// One point of a Tier-2 precision sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionPoint {
    /// Precision label (e.g. `"fp16"`, `"mixed(bf16)"`).
    pub label: String,
    /// Training throughput in tokens/second; `None` on failure.
    pub throughput_tokens_per_s: Option<f64>,
}

/// The smallest batch size in `points` achieving at least `fraction` of
/// the best observed throughput (the paper's "use batch ≥ 200 on WSE"
/// rule). Returns `None` when no point succeeded.
#[must_use]
pub fn batch_saturation_point(points: &[BatchPoint], fraction: f64) -> Option<u64> {
    let best = points
        .iter()
        .filter_map(|p| p.throughput_tokens_per_s)
        .fold(f64::NAN, f64::max);
    if !best.is_finite() {
        return None;
    }
    points
        .iter()
        .filter(|p| {
            p.throughput_tokens_per_s
                .is_some_and(|t| t >= fraction * best)
        })
        .map(|p| p.batch_size)
        .min()
}

/// The Tier-2 (deployment-optimization) report for one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier2Report {
    /// Platform name.
    pub platform: String,
    /// Batch-size scaling behaviour.
    pub batch_sweep: Vec<BatchPoint>,
    /// Precision sensitivity.
    pub precision_sweep: Vec<PrecisionPoint>,
}

impl Tier2Report {
    /// The smallest batch size achieving at least `fraction` of the best
    /// observed throughput (the paper's "use batch ≥ 200 on WSE" rule).
    #[must_use]
    pub fn saturation_batch(&self, fraction: f64) -> Option<u64> {
        batch_saturation_point(&self.batch_sweep, fraction)
    }

    /// Relative gain of the best precision over the worst, e.g. `0.34` for
    /// the RDU's 34% mixed-precision improvement.
    #[must_use]
    pub fn precision_gain(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .precision_sweep
            .iter()
            .filter_map(|p| p.throughput_tokens_per_s)
            .collect();
        if vals.len() < 2 {
            return None;
        }
        let max = vals.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let min = vals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        (min > 0.0).then(|| max / min - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_report_lists_everything() {
        let r = Tier1Report {
            platform: "p".into(),
            workload: "w".into(),
            allocation: vec![("pe".into(), 0.9)],
            load_imbalance: Some(0.97),
            achieved_tflops: 100.0,
            peak_tflops: 1000.0,
            compute_efficiency: 0.1,
            arithmetic_intensity: 42.0,
            attainable_tflops: Some(500.0),
            bound: Some(BoundKind::ComputeBound),
            memory: vec![MemoryLevelUsage {
                name: "sram".into(),
                used_bytes: 1,
                capacity_bytes: 2,
            }],
            throughput_tokens_per_s: 1.0e5,
            step_time_s: 0.1,
        };
        let md = r.to_markdown();
        assert!(md.contains("pe allocation"));
        assert!(md.contains("0.970"));
        assert!(md.contains("compute-bound"));
        assert!(md.contains("sram usage | 50.0%"));
    }

    #[test]
    fn bound_kind_display() {
        assert_eq!(BoundKind::ComputeBound.to_string(), "compute-bound");
        assert_eq!(BoundKind::MemoryBound.to_string(), "memory-bound");
    }

    fn tier2() -> Tier2Report {
        Tier2Report {
            platform: "x".into(),
            batch_sweep: vec![
                BatchPoint {
                    batch_size: 32,
                    throughput_tokens_per_s: Some(100.0),
                },
                BatchPoint {
                    batch_size: 64,
                    throughput_tokens_per_s: Some(180.0),
                },
                BatchPoint {
                    batch_size: 128,
                    throughput_tokens_per_s: Some(200.0),
                },
                BatchPoint {
                    batch_size: 256,
                    throughput_tokens_per_s: None,
                },
            ],
            precision_sweep: vec![
                PrecisionPoint {
                    label: "fp32".into(),
                    throughput_tokens_per_s: Some(100.0),
                },
                PrecisionPoint {
                    label: "mixed(fp16)".into(),
                    throughput_tokens_per_s: Some(130.0),
                },
            ],
        }
    }

    #[test]
    fn saturation_batch_finds_knee() {
        assert_eq!(tier2().saturation_batch(0.9), Some(64));
        assert_eq!(tier2().saturation_batch(1.0), Some(128));
    }

    #[test]
    fn precision_gain_is_relative() {
        assert!((tier2().precision_gain().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_sweeps_give_none() {
        let r = Tier2Report {
            platform: "x".into(),
            batch_sweep: vec![],
            precision_sweep: vec![],
        };
        assert_eq!(r.saturation_batch(0.9), None);
        assert_eq!(r.precision_gain(), None);
    }
}
