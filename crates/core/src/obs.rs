//! Dependency-free instrumentation bus: phase-scoped spans, counters, and
//! Chrome-trace export.
//!
//! The platform models annotate their work with *spans* (named regions
//! attributed to a [`Phase`]: compile, place, partition, execute, collect)
//! and *counters* (key/value figures such as allocated PEs or DDR bytes).
//! Everything is recorded against **logical timestamps** — a per-point
//! event counter, not wall-clock time — so two runs of the same sweep
//! produce byte-identical traces regardless of machine speed, scheduling,
//! or `--jobs`.
//!
//! # Determinism model
//!
//! Each unit of work records into a thread-local *point context* addressed
//! by a **path**: a sequence of point indices (`[experiment, sweep-cell,
//! …]`). [`with_point`] opens a context; [`par_map`] forks child contexts
//! (one per item, tagged with the item's input index) via [`fork`], so a
//! worker thread always records into the context of the *item* it is
//! evaluating, never into a shared stream. When a context closes, its
//! events flush into a global sink; [`take`] drains the sink sorted by
//! path. Input order — not scheduling — therefore decides the final event
//! order, and the rendered trace is identical at any worker count.
//!
//! # Cost when disabled
//!
//! The recorder is off by default. Every entry point loads one relaxed
//! `AtomicBool` and returns; no allocation, no locking, no thread-local
//! access. Enabling is the CLI's job (`--trace-out` / `--metrics`).
//!
//! [`par_map`]: crate::parallel::par_map

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Phases and events
// ---------------------------------------------------------------------------

/// The benchmark phase a span or counter is attributed to.
///
/// Mirrors the paper's per-phase breakdown: compilation, spatial
/// placement, section partitioning, execution, and result collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Kernel/graph compilation (e.g. the WSE compiler's budget loop).
    Compile,
    /// Spatial placement onto the fabric (e.g. WSE PE strips).
    Place,
    /// Partitioning a workload into schedulable sections (RDU).
    Partition,
    /// Executing the compiled/partitioned plan (all platforms, sim).
    Execute,
    /// Deriving report metrics from raw profiles (tier-1 collection).
    Collect,
    /// Autoregressive inference profiling (prefill/decode accounting,
    /// KV-cache placement, throughput derivation).
    Infer,
}

impl Phase {
    /// Stable lower-case name used in digests, traces, and tables.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Compile => "compile",
            Phase::Place => "place",
            Phase::Partition => "partition",
            Phase::Execute => "execute",
            Phase::Collect => "collect",
            Phase::Infer => "infer",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "compile" => Phase::Compile,
            "place" => Phase::Place,
            "partition" => Phase::Partition,
            "execute" => Phase::Execute,
            "collect" => Phase::Collect,
            "infer" => Phase::Infer,
            _ => return None,
        })
    }
}

/// One recorded instrumentation event.
///
/// Timestamps (`ts`) are logical: the per-point event sequence number at
/// recording time. [`Event::Slice`] carries simulated time instead — it
/// bridges [`sim`-style timelines](https://en.wikipedia.org/wiki/Trace_%28software%29)
/// whose coordinates are model seconds, rendered as microsecond slices.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened (`ph:"B"` in Chrome trace terms).
    Begin {
        /// Phase the span belongs to.
        phase: Phase,
        /// Span name, e.g. `wse.compile`.
        name: String,
        /// Logical timestamp.
        ts: u64,
    },
    /// A span closed (`ph:"E"`).
    End {
        /// Phase of the span being closed.
        phase: Phase,
        /// Name of the span being closed.
        name: String,
        /// Logical timestamp.
        ts: u64,
    },
    /// A key/value counter sample (`ph:"C"`).
    Counter {
        /// Innermost open span's phase at recording time, if any.
        phase: Option<Phase>,
        /// Counter key, e.g. `wse.allocated_pes`.
        key: String,
        /// Sampled value.
        value: f64,
        /// Logical timestamp.
        ts: u64,
    },
    /// A complete slice on a named track (`ph:"X"`), in simulated time.
    Slice {
        /// Track (resource) the slice occupied, e.g. `wafer`.
        track: String,
        /// Slice name, e.g. a task id.
        name: String,
        /// Start, microseconds of simulated time.
        start_us: u64,
        /// Duration, microseconds of simulated time.
        dur_us: u64,
    },
}

impl Event {
    fn logical_ts(&self) -> Option<u64> {
        match self {
            Event::Begin { ts, .. } | Event::End { ts, .. } | Event::Counter { ts, .. } => {
                Some(*ts)
            }
            Event::Slice { .. } => None,
        }
    }
}

/// Every event recorded by one point context, in recording order.
#[derive(Debug, Clone, PartialEq)]
pub struct PointTrace {
    /// Point-index path (`[experiment, sweep-cell, …]`); sink sort key.
    pub path: Vec<u64>,
    /// Human label of the point (empty for forked sweep cells).
    pub label: String,
    /// Events in recording order.
    pub events: Vec<Event>,
}

impl PointTrace {
    /// Dotted rendering of [`PointTrace::path`], e.g. `"3.12"`.
    #[must_use]
    pub fn path_string(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            let _ = write!(out, "{p}");
        }
        out
    }

    /// Sum of all samples of counter `key` in this trace, or `None` if
    /// the counter was never recorded.
    #[must_use]
    pub fn counter_total(&self, key: &str) -> Option<f64> {
        let mut total = None;
        for e in &self.events {
            if let Event::Counter { key: k, value, .. } = e {
                if k == key {
                    *total.get_or_insert(0.0) += value;
                }
            }
        }
        total
    }

    /// Structural validation: spans are well-nested (every `End` matches
    /// the innermost open `Begin`), every opened span is closed, and
    /// logical timestamps are strictly increasing.
    ///
    /// # Errors
    ///
    /// A description of the first violation found.
    pub fn check_well_formed(&self) -> Result<(), String> {
        let mut stack: Vec<(Phase, &str)> = Vec::new();
        let mut last_ts: Option<u64> = None;
        for (i, e) in self.events.iter().enumerate() {
            if let Some(ts) = e.logical_ts() {
                if last_ts.is_some_and(|prev| ts <= prev) {
                    return Err(format!(
                        "event {i}: non-monotone logical ts {ts} after {last_ts:?}"
                    ));
                }
                last_ts = Some(ts);
            }
            match e {
                Event::Begin { phase, name, .. } => stack.push((*phase, name)),
                Event::End { phase, name, .. } => match stack.pop() {
                    Some((p, n)) if p == *phase && n == name => {}
                    top => {
                        return Err(format!(
                            "event {i}: End({}/{name}) does not match open span {top:?}",
                            phase.as_str()
                        ))
                    }
                },
                Event::Counter { .. } | Event::Slice { .. } => {}
            }
        }
        if let Some((p, n)) = stack.pop() {
            return Err(format!("span {}/{n} was never closed", p.as_str()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Recorder state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<PointTrace>> = Mutex::new(Vec::new());

struct Ctx {
    path: Vec<u64>,
    label: String,
    clock: u64,
    /// Count of [`fork`] calls made from this context. Each fork gets its
    /// own path segment, so two sequential `par_map` sweeps inside one
    /// point produce disjoint child paths (`[…, 1, j]` then `[…, 2, j]`)
    /// instead of colliding — path collisions would make the sink's sort
    /// order depend on flush timing, i.e. on scheduling.
    fork_seq: u64,
    stack: Vec<(Phase, String)>,
    events: Vec<Event>,
    /// Per-point compile cache (see [`crate::compile`]). Living inside the
    /// point context makes incremental-compile hit/miss counters a pure
    /// function of the point's own call sequence — never of which worker
    /// thread or sweep neighbour ran first.
    compile: crate::compile::CompileScratch,
}

impl Ctx {
    fn new(path: Vec<u64>, label: String) -> Self {
        Self {
            path,
            label,
            clock: 0,
            fork_seq: 0,
            stack: Vec::new(),
            events: Vec::new(),
            compile: crate::compile::CompileScratch::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn begin(&mut self, phase: Phase, name: &str) {
        let ts = self.tick();
        self.stack.push((phase, name.to_owned()));
        self.events.push(Event::Begin {
            phase,
            name: name.to_owned(),
            ts,
        });
    }

    fn end(&mut self) {
        if let Some((phase, name)) = self.stack.pop() {
            let ts = self.tick();
            self.events.push(Event::End { phase, name, ts });
        }
    }

    /// Close any spans left open (e.g. by a panic inside a span body) so
    /// every flushed trace is well-formed.
    fn close_all(&mut self) {
        while !self.stack.is_empty() {
            self.end();
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn sink() -> std::sync::MutexGuard<'static, Vec<PointTrace>> {
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn flush(mut ctx: Ctx) {
    ctx.close_all();
    if ctx.events.is_empty() {
        return;
    }
    sink().push(PointTrace {
        path: ctx.path,
        label: ctx.label,
        events: ctx.events,
    });
}

/// Restores the previous thread-local context (flushing the one it
/// replaces) even when the instrumented body panics.
struct CtxGuard {
    prev: Option<Ctx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let current = CTX.with(|c| c.replace(self.prev.take()));
        if let Some(ctx) = current {
            flush(ctx);
        }
    }
}

fn enter_ctx<R>(path: Vec<u64>, label: String, f: impl FnOnce() -> R) -> R {
    let prev = CTX.with(|c| c.replace(Some(Ctx::new(path, label))));
    let _guard = CtxGuard { prev };
    f()
}

/// Run `f` against the open point context's compile scratch, or return
/// `None` when no context is open on this thread. `f` must not re-enter
/// the recorder (no [`span`]/[`counter`] calls) — the context is borrowed
/// for the duration of the call.
pub(crate) fn with_compile_scratch<R>(
    f: impl FnOnce(&mut crate::compile::CompileScratch) -> R,
) -> Option<R> {
    CTX.with(|c| c.borrow_mut().as_mut().map(|ctx| f(&mut ctx.compile)))
}

fn current_path() -> Vec<u64> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| ctx.path.clone())
            .unwrap_or_default()
    })
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// Thread-safe handle to the process-wide recorder.
///
/// The handle is zero-sized — all state is global — but gives call sites
/// an explicit object to thread around when that reads better than free
/// functions. `Recorder::global().span(…)` and [`span`] are equivalent.
#[derive(Debug, Clone, Copy, Default)]
pub struct Recorder;

impl Recorder {
    /// The process-wide recorder.
    #[must_use]
    pub fn global() -> Self {
        Recorder
    }

    /// See [`enable`].
    pub fn enable(self) {
        enable();
    }

    /// See [`disable`].
    pub fn disable(self) {
        disable();
    }

    /// See [`is_enabled`].
    #[must_use]
    pub fn is_enabled(self) -> bool {
        is_enabled()
    }

    /// See [`span`].
    pub fn span<R>(self, phase: Phase, name: &str, f: impl FnOnce() -> R) -> R {
        span(phase, name, f)
    }

    /// See [`counter`].
    pub fn counter(self, key: &str, value: f64) {
        counter(key, value);
    }

    /// See [`take`].
    #[must_use]
    pub fn take(self) -> Vec<PointTrace> {
        take()
    }
}

/// Turn recording on. Until this is called every instrumentation entry
/// point is a single relaxed atomic load.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off and drop everything in the sink. Contexts already
/// open on *other* threads keep recording until they close; their flushed
/// traces land in the (now-drained) sink.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    sink().clear();
}

/// Whether the recorder is on.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` inside a fresh point context at `index` (appended to the
/// calling context's path, if any), flushing its events on exit.
///
/// Passthrough when the recorder is disabled. Contexts nest: an
/// experiment opened with `with_point(3, "fig9", …)` that `par_map`s 12
/// probes yields traces at paths `[3]`, `[3,0]` … `[3,11]`.
pub fn with_point<R>(index: u64, label: &str, f: impl FnOnce() -> R) -> R {
    if !is_enabled() {
        return f();
    }
    let mut path = current_path();
    path.push(index);
    enter_ctx(path, label.to_owned(), f)
}

/// Record `f` as a span of `phase` named `name`.
///
/// Closure-scoped, so spans are well-nested by construction; the span is
/// closed even if `f` panics. Passthrough when the recorder is disabled
/// or no point context is open on this thread.
pub fn span<R>(phase: Phase, name: &str, f: impl FnOnce() -> R) -> R {
    if !is_enabled() {
        return f();
    }
    let opened = CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.begin(phase, name);
            true
        } else {
            false
        }
    });
    if !opened {
        return f();
    }
    struct SpanGuard;
    impl Drop for SpanGuard {
        fn drop(&mut self) {
            CTX.with(|c| {
                if let Some(ctx) = c.borrow_mut().as_mut() {
                    ctx.end();
                }
            });
        }
    }
    let _guard = SpanGuard;
    f()
}

/// Record a counter sample, attributed to the innermost open span's
/// phase. No-op when disabled or outside a point context.
pub fn counter(key: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            let ts = ctx.tick();
            let phase = ctx.stack.last().map(|(p, _)| *p);
            ctx.events.push(Event::Counter {
                phase,
                key: key.to_owned(),
                value,
                ts,
            });
        }
    });
}

/// Record a complete slice on `track` spanning `[start_s, start_s +
/// dur_s]` of *simulated* time. Used by the `sim` timeline bridge.
/// No-op when disabled or outside a point context.
pub fn slice(track: &str, name: &str, start_s: f64, dur_s: f64) {
    if !is_enabled() {
        return;
    }
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.events.push(Event::Slice {
                track: track.to_owned(),
                name: name.to_owned(),
                start_us: seconds_to_us(start_s),
                dur_us: seconds_to_us(dur_s),
            });
        }
    });
}

fn seconds_to_us(s: f64) -> u64 {
    let us = s * 1.0e6;
    if us.is_finite() && us > 0.0 {
        // Round half-up for stable, representable values.
        (us + 0.5).floor().min(u64::MAX as f64) as u64
    } else {
        0
    }
}

/// Drain the sink, sorted by path (then insertion order for ties), i.e.
/// by *input* order of the work that produced the events.
#[must_use]
pub fn take() -> Vec<PointTrace> {
    let mut traces: Vec<PointTrace> = std::mem::take(&mut *sink());
    traces.sort_by(|a, b| a.path.cmp(&b.path));
    traces
}

/// Drain only the traces whose path starts with `prefix`, sorted by path.
/// Used by the supervisor to journal one point's digest without touching
/// concurrently-recorded neighbors.
#[must_use]
pub fn drain_prefix(prefix: &[u64]) -> Vec<PointTrace> {
    let mut guard = sink();
    let mut matched = Vec::new();
    let mut kept = Vec::new();
    for t in guard.drain(..) {
        if t.path.starts_with(prefix) {
            matched.push(t);
        } else {
            kept.push(t);
        }
    }
    *guard = kept;
    drop(guard);
    matched.sort_by(|a, b| a.path.cmp(&b.path));
    matched
}

/// Push traces (e.g. parsed from a resumed journal) back into the sink.
pub fn inject(traces: Vec<PointTrace>) {
    sink().extend(traces);
}

/// Capture of the calling thread's point path, for re-entering child
/// contexts on worker threads. Created by [`fork`].
#[derive(Debug, Clone)]
pub struct Fork {
    parent: Option<Vec<u64>>,
}

/// Capture the current point path so `par_map` workers can open child
/// contexts under it. Returns an inert handle when the recorder is off.
///
/// Inside a point context each call claims a fresh fork sequence number,
/// appended to the captured path: children of the Nth fork live at
/// `[…, N, index]`. Fork calls happen on the owning thread in program
/// order, so the numbering — and therefore every child path — is
/// deterministic.
#[must_use]
pub fn fork() -> Fork {
    if !is_enabled() {
        return Fork { parent: None };
    }
    let parent = CTX.with(|c| {
        let mut borrow = c.borrow_mut();
        match borrow.as_mut() {
            Some(ctx) => {
                ctx.fork_seq += 1;
                let mut p = ctx.path.clone();
                p.push(ctx.fork_seq);
                p
            }
            None => Vec::new(),
        }
    });
    Fork {
        parent: Some(parent),
    }
}

impl Fork {
    /// Run `f` in a child context at `index` under the forked path (on
    /// whatever thread this is called from). Passthrough when the
    /// recorder was off at [`fork`] time.
    pub fn enter<R>(&self, index: u64, f: impl FnOnce() -> R) -> R {
        match &self.parent {
            None => f(),
            Some(parent) => {
                let mut path = parent.clone();
                path.push(index);
                enter_ctx(path, String::new(), f)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Digest (journal) serialization
// ---------------------------------------------------------------------------

/// Digest line schema identifier; bump when the format changes.
pub const DIGEST_SCHEMA: &str = "dabench-obs-v1";

fn digest_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7c"),
            ';' => out.push_str("%3b"),
            ':' => out.push_str("%3a"),
            '\n' => out.push_str("%0a"),
            c => out.push(c),
        }
    }
    out
}

fn digest_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = (0..2).map(|_| chars.next()).collect::<Option<_>>()?;
        out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
    }
    Some(out)
}

/// `{:?}` prints the shortest decimal that round-trips through
/// `f64::from_str`, so digests preserve counter values exactly.
fn digest_f64(v: f64) -> String {
    format!("{v:?}")
}

impl PointTrace {
    /// Serialize to a single digest line (`dabench-obs-v1|path|label|events`)
    /// suitable for a journal `data` field. [`PointTrace::parse_digest`]
    /// inverts it exactly.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = format!(
            "{DIGEST_SCHEMA}|{}|{}|",
            self.path_string(),
            digest_escape(&self.label)
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            match e {
                Event::Begin { phase, name, ts } => {
                    let _ = write!(out, "B:{}:{ts}:{}", phase.as_str(), digest_escape(name));
                }
                Event::End { phase, name, ts } => {
                    let _ = write!(out, "E:{}:{ts}:{}", phase.as_str(), digest_escape(name));
                }
                Event::Counter {
                    phase,
                    key,
                    value,
                    ts,
                } => {
                    let _ = write!(
                        out,
                        "C:{}:{ts}:{}:{}",
                        phase.map_or("-", Phase::as_str),
                        digest_f64(*value),
                        digest_escape(key)
                    );
                }
                Event::Slice {
                    track,
                    name,
                    start_us,
                    dur_us,
                } => {
                    let _ = write!(
                        out,
                        "S:{start_us}:{dur_us}:{}:{}",
                        digest_escape(track),
                        digest_escape(name)
                    );
                }
            }
        }
        out
    }

    /// Parse one digest line produced by [`PointTrace::digest`]. Returns
    /// `None` on any schema or syntax deviation.
    #[must_use]
    pub fn parse_digest(line: &str) -> Option<Self> {
        let mut parts = line.splitn(4, '|');
        if parts.next()? != DIGEST_SCHEMA {
            return None;
        }
        let path_s = parts.next()?;
        let label = digest_unescape(parts.next()?)?;
        let events_s = parts.next()?;
        let path: Vec<u64> = if path_s.is_empty() {
            Vec::new()
        } else {
            path_s
                .split('.')
                .map(str::parse)
                .collect::<Result<_, _>>()
                .ok()?
        };
        let mut events = Vec::new();
        for item in events_s.split(';').filter(|s| !s.is_empty()) {
            let mut f = item.split(':');
            let kind = f.next()?;
            let event = match kind {
                "B" | "E" => {
                    let phase = Phase::parse(f.next()?)?;
                    let ts = f.next()?.parse().ok()?;
                    let name = digest_unescape(f.next()?)?;
                    if f.next().is_some() {
                        return None;
                    }
                    if kind == "B" {
                        Event::Begin { phase, name, ts }
                    } else {
                        Event::End { phase, name, ts }
                    }
                }
                "C" => {
                    let phase_s = f.next()?;
                    let phase = if phase_s == "-" {
                        None
                    } else {
                        Some(Phase::parse(phase_s)?)
                    };
                    let ts = f.next()?.parse().ok()?;
                    let value = f.next()?.parse().ok()?;
                    let key = digest_unescape(f.next()?)?;
                    if f.next().is_some() {
                        return None;
                    }
                    Event::Counter {
                        phase,
                        key,
                        value,
                        ts,
                    }
                }
                "S" => {
                    let start_us = f.next()?.parse().ok()?;
                    let dur_us = f.next()?.parse().ok()?;
                    let track = digest_unescape(f.next()?)?;
                    let name = digest_unescape(f.next()?)?;
                    if f.next().is_some() {
                        return None;
                    }
                    Event::Slice {
                        track,
                        name,
                        start_us,
                        dur_us,
                    }
                }
                _ => return None,
            };
            events.push(event);
        }
        Some(PointTrace {
            path,
            label,
            events,
        })
    }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    crate::supervise::json_escape(s)
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Infinity; clamp to 0 (platform models never emit
    // them, this is belt-and-braces for hand-written traces).
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_owned()
    }
}

/// Render traces as Chrome `trace_event` JSON (the "JSON array format"),
/// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Each point becomes one thread (`tid` = 1-based rank in path order)
/// named after its label/path via `thread_name` metadata. Span
/// begins/ends map to `ph:"B"/"E"` at logical-tick `ts`; counters to
/// `ph:"C"`; simulated-time slices to `ph:"X"` with microsecond
/// coordinates. Output is a pure function of `traces` — byte-identical
/// across runs, worker counts, and resumes.
#[must_use]
pub fn chrome_trace(traces: &[PointTrace]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (rank, trace) in traces.iter().enumerate() {
        let tid = rank + 1;
        let thread_name = if trace.label.is_empty() {
            format!("point {}", trace.path_string())
        } else {
            format!("{} [{}]", trace.label, trace.path_string())
        };
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&thread_name)
            ),
        );
        for e in &trace.events {
            let line = match e {
                Event::Begin { phase, name, ts } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"pid\":0,\
                     \"tid\":{tid},\"ts\":{ts}}}",
                    json_escape(name),
                    phase.as_str()
                ),
                Event::End { phase, name, ts } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"pid\":0,\
                     \"tid\":{tid},\"ts\":{ts}}}",
                    json_escape(name),
                    phase.as_str()
                ),
                Event::Counter {
                    phase,
                    key,
                    value,
                    ts,
                } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"pid\":0,\
                     \"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{}}}}}",
                    json_escape(key),
                    phase.map_or("-", Phase::as_str),
                    json_f64(*value)
                ),
                Event::Slice {
                    track,
                    name,
                    start_us,
                    dur_us,
                } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"timeline:{}\",\"ph\":\"X\",\"pid\":0,\
                     \"tid\":{tid},\"ts\":{start_us},\"dur\":{dur_us}}}",
                    json_escape(name),
                    json_escape(track)
                ),
            };
            push(&mut out, line);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ---------------------------------------------------------------------------
// Metrics summary
// ---------------------------------------------------------------------------

/// Aggregated view of one counter key (or span name) across all traces.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRow {
    /// Phase the figure is attributed to (`"-"` for phase-less counters).
    pub phase: &'static str,
    /// Counter key or span name.
    pub name: String,
    /// Number of samples (counter) or completed spans.
    pub samples: u64,
    /// Sum of counter values; span count again for span rows.
    pub total: f64,
}

/// Per-phase counter totals across `traces`, sorted by (phase, key).
#[must_use]
pub fn counter_rows(traces: &[PointTrace]) -> Vec<MetricsRow> {
    let mut acc: BTreeMap<(&'static str, String), (u64, f64)> = BTreeMap::new();
    for t in traces {
        for e in &t.events {
            if let Event::Counter {
                phase, key, value, ..
            } = e
            {
                let entry = acc
                    .entry((phase.map_or("-", Phase::as_str), key.clone()))
                    .or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += value;
            }
        }
    }
    acc.into_iter()
        .map(|((phase, name), (samples, total))| MetricsRow {
            phase,
            name,
            samples,
            total,
        })
        .collect()
}

/// Per-phase span counts across `traces`, sorted by (phase, name).
#[must_use]
pub fn span_rows(traces: &[PointTrace]) -> Vec<MetricsRow> {
    let mut acc: BTreeMap<(&'static str, String), u64> = BTreeMap::new();
    for t in traces {
        for e in &t.events {
            if let Event::Begin { phase, name, .. } = e {
                *acc.entry((phase.as_str(), name.clone())).or_insert(0) += 1;
            }
        }
    }
    acc.into_iter()
        .map(|((phase, name), samples)| MetricsRow {
            phase,
            name,
            samples,
            total: samples as f64,
        })
        .collect()
}

fn format_total(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

/// Render the `--metrics` table: per-phase span counts and counter
/// totals, fixed-width, deterministic. Empty string when nothing was
/// recorded.
#[must_use]
pub fn render_metrics(traces: &[PointTrace]) -> String {
    let spans = span_rows(traces);
    let counters = counter_rows(traces);
    if spans.is_empty() && counters.is_empty() {
        return String::new();
    }
    let mut rows: Vec<(String, String, String, String)> = Vec::new();
    for r in &spans {
        rows.push((
            r.phase.to_owned(),
            r.name.clone(),
            "span".to_owned(),
            format!("x{}", r.samples),
        ));
    }
    for r in &counters {
        rows.push((
            r.phase.to_owned(),
            r.name.clone(),
            format!("n={}", r.samples),
            format_total(r.total),
        ));
    }
    let header = (
        "phase".to_owned(),
        "name".to_owned(),
        "kind".to_owned(),
        "total".to_owned(),
    );
    let width = |get: fn(&(String, String, String, String)) -> &String| {
        rows.iter()
            .map(|r| get(r).len())
            .chain(std::iter::once(get(&header).len()))
            .max()
            .unwrap_or(0)
    };
    let (w0, w1, w2, w3) = (
        width(|r| &r.0),
        width(|r| &r.1),
        width(|r| &r.2),
        width(|r| &r.3),
    );
    let mut out = String::from("== Observability: per-phase figures ==\n");
    let _ = writeln!(
        out,
        "{:<w0$}  {:<w1$}  {:<w2$}  {:>w3$}",
        header.0, header.1, header.2, header.3
    );
    let _ = writeln!(
        out,
        "{}  {}  {}  {}",
        "-".repeat(w0),
        "-".repeat(w1),
        "-".repeat(w2),
        "-".repeat(w3)
    );
    for (a, b, c, d) in &rows {
        let _ = writeln!(out, "{a:<w0$}  {b:<w1$}  {c:<w2$}  {d:>w3$}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recorder state is process-global; tests that enable it must not
    /// interleave. (Separate test binaries are separate processes, so
    /// only intra-binary serialization is needed.)
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        disable();
        enable();
        guard
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        disable();
        let out = with_point(0, "off", || {
            span(Phase::Compile, "s", || counter("k", 1.0));
            7
        });
        assert_eq!(out, 7);
        assert!(take().is_empty());
    }

    #[test]
    fn span_and_counter_events_round_trip_through_the_sink() {
        let _guard = locked();
        with_point(2, "demo", || {
            span(Phase::Compile, "outer", || {
                counter("pes", 42.0);
                span(Phase::Place, "inner", || counter("strips", 3.0));
            });
        });
        let traces = take();
        disable();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.path, vec![2]);
        assert_eq!(t.label, "demo");
        t.check_well_formed().expect("well-formed");
        assert_eq!(t.counter_total("pes"), Some(42.0));
        assert_eq!(t.counter_total("strips"), Some(3.0));
        assert_eq!(t.counter_total("absent"), None);
        // Counter phases follow the innermost open span.
        let phases: Vec<Option<Phase>> = t
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Counter { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(phases, vec![Some(Phase::Compile), Some(Phase::Place)]);
    }

    #[test]
    fn nested_points_extend_the_path() {
        let _guard = locked();
        with_point(1, "parent", || {
            counter("at-parent", 1.0);
            let fork = fork();
            fork.enter(4, || counter("at-child", 2.0));
        });
        let mut traces = take();
        disable();
        traces.sort_by(|a, b| a.path.cmp(&b.path));
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].path, vec![1]);
        // Child path: parent [1] + fork sequence 1 + item index 4.
        assert_eq!(traces[1].path, vec![1, 1, 4]);
        assert_eq!(traces[1].counter_total("at-child"), Some(2.0));
    }

    #[test]
    fn sequential_forks_get_disjoint_child_paths() {
        let _guard = locked();
        with_point(0, "two-sweeps", || {
            let first = fork();
            first.enter(0, || counter("x", 1.0));
            let second = fork();
            second.enter(0, || counter("x", 2.0));
        });
        let traces = take();
        disable();
        assert_eq!(traces.len(), 2);
        let paths: Vec<&[u64]> = traces.iter().map(|t| t.path.as_slice()).collect();
        assert_eq!(paths, vec![&[0u64, 1, 0][..], &[0u64, 2, 0][..]]);
    }

    #[test]
    fn panic_inside_span_still_closes_and_flushes() {
        let _guard = locked();
        let caught = std::panic::catch_unwind(|| {
            with_point(9, "doomed", || {
                span(Phase::Execute, "will-die", || panic!("boom"));
            })
        });
        assert!(caught.is_err());
        let traces = take();
        disable();
        assert_eq!(traces.len(), 1);
        traces[0].check_well_formed().expect("panic-closed spans");
    }

    #[test]
    fn drain_prefix_takes_only_matching_paths() {
        let _guard = locked();
        with_point(0, "a", || counter("x", 1.0));
        with_point(1, "b", || counter("x", 2.0));
        with_point(1, "b2", || {
            let f = fork();
            f.enter(0, || counter("x", 3.0));
        });
        // "b" at [1] and the forked child at [1,0]; the "b2" parent
        // context recorded no events of its own, so it never flushed.
        let drained = drain_prefix(&[1]);
        assert_eq!(drained.len(), 2);
        let rest = take();
        disable();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].path, vec![0]);
    }

    #[test]
    fn digest_round_trips_exactly() {
        let trace = PointTrace {
            path: vec![3, 11],
            label: "fig9 | tricky:label".to_owned(),
            events: vec![
                Event::Begin {
                    phase: Phase::Compile,
                    name: "wse.compile".to_owned(),
                    ts: 1,
                },
                Event::Counter {
                    phase: Some(Phase::Compile),
                    key: "pes;odd".to_owned(),
                    value: 0.1 + 0.2,
                    ts: 2,
                },
                Event::Counter {
                    phase: None,
                    key: "free".to_owned(),
                    value: -1.5e300,
                    ts: 3,
                },
                Event::End {
                    phase: Phase::Compile,
                    name: "wse.compile".to_owned(),
                    ts: 4,
                },
                Event::Slice {
                    track: "wafer".to_owned(),
                    name: "t%0".to_owned(),
                    start_us: 0,
                    dur_us: 17,
                },
            ],
        };
        let digest = trace.digest();
        assert!(!digest.contains('\n'));
        let parsed = PointTrace::parse_digest(&digest).expect("parses");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn digest_rejects_malformed_lines() {
        assert!(PointTrace::parse_digest("").is_none());
        assert!(PointTrace::parse_digest("wrong-schema|0|l|").is_none());
        assert!(PointTrace::parse_digest("dabench-obs-v1|x|l|").is_none());
        assert!(PointTrace::parse_digest("dabench-obs-v1|0|l|Z:1:2:3").is_none());
        assert!(PointTrace::parse_digest("dabench-obs-v1|0|l|B:nophase:1:n").is_none());
        // Empty event list is fine.
        assert!(PointTrace::parse_digest("dabench-obs-v1|0|l|").is_some());
        assert!(PointTrace::parse_digest("dabench-obs-v1||l|").is_some());
    }

    #[test]
    fn chrome_trace_is_flat_json_with_expected_phases() {
        let trace = PointTrace {
            path: vec![0],
            label: "t\"1\"".to_owned(),
            events: vec![
                Event::Begin {
                    phase: Phase::Execute,
                    name: "run".to_owned(),
                    ts: 1,
                },
                Event::Counter {
                    phase: Some(Phase::Execute),
                    key: "tasks".to_owned(),
                    value: 5.0,
                    ts: 2,
                },
                Event::End {
                    phase: Phase::Execute,
                    name: "run".to_owned(),
                    ts: 3,
                },
                Event::Slice {
                    track: "ingest".to_owned(),
                    name: "s0".to_owned(),
                    start_us: 10,
                    dur_us: 5,
                },
            ],
        };
        let json = chrome_trace(&[trace]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\\\"1\\\""), "label must be escaped: {json}");
        assert!(json.contains("\"cat\":\"timeline:ingest\""), "{json}");
        assert!(json.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn metrics_rendering_is_deterministic_and_aggregates() {
        let mk = |path: Vec<u64>, v: f64| PointTrace {
            path,
            label: String::new(),
            events: vec![
                Event::Begin {
                    phase: Phase::Compile,
                    name: "c".to_owned(),
                    ts: 1,
                },
                Event::Counter {
                    phase: Some(Phase::Compile),
                    key: "pes".to_owned(),
                    value: v,
                    ts: 2,
                },
                Event::End {
                    phase: Phase::Compile,
                    name: "c".to_owned(),
                    ts: 3,
                },
            ],
        };
        let traces = vec![mk(vec![0], 10.0), mk(vec![1], 32.0)];
        let counters = counter_rows(&traces);
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].samples, 2);
        assert!((counters[0].total - 42.0).abs() < 1e-12);
        let spans = span_rows(&traces);
        assert_eq!(spans[0].samples, 2);
        let rendered = render_metrics(&traces);
        assert_eq!(rendered, render_metrics(&traces));
        assert!(rendered.contains("pes"), "{rendered}");
        assert!(rendered.contains("42"), "{rendered}");
        assert!(render_metrics(&[]).is_empty());
    }

    #[test]
    fn seconds_to_us_handles_degenerate_inputs() {
        assert_eq!(seconds_to_us(0.0), 0);
        assert_eq!(seconds_to_us(-1.0), 0);
        assert_eq!(seconds_to_us(f64::NAN), 0);
        assert_eq!(seconds_to_us(f64::INFINITY), 0);
        assert_eq!(seconds_to_us(1.5e-6), 2);
        assert_eq!(seconds_to_us(2.0), 2_000_000);
    }

    #[test]
    fn check_well_formed_rejects_broken_traces() {
        let bad_nesting = PointTrace {
            path: vec![0],
            label: String::new(),
            events: vec![
                Event::Begin {
                    phase: Phase::Compile,
                    name: "a".to_owned(),
                    ts: 1,
                },
                Event::End {
                    phase: Phase::Execute,
                    name: "a".to_owned(),
                    ts: 2,
                },
            ],
        };
        assert!(bad_nesting.check_well_formed().is_err());
        let unclosed = PointTrace {
            path: vec![0],
            label: String::new(),
            events: vec![Event::Begin {
                phase: Phase::Compile,
                name: "a".to_owned(),
                ts: 1,
            }],
        };
        assert!(unclosed.check_well_formed().is_err());
        let non_monotone = PointTrace {
            path: vec![0],
            label: String::new(),
            events: vec![
                Event::Counter {
                    phase: None,
                    key: "k".to_owned(),
                    value: 1.0,
                    ts: 5,
                },
                Event::Counter {
                    phase: None,
                    key: "k".to_owned(),
                    value: 1.0,
                    ts: 5,
                },
            ],
        };
        assert!(non_monotone.check_well_formed().is_err());
    }
}
