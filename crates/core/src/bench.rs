//! Deterministic macro-benchmark harness (`dabench bench`).
//!
//! The paper is a measurement study, and this module lets the repository
//! measure *itself*: a dependency-free runner that times named benchmark
//! bodies (whole experiments, or hot-path micro loops), summarizes the
//! samples with robust statistics (median / median absolute deviation,
//! outlier trimming), and emits a machine-readable report
//! ([`BENCH_SCHEMA`]) that can be compared against a committed baseline to
//! gate performance regressions.
//!
//! # Determinism model
//!
//! Only the *timings* in a report vary between runs. Everything structural
//! is a pure function of the inputs:
//!
//! - the iteration plan is a pure function of `(benchmark kind, --quick)`
//!   ([`iter_plan`]) — no adaptive sampling, no wall-clock-budget loops;
//! - JSON key order is fixed by the writer ([`BenchReport::to_json`]) and
//!   inverted exactly by [`BenchReport::parse`];
//! - the per-phase breakdown bridged from the [`crate::obs`]
//!   spans/counters is byte-identical at any `--jobs` (the recorder sorts
//!   by point path, not schedule).
//!
//! Timing sources are wall-clock ([`std::time::Instant`]), so the numbers
//! themselves are machine-dependent; the gate ([`regressions`]) therefore
//! takes a percentage tolerance and ignores sub-[`GATE_FLOOR_NS`] deltas.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Report schema identifier; bump when the JSON layout changes.
pub const BENCH_SCHEMA: &str = "dabench-bench-v1";

/// Absolute slack of the regression gate: a benchmark is never flagged
/// unless its median grew by at least this many nanoseconds. Keeps the
/// gate from firing on scheduler noise around micro-benchmarks whose
/// whole sample is a few microseconds.
pub const GATE_FLOOR_NS: u64 = 10_000;

// ---------------------------------------------------------------------------
// Benchmark kinds and iteration plans
// ---------------------------------------------------------------------------

/// What a benchmark body does, which decides its iteration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BenchKind {
    /// A whole experiment rendering (`table1` … `sensitivity`): one body
    /// call per timed sample.
    Experiment,
    /// A sub-millisecond operation (one WSE compilation): a small inner
    /// loop per timed sample.
    Compile,
    /// A microsecond-scale operation (one memo-cache lookup): a large
    /// inner loop per timed sample.
    Micro,
}

impl BenchKind {
    /// Stable lower-case name used in reports and listings.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BenchKind::Experiment => "experiment",
            BenchKind::Compile => "compile",
            BenchKind::Micro => "micro",
        }
    }

    /// Inverse of [`BenchKind::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "experiment" => BenchKind::Experiment,
            "compile" => BenchKind::Compile,
            "micro" => BenchKind::Micro,
            _ => return None,
        })
    }
}

/// A fixed iteration plan: `warmup` untimed body batches, then `iters`
/// timed samples of `inner` body executions each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterPlan {
    /// Untimed warmup batches (each runs `inner` body executions). Warmup
    /// also primes caches, so timed samples measure the steady state.
    pub warmup: u32,
    /// Timed samples.
    pub iters: u32,
    /// Body executions per timed sample; the reported nanoseconds are for
    /// the whole inner batch, not one execution.
    pub inner: u32,
}

/// The iteration plan for a benchmark — a *pure function* of the
/// benchmark's kind and the `--quick` flag, never of measured time.
#[must_use]
pub fn iter_plan(kind: BenchKind, quick: bool) -> IterPlan {
    match (kind, quick) {
        (BenchKind::Experiment, false) => IterPlan {
            warmup: 3,
            iters: 30,
            inner: 1,
        },
        (BenchKind::Experiment, true) => IterPlan {
            warmup: 1,
            iters: 5,
            inner: 1,
        },
        (BenchKind::Compile, false) => IterPlan {
            warmup: 3,
            iters: 30,
            inner: 8,
        },
        (BenchKind::Compile, true) => IterPlan {
            warmup: 1,
            iters: 7,
            inner: 4,
        },
        (BenchKind::Micro, false) => IterPlan {
            warmup: 5,
            iters: 40,
            inner: 1024,
        },
        (BenchKind::Micro, true) => IterPlan {
            warmup: 2,
            iters: 9,
            inner: 256,
        },
    }
}

/// Time `body` under `plan`: warmup batches first, then one duration
/// sample per timed batch, in nanoseconds.
///
/// `pre` runs once *inside* each timed sample, before the inner loop —
/// it exists for the `DABENCH_INJECT` sleep hook, so an injected slowdown
/// lands in the measured window exactly once per sample regardless of
/// `inner`. Pass `|| {}` for a clean run.
pub fn run_samples(plan: IterPlan, mut pre: impl FnMut(), mut body: impl FnMut()) -> Vec<u64> {
    for _ in 0..plan.warmup {
        for _ in 0..plan.inner {
            body();
        }
    }
    let mut samples = Vec::with_capacity(plan.iters as usize);
    for _ in 0..plan.iters {
        let start = std::time::Instant::now();
        pre();
        for _ in 0..plan.inner {
            body();
        }
        let ns = start.elapsed().as_nanos();
        samples.push(u64::try_from(ns).unwrap_or(u64::MAX));
    }
    samples
}

// ---------------------------------------------------------------------------
// Robust statistics
// ---------------------------------------------------------------------------

/// Median of `samples` (mean of the two middle values for even counts,
/// rounded down). Returns 0 for an empty slice.
#[must_use]
pub fn median_ns(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    match sorted.len() {
        0 => 0,
        n if n % 2 == 1 => sorted[n / 2],
        n => midpoint(sorted[n / 2 - 1], sorted[n / 2]),
    }
}

/// Mean of two u64s without overflow, rounded down.
fn midpoint(a: u64, b: u64) -> u64 {
    (a / 2) + (b / 2) + (a % 2 + b % 2) / 2
}

/// Median absolute deviation: the median of `|x - median(samples)|`.
/// Returns 0 for an empty slice.
#[must_use]
pub fn mad_ns(samples: &[u64]) -> u64 {
    let m = median_ns(samples);
    let devs: Vec<u64> = samples.iter().map(|&x| x.abs_diff(m)).collect();
    median_ns(&devs)
}

/// The minimum number of samples [`trim`] must keep from `n` samples:
/// at least half (rounded up), and never more than `n` itself.
#[must_use]
pub fn trim_floor(n: usize) -> usize {
    n.div_ceil(2)
}

/// Outlier trimming: drop samples deviating from the median by more than
/// `4 × MAD`, but never drop below [`trim_floor`] kept samples.
///
/// Rules, in order (all deterministic):
///
/// 1. the median and MAD are computed over the *full* sample set;
/// 2. if the MAD is zero, nothing is trimmed;
/// 3. samples with `|x - median| > 4 × MAD` are outliers;
/// 4. if trimming all outliers would leave fewer than `trim_floor(n)`
///    samples, the least-deviant outliers (ties broken by value, then by
///    input order) are re-admitted until the floor holds.
///
/// Returns the kept samples, sorted ascending.
#[must_use]
pub fn trim(samples: &[u64]) -> Vec<u64> {
    let n = samples.len();
    if n == 0 {
        return Vec::new();
    }
    let m = median_ns(samples);
    let d = mad_ns(samples);
    if d == 0 {
        let mut kept = samples.to_vec();
        kept.sort_unstable();
        return kept;
    }
    let bound = d.saturating_mul(4);
    // Sort by (deviation, value): the prefix of this order is always the
    // most-central subset, so taking max(kept-by-rule, floor) elements is
    // exactly "re-admit the least-deviant outliers".
    let mut by_dev: Vec<u64> = samples.to_vec();
    by_dev.sort_unstable_by_key(|&x| (x.abs_diff(m), x));
    let within = by_dev.iter().filter(|&&x| x.abs_diff(m) <= bound).count();
    let keep = within.max(trim_floor(n));
    let mut kept = by_dev[..keep].to_vec();
    kept.sort_unstable();
    kept
}

/// Robust summary of one benchmark's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Samples surviving [`trim`].
    pub kept: u32,
    /// Median of the kept samples, nanoseconds.
    pub median_ns: u64,
    /// MAD of the kept samples, nanoseconds.
    pub mad_ns: u64,
    /// Minimum over *all* samples (pre-trim), nanoseconds.
    pub min_ns: u64,
    /// Maximum over *all* samples (pre-trim), nanoseconds.
    pub max_ns: u64,
}

/// Trim `samples` and summarize: median/MAD over the kept set, min/max
/// over the full set.
#[must_use]
pub fn summarize(samples: &[u64]) -> Summary {
    let kept = trim(samples);
    Summary {
        kept: kept.len() as u32,
        median_ns: median_ns(&kept),
        mad_ns: mad_ns(&kept),
        min_ns: samples.iter().copied().min().unwrap_or(0),
        max_ns: samples.iter().copied().max().unwrap_or(0),
    }
}

// ---------------------------------------------------------------------------
// Report structure
// ---------------------------------------------------------------------------

/// Span count of one phase, bridged from the [`crate::obs`] profile pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase name (`compile`, `place`, `partition`, `execute`, `collect`).
    pub phase: String,
    /// Completed spans attributed to the phase during one body execution.
    pub spans: u64,
}

/// Total of one obs counter key during one body execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRow {
    /// Counter key, e.g. `wse.allocated_pes`.
    pub key: String,
    /// Sum of all samples of the key (across phases).
    pub total: f64,
}

/// One benchmark's record in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`table1`, `cache_lookup_hit`, …).
    pub name: String,
    /// Kind, which fixed the iteration plan.
    pub kind: BenchKind,
    /// The plan that produced the samples.
    pub plan: IterPlan,
    /// Robust timing summary.
    pub summary: Summary,
    /// Per-phase span counts from the deterministic profile pass.
    pub phases: Vec<PhaseRow>,
    /// Obs counter totals from the deterministic profile pass.
    pub counters: Vec<CounterRow>,
}

/// One entry of the perf trajectory: a median measured at a named moment
/// (e.g. `pr5-pre-optimization`), kept across report rewrites so
/// `BENCH_sweeps.json` records before/after pairs for optimizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryEntry {
    /// Benchmark the median belongs to.
    pub bench: String,
    /// Free-form label of the moment (`--record LABEL`).
    pub label: String,
    /// Median at that moment, nanoseconds.
    pub median_ns: u64,
}

/// A complete bench report (`BENCH_sweeps.json`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Whether the CI-sized `--quick` plans were used.
    pub quick: bool,
    /// One record per benchmark run, in suite order.
    pub benchmarks: Vec<BenchRecord>,
    /// Accumulated before/after medians (see [`TrajectoryEntry`]).
    pub trajectory: Vec<TrajectoryEntry>,
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// One gated regression: a benchmark whose median exceeded the baseline
/// by more than the tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// Current median, nanoseconds.
    pub current_ns: u64,
    /// Slowdown in percent over the baseline.
    pub slowdown_pct: f64,
}

/// Compare `current` against `baseline` with a `gate_pct` tolerance.
///
/// A benchmark regresses when its median exceeds the baseline median by
/// more than `gate_pct` percent *and* by at least [`GATE_FLOOR_NS`].
/// Benchmarks present in only one report are ignored (the shape gate is
/// the golden test's job, not the timing gate's).
#[must_use]
pub fn regressions(
    current: &BenchReport,
    baseline: &BenchReport,
    gate_pct: f64,
) -> Vec<Regression> {
    let base: BTreeMap<&str, u64> = baseline
        .benchmarks
        .iter()
        .map(|b| (b.name.as_str(), b.summary.median_ns))
        .collect();
    let mut out = Vec::new();
    for b in &current.benchmarks {
        let Some(&base_ns) = base.get(b.name.as_str()) else {
            continue;
        };
        let cur_ns = b.summary.median_ns;
        let allowed = base_ns as f64 * (1.0 + gate_pct / 100.0);
        if cur_ns as f64 > allowed && cur_ns.saturating_sub(base_ns) >= GATE_FLOOR_NS {
            let slowdown_pct = if base_ns == 0 {
                f64::INFINITY
            } else {
                (cur_ns as f64 / base_ns as f64 - 1.0) * 100.0
            };
            out.push(Regression {
                name: b.name.clone(),
                baseline_ns: base_ns,
                current_ns: cur_ns,
                slowdown_pct,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    crate::supervise::json_escape(s)
}

/// Finite-f64 rendering that round-trips through `from_str` (`{:?}` picks
/// the shortest such decimal); non-finite values clamp to 0 like the
/// Chrome-trace exporter.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_owned()
    }
}

impl BenchReport {
    /// Serialize with fixed key order: one benchmark (or trajectory
    /// entry) per line, flat hand-rolled JSON like the run journal.
    /// [`BenchReport::parse`] inverts the output exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "\"schema\":\"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "\"quick\":{},", self.quick);
        out.push_str("\"benchmarks\":[");
        for (i, b) in self.benchmarks.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"warmup\":{},\"iters\":{},\"inner\":{},\
                 \"kept\":{},\"median_ns\":{},\"mad_ns\":{},\"min_ns\":{},\"max_ns\":{},\
                 \"phases\":[",
                json_escape(&b.name),
                b.kind.as_str(),
                b.plan.warmup,
                b.plan.iters,
                b.plan.inner,
                b.summary.kept,
                b.summary.median_ns,
                b.summary.mad_ns,
                b.summary.min_ns,
                b.summary.max_ns,
            );
            for (j, p) in b.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"phase\":\"{}\",\"spans\":{}}}",
                    json_escape(&p.phase),
                    p.spans
                );
            }
            out.push_str("],\"counters\":[");
            for (j, c) in b.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"key\":\"{}\",\"total\":{}}}",
                    json_escape(&c.key),
                    json_f64(c.total)
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n],\n\"trajectory\":[");
        for (i, t) in self.trajectory.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"bench\":\"{}\",\"label\":\"{}\",\"median_ns\":{}}}",
                json_escape(&t.bench),
                json_escape(&t.label),
                t.median_ns
            );
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Parse a report produced by [`BenchReport::to_json`] (canonical key
    /// order, whitespace-tolerant between tokens).
    ///
    /// # Errors
    ///
    /// A description of the first deviation: wrong schema, unexpected
    /// key, or malformed token.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser::new(text);
        p.expect('{')?;
        p.key("schema")?;
        let schema = p.string()?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported bench schema {schema:?} (expected {BENCH_SCHEMA:?})"
            ));
        }
        p.expect(',')?;
        p.key("quick")?;
        let quick = p.bool()?;
        p.expect(',')?;
        p.key("benchmarks")?;
        let mut benchmarks = Vec::new();
        p.expect('[')?;
        while !p.try_expect(']') {
            if !benchmarks.is_empty() {
                p.expect(',')?;
            }
            benchmarks.push(p.bench_record()?);
        }
        p.expect(',')?;
        p.key("trajectory")?;
        let mut trajectory = Vec::new();
        p.expect('[')?;
        while !p.try_expect(']') {
            if !trajectory.is_empty() {
                p.expect(',')?;
            }
            p.expect('{')?;
            p.key("bench")?;
            let bench = p.string()?;
            p.expect(',')?;
            p.key("label")?;
            let label = p.string()?;
            p.expect(',')?;
            p.key("median_ns")?;
            let median_ns = p.u64()?;
            p.expect('}')?;
            trajectory.push(TrajectoryEntry {
                bench,
                label,
                median_ns,
            });
        }
        p.expect('}')?;
        p.end()?;
        Ok(BenchReport {
            quick,
            benchmarks,
            trajectory,
        })
    }
}

/// Minimal recursive-descent parser for the canonical bench JSON.
struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            chars: text.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(c) if c == want => Ok(()),
            got => Err(format!("expected {want:?}, found {got:?}")),
        }
    }

    /// Consume `want` if it is the next non-whitespace char.
    fn try_expect(&mut self, want: char) -> bool {
        self.skip_ws();
        if self.chars.peek() == Some(&want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    /// Expect `"name":`.
    fn key(&mut self, name: &str) -> Result<(), String> {
        let got = self.string()?;
        if got != name {
            return Err(format!("expected key {name:?}, found {got:?}"));
        }
        self.expect(':')
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hex: String = (0..4)
                            .map(|_| self.chars.next())
                            .collect::<Option<_>>()
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    e => return Err(format!("bad escape {e:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number_token(&mut self) -> String {
        self.skip_ws();
        let mut tok = String::new();
        while self
            .chars
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            tok.push(self.chars.next().expect("peeked"));
        }
        tok
    }

    fn u64(&mut self) -> Result<u64, String> {
        let tok = self.number_token();
        tok.parse().map_err(|e| format!("bad integer {tok:?}: {e}"))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let tok = self.number_token();
        tok.parse().map_err(|e| format!("bad number {tok:?}: {e}"))
    }

    fn bool(&mut self) -> Result<bool, String> {
        self.skip_ws();
        let mut tok = String::new();
        while self.chars.peek().is_some_and(char::is_ascii_alphabetic) {
            tok.push(self.chars.next().expect("peeked"));
        }
        match tok.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(format!("bad bool {tok:?}")),
        }
    }

    fn bench_record(&mut self) -> Result<BenchRecord, String> {
        self.expect('{')?;
        self.key("name")?;
        let name = self.string()?;
        self.expect(',')?;
        self.key("kind")?;
        let kind_s = self.string()?;
        let kind =
            BenchKind::parse(&kind_s).ok_or_else(|| format!("unknown bench kind {kind_s:?}"))?;
        self.expect(',')?;
        self.key("warmup")?;
        let warmup = self.u64()? as u32;
        self.expect(',')?;
        self.key("iters")?;
        let iters = self.u64()? as u32;
        self.expect(',')?;
        self.key("inner")?;
        let inner = self.u64()? as u32;
        self.expect(',')?;
        self.key("kept")?;
        let kept = self.u64()? as u32;
        self.expect(',')?;
        self.key("median_ns")?;
        let median_ns = self.u64()?;
        self.expect(',')?;
        self.key("mad_ns")?;
        let mad_ns = self.u64()?;
        self.expect(',')?;
        self.key("min_ns")?;
        let min_ns = self.u64()?;
        self.expect(',')?;
        self.key("max_ns")?;
        let max_ns = self.u64()?;
        self.expect(',')?;
        self.key("phases")?;
        let mut phases = Vec::new();
        self.expect('[')?;
        while !self.try_expect(']') {
            if !phases.is_empty() {
                self.expect(',')?;
            }
            self.expect('{')?;
            self.key("phase")?;
            let phase = self.string()?;
            self.expect(',')?;
            self.key("spans")?;
            let spans = self.u64()?;
            self.expect('}')?;
            phases.push(PhaseRow { phase, spans });
        }
        self.expect(',')?;
        self.key("counters")?;
        let mut counters = Vec::new();
        self.expect('[')?;
        while !self.try_expect(']') {
            if !counters.is_empty() {
                self.expect(',')?;
            }
            self.expect('{')?;
            self.key("key")?;
            let key = self.string()?;
            self.expect(',')?;
            self.key("total")?;
            let total = self.f64()?;
            self.expect('}')?;
            counters.push(CounterRow { key, total });
        }
        self.expect('}')?;
        Ok(BenchRecord {
            name,
            kind,
            plan: IterPlan {
                warmup,
                iters,
                inner,
            },
            summary: Summary {
                kept,
                median_ns,
                mad_ns,
                min_ns,
                max_ns,
            },
            phases,
            counters,
        })
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            None => Ok(()),
            Some(c) => Err(format!("trailing garbage starting at {c:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median_ns(&[]), 0);
        assert_eq!(median_ns(&[7]), 7);
        assert_eq!(median_ns(&[3, 1, 2]), 2);
        assert_eq!(median_ns(&[1, 2, 3, 10]), 2);
        // Overflow-safe midpoint.
        assert_eq!(median_ns(&[u64::MAX, u64::MAX - 1]), u64::MAX - 1);
    }

    #[test]
    fn mad_is_zero_for_constant_samples() {
        assert_eq!(mad_ns(&[5, 5, 5, 5]), 0);
        assert_eq!(mad_ns(&[1, 1, 1, 100]), 0);
        assert_eq!(mad_ns(&[10, 20, 30]), 10);
    }

    #[test]
    fn trim_drops_far_outliers_but_respects_floor() {
        // Median 10, MAD 1: 1000 deviates by 990 > 4.
        let kept = trim(&[9, 10, 10, 11, 1000]);
        assert_eq!(kept, vec![9, 10, 10, 11]);
        // All-equal MAD=0: nothing trimmed.
        assert_eq!(trim(&[4, 4, 4]), vec![4, 4, 4]);
        // Floor: n=2, floor=1, extreme spread keeps at least 1.
        let kept = trim(&[1, 1_000_000]);
        assert!(kept.len() >= trim_floor(2));
    }

    #[test]
    fn summarize_reports_pre_trim_extremes() {
        let s = summarize(&[9, 10, 10, 11, 1000]);
        assert_eq!(s.kept, 4);
        assert_eq!(s.median_ns, 10);
        assert_eq!(s.min_ns, 9);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn iter_plan_is_stable_and_quick_shrinks_work() {
        for kind in [BenchKind::Experiment, BenchKind::Compile, BenchKind::Micro] {
            assert_eq!(iter_plan(kind, false), iter_plan(kind, false));
            assert_eq!(iter_plan(kind, true), iter_plan(kind, true));
            let full = iter_plan(kind, false);
            let quick = iter_plan(kind, true);
            let work = |p: IterPlan| (p.warmup + p.iters) as u64 * p.inner as u64;
            assert!(work(quick) < work(full), "{kind:?}");
        }
    }

    fn sample_report() -> BenchReport {
        BenchReport {
            quick: true,
            benchmarks: vec![BenchRecord {
                name: "table\"1".to_owned(),
                kind: BenchKind::Experiment,
                plan: iter_plan(BenchKind::Experiment, true),
                summary: Summary {
                    kept: 5,
                    median_ns: 123,
                    mad_ns: 4,
                    min_ns: 100,
                    max_ns: 999,
                },
                phases: vec![PhaseRow {
                    phase: "compile".to_owned(),
                    spans: 12,
                }],
                counters: vec![CounterRow {
                    key: "wse.allocated_pes".to_owned(),
                    total: 0.1 + 0.2,
                }],
            }],
            trajectory: vec![TrajectoryEntry {
                bench: "cache_lookup_hit".to_owned(),
                label: "pre\nopt".to_owned(),
                median_ns: 42,
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let json = report.to_json();
        let parsed = BenchReport::parse(&json).expect("parses");
        assert_eq!(parsed, report);
        // Canonical: re-serializing the parse reproduces the bytes.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = BenchReport::default();
        let parsed = BenchReport::parse(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(BenchReport::parse("").is_err());
        assert!(BenchReport::parse("{}").is_err());
        let wrong = sample_report().to_json().replace(BENCH_SCHEMA, "v0");
        assert!(BenchReport::parse(&wrong).is_err());
        let trailing = format!("{}x", sample_report().to_json());
        assert!(BenchReport::parse(&trailing).is_err());
    }

    #[test]
    fn regression_gate_flags_only_real_slowdowns() {
        let mut base = sample_report();
        base.benchmarks[0].name = "b".to_owned();
        base.benchmarks[0].summary.median_ns = 1_000_000;
        let mut cur = base.clone();

        // Within tolerance: no regression.
        cur.benchmarks[0].summary.median_ns = 1_200_000;
        assert!(regressions(&cur, &base, 50.0).is_empty());

        // Past tolerance and past the absolute floor: flagged.
        cur.benchmarks[0].summary.median_ns = 3_000_000;
        let r = regressions(&cur, &base, 50.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "b");
        assert!((r[0].slowdown_pct - 200.0).abs() < 1e-9);

        // Past tolerance but under the absolute floor: ignored.
        base.benchmarks[0].summary.median_ns = 100;
        cur.benchmarks[0].summary.median_ns = 1_000;
        assert!(regressions(&cur, &base, 50.0).is_empty());

        // Unknown benchmark names are ignored.
        cur.benchmarks[0].name = "other".to_owned();
        cur.benchmarks[0].summary.median_ns = u64::MAX;
        assert!(regressions(&cur, &base, 50.0).is_empty());
    }

    #[test]
    fn run_samples_honors_the_plan() {
        let mut calls = 0u32;
        let plan = IterPlan {
            warmup: 2,
            iters: 3,
            inner: 5,
        };
        let samples = run_samples(plan, || {}, || calls += 1);
        assert_eq!(samples.len(), 3);
        assert_eq!(calls, (2 + 3) * 5);
    }
}
