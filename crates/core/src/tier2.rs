//! Tier 2: inter-chip scalability and deployment optimization.
//!
//! The scalability side drives platforms through their [`Scalable`]
//! implementation (DP / TP / PP / weight streaming, Sec. VI-A); the
//! deployment side sweeps the two highest-impact knobs — batch size and
//! precision (Sec. VI-B).

use crate::error::PlatformError;
use crate::platform::{ParallelStrategy, Platform, Scalable, ScalingProfile};
use crate::report::{BatchPoint, PrecisionPoint, Tier2Report};
use dabench_model::{Precision, TrainingWorkload};

/// Sweep the global batch size, recording throughput per point.
///
/// Failing configurations (typically out-of-memory at large batch) are
/// recorded as `None` rather than aborting the sweep — the paper reports
/// those as missing points.
#[must_use]
pub fn batch_sweep(
    platform: &dyn Platform,
    base: &TrainingWorkload,
    batch_sizes: &[u64],
) -> Vec<BatchPoint> {
    batch_sizes
        .iter()
        .map(|&b| {
            let throughput = platform
                .profile(&base.with_batch_size(b))
                .ok()
                .map(|p| p.throughput_tokens_per_s);
            BatchPoint {
                batch_size: b,
                throughput_tokens_per_s: throughput,
            }
        })
        .collect()
}

/// Sweep element precisions, recording throughput per point.
#[must_use]
pub fn precision_sweep(
    platform: &dyn Platform,
    base: &TrainingWorkload,
    precisions: &[Precision],
) -> Vec<PrecisionPoint> {
    precisions
        .iter()
        .map(|&p| {
            let throughput = platform
                .profile(&base.with_precision(p))
                .ok()
                .map(|r| r.throughput_tokens_per_s);
            PrecisionPoint {
                label: p.as_str().to_owned(),
                throughput_tokens_per_s: throughput,
            }
        })
        .collect()
}

/// Run the full deployment-optimization analysis of Tier 2.
#[must_use]
pub fn run(
    platform: &dyn Platform,
    base: &TrainingWorkload,
    batch_sizes: &[u64],
    precisions: &[Precision],
) -> Tier2Report {
    Tier2Report {
        platform: platform.name().to_owned(),
        batch_sweep: batch_sweep(platform, base, batch_sizes),
        precision_sweep: precision_sweep(platform, base, precisions),
    }
}

/// Evaluate a series of scaling strategies on a [`Scalable`] platform.
///
/// # Errors
///
/// Returns the first hard failure; unsupported strategies are skipped and
/// reported as `None` entries.
pub fn scalability_series<P: Scalable + ?Sized>(
    platform: &P,
    workload: &TrainingWorkload,
    strategies: &[ParallelStrategy],
) -> Result<Vec<(ParallelStrategy, Option<ScalingProfile>)>, PlatformError> {
    let mut out = Vec::with_capacity(strategies.len());
    for &s in strategies {
        match platform.scale(workload, s) {
            Ok(p) => out.push((s, Some(p))),
            Err(PlatformError::Unsupported(_)) => out.push((s, None)),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{ChipProfile, ComputeUnitSpec, HardwareSpec};
    use dabench_model::ModelConfig;

    /// A toy platform whose throughput saturates with batch size and gains
    /// 30% from half precision; batches > 64 run out of memory.
    struct Toy;

    impl Platform for Toy {
        fn name(&self) -> &str {
            "toy"
        }

        fn spec(&self) -> HardwareSpec {
            HardwareSpec {
                name: "toy".into(),
                compute_units: vec![ComputeUnitSpec {
                    kind: "pe".into(),
                    count: 1,
                }],
                peak_tflops: 1.0,
                memory_levels: vec![],
            }
        }

        fn profile(&self, w: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
            if w.batch_size() > 64 {
                return Err(PlatformError::OutOfMemory {
                    level: "sram".into(),
                    required_bytes: 2,
                    capacity_bytes: 1,
                });
            }
            let b = w.batch_size() as f64;
            let base = 1000.0 * b / (b + 8.0);
            let factor = if w.precision().is_half_width() {
                1.3
            } else {
                1.0
            };
            Ok(ChipProfile {
                unit_usage: vec![("pe".into(), 1, 1)],
                tasks: vec![],
                sections: vec![],
                memory: vec![],
                achieved_tflops: 0.5,
                throughput_tokens_per_s: base * factor,
                step_time_s: 0.01,
            })
        }
    }

    impl Scalable for Toy {
        fn scale(
            &self,
            _w: &TrainingWorkload,
            strategy: ParallelStrategy,
        ) -> Result<ScalingProfile, PlatformError> {
            match strategy {
                ParallelStrategy::DataParallel { replicas } => Ok(ScalingProfile {
                    strategy,
                    throughput_tokens_per_s: 100.0 * f64::from(replicas),
                    communication_fraction: 0.1,
                    per_unit_allocation: vec![],
                    detail: vec![],
                }),
                _ => Err(PlatformError::Unsupported("only DP".into())),
            }
        }
    }

    fn base() -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_mini(), 8, 128, Precision::Fp32)
    }

    #[test]
    fn batch_sweep_records_failures_as_none() {
        let pts = batch_sweep(&Toy, &base(), &[8, 32, 128]);
        assert!(pts[0].throughput_tokens_per_s.is_some());
        assert!(pts[1].throughput_tokens_per_s.is_some());
        assert!(pts[2].throughput_tokens_per_s.is_none());
    }

    #[test]
    fn batch_sweep_is_monotone_for_toy() {
        let pts = batch_sweep(&Toy, &base(), &[4, 16, 64]);
        let v: Vec<f64> = pts
            .iter()
            .filter_map(|p| p.throughput_tokens_per_s)
            .collect();
        assert!(v[0] < v[1] && v[1] < v[2]);
    }

    #[test]
    fn precision_sweep_shows_gain() {
        let report = run(&Toy, &base(), &[8, 16], &[Precision::Fp32, Precision::Fp16]);
        let gain = report.precision_gain().unwrap();
        assert!((gain - 0.3).abs() < 1e-9);
    }

    #[test]
    fn scalability_series_skips_unsupported() {
        let out = scalability_series(
            &Toy,
            &base(),
            &[
                ParallelStrategy::DataParallel { replicas: 2 },
                ParallelStrategy::TensorParallel { degree: 4 },
            ],
        )
        .unwrap();
        assert!(out[0].1.is_some());
        assert!(out[1].1.is_none());
    }
}
