//! Fault descriptors and the degradation contract platforms implement.
//!
//! Dataflow accelerators amortize their compile-time mapping over many
//! steps, so a hardware fault is not a transparent stall the way it is on a
//! cache-coherent GPU: dead PEs invalidate the placement, a failed RDU tile
//! invalidates the section partition, and a dropped IPU breaks the BSP
//! pipeline. This module describes faults abstractly — which unit
//! population, how much of it, where on the grid — and defines the
//! [`Degradable`] trait through which each platform model re-maps the
//! workload around the surviving hardware.
//!
//! Plan *generation* (seeding, scheduling, sweeps) lives in the
//! `dabench-faults` crate; keeping only the descriptors here lets platform
//! crates implement [`Degradable`] without depending on it.

use crate::error::PlatformError;
use crate::platform::{ChipProfile, Platform};
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};

/// The architectural fault-geometry family of a [`Degradable`] platform.
///
/// Plan generators (the `dabench-faults` crate) use this to draw the
/// fault shapes a platform's architecture actually exhibits. Platforms
/// report their own family through [`Degradable::fault_kind`] — the
/// generator never has to guess from a display name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Wafer-scale 2-D PE grid: faults are dead rectangles / column bands
    /// (Cerebras WSE).
    WaferGrid,
    /// Tiled unit fabric: faults are failed PCU/PMU populations and whole
    /// tiles (SambaNova RDU).
    TiledFabric,
    /// Multi-device BSP pipeline: faults are dead tiles and dropped
    /// devices (Graphcore IPU).
    BspPipeline,
}

/// A rectangle of dead PEs on a 2-D fabric, in normalized `[0, 1]`
/// coordinates so the same fault plan applies to any grid size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadRect {
    /// Left edge, fraction of grid width.
    pub col: f64,
    /// Top edge, fraction of grid height.
    pub row: f64,
    /// Width, fraction of grid width.
    pub width: f64,
    /// Height, fraction of grid height.
    pub height: f64,
}

impl DeadRect {
    /// Fraction of the grid area covered by this rectangle.
    #[must_use]
    pub fn area(&self) -> f64 {
        (self.width * self.height).clamp(0.0, 1.0)
    }

    /// The column interval `[start, end)` this rectangle occupies on a
    /// fabric `grid_cols` wide, clamped to the grid.
    #[must_use]
    pub fn column_interval(&self, grid_cols: u64) -> (u64, u64) {
        let w = grid_cols as f64;
        let start = (self.col.clamp(0.0, 1.0) * w).floor() as u64;
        let end = ((self.col + self.width).clamp(0.0, 1.0) * w).ceil() as u64;
        (start.min(grid_cols), end.min(grid_cols))
    }
}

/// One injectable fault, in platform-neutral terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// A rectangle of permanently dead PEs on a 2-D fabric (WSE).
    DeadRect(DeadRect),
    /// A fraction of a unit population permanently failed (RDU PCUs/PMUs,
    /// IPU tiles).
    DeadUnits {
        /// Unit kind as named in [`crate::HardwareSpec::compute_units`]
        /// (e.g. `"pcu"`, `"pmu"`, `"tile"`).
        kind: String,
        /// Fraction of the population lost, `0..=1`.
        fraction: f64,
    },
    /// A whole device dropped from a multi-device configuration (one IPU
    /// out of a BSP pipeline).
    DroppedDevice {
        /// Zero-based index of the lost device.
        index: u32,
    },
    /// Interconnect or external-memory bandwidth degraded to a fraction of
    /// nominal.
    LinkDegraded {
        /// Surviving fraction of nominal bandwidth, `0..=1`.
        retained_fraction: f64,
    },
    /// A transient stall hitting one task/section: recoverable by retry,
    /// costing `stall_s` per attempt.
    TransientStall {
        /// Index of the affected task in submission order.
        task_index: u32,
        /// Stall duration per failed attempt, seconds.
        stall_s: f64,
    },
}

impl Fault {
    /// Whether the fault is permanent (requires remapping) rather than
    /// transient (recoverable by retry).
    #[must_use]
    pub fn is_permanent(&self) -> bool {
        !matches!(self, Fault::TransientStall { .. })
    }
}

/// The set of faults active during one experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSet {
    /// Active faults.
    pub faults: Vec<Fault>,
}

impl FaultSet {
    /// An empty (healthy) fault set.
    #[must_use]
    pub fn new(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// No faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// All dead-PE rectangles.
    pub fn dead_rects(&self) -> impl Iterator<Item = &DeadRect> {
        self.faults.iter().filter_map(|f| match f {
            Fault::DeadRect(r) => Some(r),
            _ => None,
        })
    }

    /// Total grid-area fraction covered by dead rectangles, clamped to 1.
    /// (Overlaps are counted twice; plans drawn by `dabench-faults` use
    /// disjoint rectangles.)
    #[must_use]
    pub fn dead_pe_fraction(&self) -> f64 {
        self.dead_rects().map(DeadRect::area).sum::<f64>().min(1.0)
    }

    /// Fraction of the `kind` unit population lost, clamped to 1.
    #[must_use]
    pub fn dead_unit_fraction(&self, kind: &str) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DeadUnits { kind: k, fraction } if k == kind => Some(*fraction),
                _ => None,
            })
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Indices of dropped devices, deduplicated and sorted.
    #[must_use]
    pub fn dropped_devices(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::DroppedDevice { index } => Some(*index),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Product of all link degradations (1.0 when links are healthy).
    #[must_use]
    pub fn link_retained_fraction(&self) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::LinkDegraded { retained_fraction } => {
                    Some(retained_fraction.clamp(0.0, 1.0))
                }
                _ => None,
            })
            .product()
    }

    /// All transient stalls as `(task_index, stall_s)`.
    #[must_use]
    pub fn transient_stalls(&self) -> Vec<(u32, f64)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::TransientStall {
                    task_index,
                    stall_s,
                } => Some((*task_index, *stall_s)),
                _ => None,
            })
            .collect()
    }

    /// Whether any permanent fault is present (remap required).
    #[must_use]
    pub fn has_permanent(&self) -> bool {
        self.faults.iter().any(Fault::is_permanent)
    }
}

/// One-time cost of recovering from the faults in a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCost {
    /// Time to re-compile / re-partition / re-balance around permanent
    /// faults, seconds.
    pub remap_time_s: f64,
    /// Work replayed after restart (checkpoint restore + lost steps),
    /// seconds.
    pub lost_work_s: f64,
}

impl RecoveryCost {
    /// Total wall-clock recovery time, seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.remap_time_s + self.lost_work_s
    }
}

/// Outcome of profiling a workload on healthy and degraded hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedProfile {
    /// Profile on fault-free hardware.
    pub healthy: ChipProfile,
    /// Profile after remapping around the fault set.
    pub degraded: ChipProfile,
    /// One-time recovery cost.
    pub recovery_cost: RecoveryCost,
}

impl DegradedProfile {
    /// Degraded throughput as a fraction of healthy throughput (`0..=1`
    /// for any physical remap).
    #[must_use]
    pub fn throughput_retention(&self) -> f64 {
        if self.healthy.throughput_tokens_per_s <= 0.0 {
            0.0
        } else {
            self.degraded.throughput_tokens_per_s / self.healthy.throughput_tokens_per_s
        }
    }
}

/// Platforms that can re-map a workload around hardware faults.
///
/// Implementations re-run their compilation / partitioning / pipeline
/// balancing against the surviving hardware: the WSE placer re-packs
/// kernel strips excluding dead rectangles, the RDU re-partitions sections
/// over surviving PCU/PMU counts, and the IPU rebalances pipeline stages
/// over the remaining devices.
pub trait Degradable: Platform {
    /// The fault-geometry family of this platform, used by plan
    /// generators to draw architecture-appropriate fault shapes.
    fn fault_kind(&self) -> FaultKind;

    /// Profile `workload` on hardware degraded by `faults`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::DeviceFault`] when the surviving hardware cannot
    /// host the workload at all; any other [`PlatformError`] the healthy
    /// profile itself would produce.
    fn degrade(
        &self,
        workload: &TrainingWorkload,
        faults: &FaultSet,
    ) -> Result<DegradedProfile, PlatformError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_rect_area_and_interval() {
        let r = DeadRect {
            col: 0.25,
            row: 0.0,
            width: 0.5,
            height: 0.5,
        };
        assert!((r.area() - 0.25).abs() < 1e-12);
        assert_eq!(r.column_interval(100), (25, 75));
    }

    #[test]
    fn column_interval_clamps_to_grid() {
        let r = DeadRect {
            col: 0.9,
            row: 0.0,
            width: 0.5,
            height: 1.0,
        };
        assert_eq!(r.column_interval(10), (9, 10));
    }

    #[test]
    fn fault_set_aggregates() {
        let fs = FaultSet::new(vec![
            Fault::DeadUnits {
                kind: "pcu".into(),
                fraction: 0.1,
            },
            Fault::DeadUnits {
                kind: "pcu".into(),
                fraction: 0.05,
            },
            Fault::DroppedDevice { index: 2 },
            Fault::DroppedDevice { index: 2 },
            Fault::LinkDegraded {
                retained_fraction: 0.5,
            },
            Fault::TransientStall {
                task_index: 3,
                stall_s: 0.25,
            },
        ]);
        assert!((fs.dead_unit_fraction("pcu") - 0.15).abs() < 1e-12);
        assert_eq!(fs.dead_unit_fraction("pmu"), 0.0);
        assert_eq!(fs.dropped_devices(), vec![2]);
        assert!((fs.link_retained_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(fs.transient_stalls(), vec![(3, 0.25)]);
        assert!(fs.has_permanent());
    }

    #[test]
    fn transient_only_set_has_no_permanent() {
        let fs = FaultSet::new(vec![Fault::TransientStall {
            task_index: 0,
            stall_s: 0.1,
        }]);
        assert!(!fs.has_permanent());
        assert!(fs.dropped_devices().is_empty());
        assert_eq!(fs.link_retained_fraction(), 1.0);
    }
}
