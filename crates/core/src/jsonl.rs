//! Flat JSON-line codec shared by the run journal and the serve protocol.
//!
//! Both the crash-safe run journal (`dabench-journal-v1`, see
//! [`crate::supervise`]) and the benchmark daemon's wire protocol
//! (`dabench-serve-v1`, see [`crate::serve`]) speak the same restricted
//! dialect: **one flat JSON object per line, string values only**. The
//! restriction is deliberate — a flat string-only object round-trips
//! byte-exactly through a hand-rolled parser small enough to audit, which
//! is what lets the journal promise byte-identical replay and the daemon
//! stay dependency-free.
//!
//! Escaping covers `"`/`\\`/control characters (as `\uXXXX`); parsing
//! accepts exactly what [`escape`] emits plus the standard short escapes,
//! so `parse_object(&write_object(pairs))` is an identity on the pairs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` for embedding inside a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize `pairs` as one flat JSON object, keys in the given order.
///
/// The writer is the dual of [`parse_object`]: every value is a string,
/// escaped with [`escape`], and the result contains no newline — safe to
/// append to a JSONL stream as a single line.
#[must_use]
pub fn write_object(pairs: &[(&str, &str)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
    }
    out.push('}');
    out
}

/// Parse one line as a flat JSON object with string values only.
///
/// Returns `None` on any syntactic deviation — the caller decides whether
/// that means a truncated tail (journal), corruption, or a malformed
/// request (serve). Duplicate keys keep the last occurrence.
#[must_use]
pub fn parse_object(line: &str) -> Option<BTreeMap<String, String>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();

    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
        if chars.next()? != '"' {
            return None;
        }
        let mut out = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(out),
                '\\' => match chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    }

    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            _ => {
                let key = parse_string(&mut chars)?;
                skip_ws(&mut chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(&mut chars);
                let value = parse_string(&mut chars)?;
                fields.insert(key, value);
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage after the object
    }
    Some(fields)
}

/// A truncated hex dump of `text`'s leading bytes, for diagnostics on
/// records that failed to parse: `"67 61 72 62 …"` (at most `max_bytes`
/// bytes shown, an ellipsis marking the cut).
#[must_use]
pub fn hex_snippet(text: &str, max_bytes: usize) -> String {
    let bytes = text.as_bytes();
    let shown = &bytes[..bytes.len().min(max_bytes)];
    let mut out = String::with_capacity(shown.len() * 3 + 2);
    for (i, b) in shown.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{b:02x}");
    }
    if bytes.len() > max_bytes {
        out.push_str(" …");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_parse_is_identity() {
        let pairs = [
            ("op", "submit"),
            ("job", "fig9"),
            ("data", "line1\nline2\t\"quoted\" \\ back\u{1}slash é"),
        ];
        let line = write_object(&pairs);
        assert!(!line.contains('\n'), "single line: {line:?}");
        let parsed = parse_object(&line).expect("round-trips");
        for (k, v) in pairs {
            assert_eq!(parsed.get(k).map(String::as_str), Some(v), "key {k}");
        }
    }

    #[test]
    fn rejects_non_objects_and_trailing_garbage() {
        assert_eq!(parse_object(""), None);
        assert_eq!(parse_object("garbage"), None);
        assert_eq!(parse_object("[1,2]"), None);
        assert_eq!(parse_object("{\"a\":\"b\"} extra"), None);
        assert_eq!(parse_object("{\"a\":1}"), None, "non-string value");
        assert_eq!(parse_object("{\"a\":\"b"), None, "unterminated string");
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_object("{}"), Some(BTreeMap::new()));
        assert_eq!(write_object(&[]), "{}");
    }

    #[test]
    fn hex_snippet_truncates_and_marks_the_cut() {
        assert_eq!(hex_snippet("garb", 8), "67 61 72 62");
        assert_eq!(hex_snippet("garbage!", 4), "67 61 72 62 …");
        assert_eq!(hex_snippet("", 4), "");
    }
}
