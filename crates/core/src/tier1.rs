//! Tier 1: intra-chip performance profiling.
//!
//! Given any [`Platform`] and a workload, [`run`] produces the full
//! [`Tier1Report`]: resource allocation ratio, load imbalance,
//! resource-utilization efficiency, and the global-memory roofline
//! classification — the paper's three key metrics in one pass.

use crate::error::PlatformError;
use crate::metrics::{
    compute_efficiency, load_imbalance, weighted_allocation_ratio, weighted_load_imbalance,
    Roofline,
};
use crate::platform::{ChipProfile, Platform};
use crate::report::Tier1Report;
use dabench_model::TrainingWorkload;
use std::collections::BTreeMap;

/// Derive per-kind allocation ratios from a profile, applying Eq. 2's
/// runtime weighting for sectioned executions.
#[must_use]
pub fn allocation_ratios(profile: &ChipProfile) -> Vec<(String, f64)> {
    if profile.is_sectioned() {
        // Gather (runtime, used, available) per kind across sections.
        let mut by_kind: BTreeMap<&str, Vec<(f64, u64, u64)>> = BTreeMap::new();
        for s in &profile.sections {
            for (kind, used, avail) in &s.unit_usage {
                by_kind
                    .entry(kind.as_str())
                    .or_default()
                    .push((s.runtime_s, *used, *avail));
            }
        }
        by_kind
            .into_iter()
            .filter_map(|(kind, recs)| {
                weighted_allocation_ratio(&recs).map(|r| (kind.to_owned(), r))
            })
            .collect()
    } else {
        profile
            .unit_usage
            .iter()
            .filter(|&&(_, _, avail)| avail > 0)
            .map(|(kind, used, avail)| (kind.clone(), *used as f64 / *avail as f64))
            .collect()
    }
}

/// Derive the load-imbalance metric from a profile, applying Eq. 4's
/// runtime weighting for sectioned executions.
#[must_use]
pub fn profile_load_imbalance(profile: &ChipProfile) -> Option<f64> {
    if profile.is_sectioned() {
        let per_section: Vec<(f64, f64)> = profile
            .sections
            .iter()
            .filter_map(|s| load_imbalance(&s.tasks).map(|li| (s.runtime_s, li)))
            .collect();
        if per_section.is_empty() {
            return None;
        }
        weighted_load_imbalance(&per_section)
    } else {
        load_imbalance(&profile.tasks)
    }
}

/// Run the complete Tier-1 analysis of `workload` on `platform`.
///
/// # Errors
///
/// Propagates the platform's [`PlatformError`] (e.g. out-of-memory) —
/// experiment drivers record those as the "Fail" cells of the paper's
/// tables.
///
/// # Example
///
/// ```no_run
/// use dabench_core::{tier1, Platform};
/// use dabench_model::{ModelConfig, Precision, TrainingWorkload};
///
/// fn profile_any(p: &dyn Platform) {
///     let w = TrainingWorkload::new(ModelConfig::gpt2_small(), 8, 1024, Precision::Fp16);
///     let report = tier1::run(p, &w).unwrap();
///     println!("allocation: {:?}", report.allocation);
/// }
/// ```
pub fn run(
    platform: &dyn Platform,
    workload: &TrainingWorkload,
) -> Result<Tier1Report, PlatformError> {
    let spec = platform.spec();
    let profile = platform.profile(workload)?;

    crate::obs::span(crate::obs::Phase::Collect, "tier1.collect", || {
        collect(platform, workload, &spec, profile)
    })
}

/// Metric derivation stage of [`run`], split out so the observability
/// layer can attribute it to the `collect` phase.
fn collect(
    platform: &dyn Platform,
    workload: &TrainingWorkload,
    spec: &crate::platform::HardwareSpec,
    profile: ChipProfile,
) -> Result<Tier1Report, PlatformError> {
    let allocation = allocation_ratios(&profile);
    let li = profile_load_imbalance(&profile);
    let eff =
        compute_efficiency(profile.achieved_tflops, spec.peak_tflops).map_or(0.0, |e| e.efficiency);

    let ai = workload.arithmetic_intensity();
    let (attainable, bound) = match spec.global_memory().and_then(|m| m.bandwidth_bytes_per_s) {
        Some(bw) if bw > 0.0 && spec.peak_tflops > 0.0 => {
            let roof = Roofline::new(spec.peak_tflops, bw);
            (Some(roof.attainable_tflops(ai)), Some(roof.classify(ai)))
        }
        _ => (None, None),
    };

    crate::obs::counter("tier1.reports", 1.0);
    crate::obs::counter("tier1.achieved_tflops", profile.achieved_tflops);

    Ok(Tier1Report {
        platform: platform.name().to_owned(),
        workload: workload.to_string(),
        allocation,
        load_imbalance: li,
        achieved_tflops: profile.achieved_tflops,
        peak_tflops: spec.peak_tflops,
        compute_efficiency: eff,
        arithmetic_intensity: ai,
        attainable_tflops: attainable,
        bound,
        memory: profile.memory,
        throughput_tokens_per_s: profile.throughput_tokens_per_s,
        step_time_s: profile.step_time_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{
        ComputeUnitSpec, HardwareSpec, MemoryLevelSpec, MemoryScope, SectionProfile, TaskProfile,
    };
    use dabench_model::{ModelConfig, Precision};

    struct FakeChip;

    impl Platform for FakeChip {
        fn name(&self) -> &str {
            "fake"
        }

        fn spec(&self) -> HardwareSpec {
            HardwareSpec {
                name: "fake".into(),
                compute_units: vec![ComputeUnitSpec {
                    kind: "pe".into(),
                    count: 100,
                }],
                peak_tflops: 100.0,
                memory_levels: vec![MemoryLevelSpec {
                    name: "ddr".into(),
                    scope: MemoryScope::OffChip,
                    capacity_bytes: 1 << 33,
                    bandwidth_bytes_per_s: Some(2e11),
                }],
            }
        }

        fn profile(&self, _w: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
            Ok(ChipProfile {
                unit_usage: vec![("pe".into(), 80, 100)],
                tasks: vec![
                    TaskProfile::new("k0", 10.0, 40.0),
                    TaskProfile::new("k1", 20.0, 40.0),
                ],
                sections: vec![],
                memory: vec![],
                achieved_tflops: 40.0,
                throughput_tokens_per_s: 1.0e5,
                step_time_s: 0.1,
            })
        }
    }

    fn workload() -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 4, 512, Precision::Fp16)
    }

    #[test]
    fn tier1_assembles_all_metrics() {
        let r = run(&FakeChip, &workload()).unwrap();
        assert_eq!(r.allocation_of("pe"), Some(0.8));
        let li = r.load_imbalance.unwrap();
        assert!((li - 0.75).abs() < 1e-12); // (1*40 + 0.5*40)/80
        assert!((r.compute_efficiency - 0.4).abs() < 1e-12);
        assert!(r.bound.is_some());
    }

    #[test]
    fn sectioned_allocation_uses_eq2() {
        let profile = ChipProfile {
            unit_usage: vec![],
            tasks: vec![],
            sections: vec![
                SectionProfile {
                    name: "s0".into(),
                    runtime_s: 3.0,
                    unit_usage: vec![("pcu".into(), 100, 200)],
                    tasks: vec![TaskProfile::new("a", 1.0, 1.0)],
                },
                SectionProfile {
                    name: "s1".into(),
                    runtime_s: 1.0,
                    unit_usage: vec![("pcu".into(), 200, 200)],
                    tasks: vec![TaskProfile::new("b", 1.0, 1.0)],
                },
            ],
            memory: vec![],
            achieved_tflops: 1.0,
            throughput_tokens_per_s: 1.0,
            step_time_s: 1.0,
        };
        let ratios = allocation_ratios(&profile);
        assert_eq!(ratios.len(), 1);
        // (3*0.5 + 1*1.0) / 4 = 0.625
        assert!((ratios[0].1 - 0.625).abs() < 1e-12);
        let li = profile_load_imbalance(&profile).unwrap();
        assert!((li - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsectioned_li_from_tasks() {
        let profile = ChipProfile {
            unit_usage: vec![],
            tasks: vec![
                TaskProfile::new("a", 2.0, 1.0),
                TaskProfile::new("b", 1.0, 1.0),
            ],
            sections: vec![],
            memory: vec![],
            achieved_tflops: 0.0,
            throughput_tokens_per_s: 0.0,
            step_time_s: 0.0,
        };
        assert!((profile_load_imbalance(&profile).unwrap() - 0.75).abs() < 1e-12);
    }
}
