//! Crash-safe benchmark-as-a-service daemon: admission control,
//! backpressure, graceful degradation, drain, and resume.
//!
//! One-shot CLI sweeps do not scale to many clients asking the same
//! questions concurrently — a standardized benchmark only becomes a
//! *service* once identical requests are served cheaply, load is shed
//! explicitly instead of queueing without bound, and a killed daemon comes
//! back without losing accepted work. This module is the robustness layer
//! that ties the existing primitives together:
//!
//! - **Protocol** (`dabench-serve-v1`): JSONL over TCP — one flat JSON
//!   object per line in the shared [`jsonl`] dialect, requests in,
//!   responses out. Hand-rolled, zero dependencies.
//! - **Admission control**: a bounded job queue. A full queue returns a
//!   structured `shed` response with a `retry_after_ms` hint instead of
//!   growing; memory use is bounded by construction.
//! - **Graceful degradation**: above the high-watermark (¾ of queue
//!   capacity) *heavy* jobs are shed while cached results and light jobs
//!   are still served — under pressure the daemon degrades to its fast
//!   paths instead of collapsing on its slow ones.
//! - **Per-client deadlines**: a `deadline_ms` on a submit bounds the
//!   queue wait; jobs that expire before a worker picks them up are
//!   cancelled and journaled, never silently dropped. Execution itself
//!   runs under the [`supervise`] watchdog/retry policy.
//! - **Shared result store**: completed renderings live in a size-bounded
//!   concurrency-safe [`LruStore`]; repeated identical requests are
//!   answered from memory on the sub-millisecond path without touching
//!   the queue at all.
//! - **Graceful drain**: a `drain` op (or SIGTERM, wired by the CLI)
//!   finishes in-flight points, answers queued jobs with a `drained`
//!   response (their `accepted` journal records survive), and exits
//!   clean.
//! - **Crash-safe resume**: the [`supervise`] run journal is the job
//!   store. Every admitted job is journaled `accepted` before it becomes
//!   visible to workers and `completed` with its rendered bytes when done,
//!   so a SIGKILL'd daemon restarted with `--resume` re-adopts in-flight
//!   jobs and replays completed renderings byte-identically.
//!
//! The daemon is generic over a [`JobExecutor`]; the CLI plugs in the
//! experiment suite. See `docs/serve.md` for the protocol specification
//! and lifecycle.

use crate::jsonl;
use crate::lru::{LruStore, StoreStats};
use crate::supervise::{supervise_point, PointOutcome, Replay, RunJournal, SupervisePolicy};
use crate::PlatformError;
use std::collections::VecDeque;
use std::io::{self, BufRead as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wire-protocol identifier, echoed in `ping`/`stats` responses.
pub const PROTOCOL: &str = "dabench-serve-v1";

/// How the daemon executes one admitted job.
///
/// Implementations must be pure in the benchmark sense: for a given job
/// key and seed, `execute` returns the same bytes on every call — that is
/// what makes cached and journal-replayed responses indistinguishable
/// from fresh executions.
pub trait JobExecutor: Send + Sync + 'static {
    /// Reject unknown or malformed job names before admission.
    ///
    /// # Errors
    ///
    /// A human-readable message sent back to the client verbatim.
    fn validate(&self, job: &str) -> Result<(), String>;

    /// Whether this job is expensive enough to shed first under pressure
    /// (see the high-watermark rule in the module docs).
    fn is_heavy(&self, job: &str) -> bool;

    /// Render the job's result. Runs under the supervision layer: panics
    /// are isolated, retryable [`PlatformError`]s are retried per policy.
    ///
    /// # Errors
    ///
    /// The platform error reported to the client as a `failed` response.
    fn execute(&self, job: &str, seed: u64) -> Result<String, PlatformError>;
}

/// Daemon configuration (CLI flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Concurrent job executions (worker threads).
    pub workers: usize,
    /// Bounded queue capacity; admission beyond it sheds.
    pub queue_capacity: usize,
    /// Result-store capacity, in entries.
    pub cache_capacity: usize,
    /// `retry_after_ms` hint attached to shed responses.
    pub retry_after: Duration,
    /// Per-attempt execution deadline (the supervise watchdog).
    pub deadline: Option<Duration>,
    /// Retries for retryable platform errors.
    pub max_retries: u32,
    /// Root seed for deterministic per-job attempt seeds.
    pub seed: u64,
    /// Journal directory; `None` disables persistence.
    pub run_dir: Option<PathBuf>,
    /// Resume (and heal) an existing journal instead of creating one.
    pub resume: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: crate::parallel::jobs(),
            queue_capacity: 64,
            cache_capacity: 1024,
            retry_after: Duration::from_millis(250),
            deadline: None,
            max_retries: 1,
            seed: 42,
            run_dir: None,
            resume: false,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    rejected: AtomicU64,
    drained: AtomicU64,
    served_cached: AtomicU64,
    adopted: AtomicU64,
    replayed: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64) -> u64 {
        field.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// Final tallies of one daemon lifetime, rendered on clean exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs that rendered a result.
    pub completed: u64,
    /// Jobs that exhausted retries, panicked, or timed out.
    pub failed: u64,
    /// Submits refused by admission control (queue full / pressure).
    pub shed: u64,
    /// Jobs whose queue-wait deadline expired before execution.
    pub expired: u64,
    /// Malformed or unknown requests.
    pub rejected: u64,
    /// Queued jobs answered with `drained` at shutdown.
    pub drained: u64,
    /// Submits answered straight from the result store.
    pub served_cached: u64,
    /// In-flight jobs re-adopted from the journal at startup.
    pub adopted: u64,
    /// Completed renderings replayed from the journal at startup.
    pub replayed: u64,
    /// Result-store counters at exit.
    pub store: StoreStats,
}

impl ServeSummary {
    /// One-line summary for stderr on clean exit.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "serve: {} accepted, {} completed, {} from cache, {} failed, {} shed, {} expired, \
             {} rejected, {} drained; store: {} hits, {} misses, {} evictions, {} resident",
            self.accepted,
            self.completed,
            self.served_cached,
            self.failed,
            self.shed,
            self.expired,
            self.rejected,
            self.drained,
            self.store.hits,
            self.store.misses,
            self.store.evictions,
            self.store.len,
        )
    }
}

struct Job {
    key: String,
    id: String,
    deadline_at: Option<Instant>,
    /// `None` for jobs re-adopted from the journal (no client waiting).
    reply: Option<mpsc::Sender<String>>,
}

struct Shared {
    cfg: ServeConfig,
    exec: Box<dyn JobExecutor>,
    store: LruStore<String, String>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    journal: Option<Mutex<RunJournal>>,
    draining: AtomicBool,
    counters: Counters,
    /// First unrecoverable error (journal persistence failure); forces a
    /// drain and is propagated out of [`Server::run`].
    fatal: Mutex<Option<String>>,
}

impl Shared {
    fn journal_append(&self, label: &str, status: &str, data: &str) {
        let Some(journal) = &self.journal else {
            return;
        };
        let appended = journal
            .lock()
            .expect("journal lock")
            .append(label, status, data);
        if let Err(e) = appended {
            // A journal that cannot persist must stop the daemon —
            // `--resume` would otherwise silently lose accepted work.
            self.fatal
                .lock()
                .expect("fatal lock")
                .get_or_insert_with(|| format!("journal append for `{label}`: {e}"));
            self.draining.store(true, Ordering::SeqCst);
            self.queue_cv.notify_all();
        }
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }
}

/// Stable per-job seed index: FNV-1a over the job key, so attempt seeds
/// depend on the job's identity, never on submission order.
fn seed_index(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn response(pairs: &[(&str, &str)]) -> String {
    jsonl::write_object(pairs)
}

/// A bound, resumed, worker-spawned daemon, ready to accept connections.
///
/// Splitting construction ([`Server::bind`]) from the accept loop
/// ([`Server::run`]) lets the caller announce the actual bound address
/// (port 0 resolves at bind time) before blocking.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    workers: Vec<std::thread::JoinHandle<()>>,
    resume_summary: Option<String>,
}

impl Server {
    /// Bind the listener, open or resume the journal, seed the result
    /// store from replayed renderings, re-adopt in-flight jobs, and spawn
    /// the worker pool.
    ///
    /// # Errors
    ///
    /// Bind failures, journal open/resume failures (including mid-file
    /// corruption), and invalid configuration.
    pub fn bind(cfg: ServeConfig, exec: Box<dyn JobExecutor>) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;

        let (journal, replay) = match &cfg.run_dir {
            Some(dir) if cfg.resume => {
                let (j, replay) = RunJournal::resume(dir)?;
                (Some(Mutex::new(j)), replay)
            }
            Some(dir) => (
                Some(Mutex::new(RunJournal::create(dir)?)),
                Replay::default(),
            ),
            None => (None, Replay::default()),
        };

        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            store: LruStore::new(cfg.cache_capacity),
            cfg,
            exec,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            journal,
            draining: AtomicBool::new(false),
            counters: Counters::default(),
            fatal: Mutex::new(None),
        });

        // Replay completed renderings into the result store: a
        // resubmitted job answers byte-identically from memory, without
        // re-execution.
        for (key, data) in &replay.completed {
            shared.store.insert(key.clone(), data.clone());
            Counters::bump(&shared.counters.replayed);
        }
        // Re-adopt in-flight jobs: journaled `accepted` (or otherwise
        // unfinished) without a `completed` record. They run ahead of any
        // new submissions, with no client attached — their results land
        // in the journal and the store, ready for resubmission.
        let adopted = replay.adopted_labels();
        let resume_summary = shared.cfg.resume.then(|| replay.resume_summary());
        {
            let mut queue = shared.queue.lock().expect("queue lock");
            for key in adopted {
                if shared.exec.validate(&key).is_err() {
                    // A journal from an older suite may name jobs this
                    // executor no longer knows; surface, don't crash.
                    eprintln!("serve: ignoring unknown journaled job `{key}`");
                    continue;
                }
                Counters::bump(&shared.counters.adopted);
                queue.push_back(Job {
                    key,
                    id: "adopted".to_owned(),
                    deadline_at: None,
                    reply: None,
                });
            }
        }

        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dabench-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();

        Ok(Self {
            shared,
            listener,
            workers,
            resume_summary,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The resume one-liner (adopted / replayed / abandoned), when the
    /// daemon was started with `--resume`.
    #[must_use]
    pub fn resume_summary(&self) -> Option<&str> {
        self.resume_summary.as_deref()
    }

    /// Accept and serve connections until `shutdown` is set or a `drain`
    /// op arrives, then drain gracefully: stop accepting, finish
    /// in-flight points, answer queued jobs with `drained`, join every
    /// thread, and return the final tallies.
    ///
    /// # Errors
    ///
    /// A journal persistence failure mid-run (the daemon drains first, so
    /// clients holding connections still get answers for in-flight work).
    pub fn run(self, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if shutdown.load(Ordering::SeqCst) {
                self.shared.start_drain();
            }
            if self.shared.is_draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    connections.retain(|h| !h.is_finished());
                    connections.push(
                        std::thread::Builder::new()
                            .name("dabench-serve-conn".to_owned())
                            .spawn(move || connection_loop(&shared, stream))
                            .expect("spawn serve connection"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: workers flush the queue (answering `drained`), then exit;
        // connection threads notice the flag on their next read timeout.
        self.shared.start_drain();
        for handle in self.workers {
            let _ = handle.join();
        }
        for handle in connections {
            let _ = handle.join();
        }
        if let Some(fatal) = self.shared.fatal.lock().expect("fatal lock").take() {
            return Err(io::Error::other(fatal));
        }
        let c = &self.shared.counters;
        Ok(ServeSummary {
            accepted: c.accepted.load(Ordering::SeqCst),
            completed: c.completed.load(Ordering::SeqCst),
            failed: c.failed.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            expired: c.expired.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            drained: c.drained.load(Ordering::SeqCst),
            served_cached: c.served_cached.load(Ordering::SeqCst),
            adopted: c.adopted.load(Ordering::SeqCst),
            replayed: c.replayed.load(Ordering::SeqCst),
            store: self.shared.store.stats(),
        })
    }

    /// Publish the result-store counters to the [`crate::obs`] bus (call
    /// inside a point context, after [`Server::run`] returns — the CLI
    /// does this for `--metrics`).
    pub fn publish_store_obs(summary: &ServeSummary) {
        crate::obs::counter("serve.store.hits", summary.store.hits as f64);
        crate::obs::counter("serve.store.misses", summary.store.misses as f64);
        crate::obs::counter("serve.store.evictions", summary.store.evictions as f64);
        crate::obs::counter("serve.store.resident", summary.store.len as f64);
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (job, draining) = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                let draining = shared.is_draining();
                if let Some(job) = queue.pop_front() {
                    break (Some(job), draining);
                }
                if draining {
                    break (None, true);
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        let Some(job) = job else {
            return; // queue empty and draining: worker exits
        };
        if draining {
            // Finish only in-flight points on drain; queued jobs get a
            // structured answer and keep their `accepted` journal record,
            // so a restart with --resume re-adopts them.
            Counters::bump(&shared.counters.drained);
            send_reply(
                &job,
                &response(&[
                    ("id", &job.id),
                    ("job", &job.key),
                    ("status", "drained"),
                    ("error", "daemon is draining; resubmit after restart"),
                ]),
            );
            continue;
        }
        run_job(shared, job);
    }
}

fn send_reply(job: &Job, line: &str) {
    if let Some(reply) = &job.reply {
        let _ = reply.send(line.to_owned()); // client may have gone away
    }
}

fn run_job(shared: &Arc<Shared>, job: Job) {
    if job.deadline_at.is_some_and(|t| Instant::now() > t) {
        Counters::bump(&shared.counters.expired);
        shared.journal_append(&job.key, "expired", "queue-wait deadline exceeded");
        send_reply(
            &job,
            &response(&[
                ("id", &job.id),
                ("job", &job.key),
                ("status", "expired"),
                ("error", "deadline expired before execution"),
            ]),
        );
        return;
    }

    let policy = SupervisePolicy {
        deadline: shared.cfg.deadline,
        max_retries: shared.cfg.max_retries,
        seed: shared.cfg.seed,
        ..SupervisePolicy::default()
    };
    let exec_shared = Arc::clone(shared);
    let exec_key = job.key.clone();
    let outcome = supervise_point(&job.key, seed_index(&job.key), &policy, move |seed| {
        exec_shared.exec.execute(&exec_key, seed)
    });

    let line = match &outcome {
        PointOutcome::Completed { value, .. } => {
            shared.store.insert(job.key.clone(), value.clone());
            shared.journal_append(&job.key, "completed", value);
            Counters::bump(&shared.counters.completed);
            response(&[
                ("id", &job.id),
                ("job", &job.key),
                ("status", "ok"),
                ("source", "executed"),
                ("data", value),
            ])
        }
        PointOutcome::Failed { error, retries } => {
            let detail = if *retries > 0 {
                format!("{error} (after {retries} retries)")
            } else {
                error.to_string()
            };
            shared.journal_append(&job.key, "failed", &detail);
            Counters::bump(&shared.counters.failed);
            response(&[
                ("id", &job.id),
                ("job", &job.key),
                ("status", "failed"),
                ("error", &detail),
            ])
        }
        PointOutcome::Panicked { message } => {
            shared.journal_append(&job.key, "panicked", message);
            Counters::bump(&shared.counters.failed);
            response(&[
                ("id", &job.id),
                ("job", &job.key),
                ("status", "failed"),
                ("error", message),
            ])
        }
        PointOutcome::TimedOut { deadline } => {
            let detail = format!("exceeded {:.1} s deadline", deadline.as_secs_f64());
            shared.journal_append(&job.key, "timed-out", &detail);
            Counters::bump(&shared.counters.failed);
            response(&[
                ("id", &job.id),
                ("job", &job.key),
                ("status", "failed"),
                ("error", &detail),
            ])
        }
        PointOutcome::Journaled { .. } => unreachable!("workers never see journaled outcomes"),
    };
    send_reply(&job, &line);
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    // Short read timeouts keep the thread responsive to drain without a
    // dedicated wakeup channel; partially read lines survive in `buf`
    // across timeouts because `read_line` appends.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = io::BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return, // EOF: client closed
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let reply = handle_request(shared, line);
                if writer.write_all(reply.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shared.is_draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_request(shared: &Arc<Shared>, line: &str) -> String {
    let Some(fields) = jsonl::parse_object(line) else {
        Counters::bump(&shared.counters.rejected);
        return response(&[
            ("status", "error"),
            (
                "error",
                &format!(
                    "malformed request (expected one flat JSON object per line; got hex {})",
                    jsonl::hex_snippet(line, 24)
                ),
            ),
        ]);
    };
    let id = fields.get("id").map_or("", String::as_str);
    match fields.get("op").map(String::as_str) {
        Some("ping") => response(&[("id", id), ("status", "ok"), ("protocol", PROTOCOL)]),
        Some("stats") => stats_response(shared, id),
        Some("drain") => {
            shared.start_drain();
            response(&[("id", id), ("status", "ok"), ("draining", "true")])
        }
        Some("submit") => handle_submit(shared, id, &fields),
        Some(other) => {
            Counters::bump(&shared.counters.rejected);
            response(&[
                ("id", id),
                ("status", "error"),
                ("error", &format!("unknown op `{other}`")),
            ])
        }
        None => {
            Counters::bump(&shared.counters.rejected);
            response(&[("id", id), ("status", "error"), ("error", "missing op")])
        }
    }
}

/// Queue depth at which cold heavy jobs start being shed: 3/4 of capacity,
/// rounded up. Computed as `capacity - capacity / 4`, which equals
/// `ceil(3 * capacity / 4)` for every `usize` without the intermediate
/// multiplication that would wrap for capacities above `usize::MAX / 4`.
/// At capacity 1 the watermark is 1, so an idle daemon still admits both
/// light and heavy jobs.
fn pressure_watermark(capacity: usize) -> usize {
    capacity - capacity / 4
}

fn handle_submit(
    shared: &Arc<Shared>,
    id: &str,
    fields: &std::collections::BTreeMap<String, String>,
) -> String {
    let Some(job_key) = fields.get("job") else {
        Counters::bump(&shared.counters.rejected);
        return response(&[
            ("id", id),
            ("status", "error"),
            ("error", "submit needs a job"),
        ]);
    };
    if let Err(e) = shared.exec.validate(job_key) {
        Counters::bump(&shared.counters.rejected);
        return response(&[("id", id), ("status", "error"), ("error", &e)]);
    }
    let deadline_at = match fields.get("deadline_ms") {
        Some(ms) => match ms.parse::<u64>() {
            Ok(ms) => Some(Instant::now() + Duration::from_millis(ms)),
            Err(e) => {
                Counters::bump(&shared.counters.rejected);
                return response(&[
                    ("id", id),
                    ("status", "error"),
                    ("error", &format!("deadline_ms: {e}")),
                ]);
            }
        },
        None => None,
    };

    // Fast path: identical requests answered from the shared store,
    // bypassing admission entirely — cache hits survive any queue state,
    // including drain.
    if let Some(data) = shared.store.get(job_key) {
        Counters::bump(&shared.counters.served_cached);
        return response(&[
            ("id", id),
            ("job", job_key),
            ("status", "ok"),
            ("source", "cache"),
            ("data", &data),
        ]);
    }

    if shared.is_draining() {
        return response(&[
            ("id", id),
            ("job", job_key),
            ("status", "drained"),
            ("error", "daemon is draining; resubmit after restart"),
        ]);
    }

    let retry_after_ms = shared.cfg.retry_after.as_millis().to_string();
    let rx = {
        let mut queue = shared.queue.lock().expect("queue lock");
        let depth = queue.len();
        if depth >= shared.cfg.queue_capacity {
            Counters::bump(&shared.counters.shed);
            return response(&[
                ("id", id),
                ("job", job_key),
                ("status", "shed"),
                ("reason", "queue full"),
                ("retry_after_ms", &retry_after_ms),
            ]);
        }
        // Graceful degradation: above the high-watermark, cold heavy jobs
        // are shed while light jobs (and every cache hit, above) still
        // get through.
        if depth >= pressure_watermark(shared.cfg.queue_capacity) && shared.exec.is_heavy(job_key) {
            Counters::bump(&shared.counters.shed);
            return response(&[
                ("id", id),
                ("job", job_key),
                ("status", "shed"),
                ("reason", "pressure: heavy job shed near capacity"),
                ("retry_after_ms", &retry_after_ms),
            ]);
        }
        // Journal before the job becomes visible to workers: `accepted`
        // must be durable before any work (or crash) can happen on it.
        shared.journal_append(job_key, "accepted", "queued");
        if let Some(fatal) = shared.fatal.lock().expect("fatal lock").clone() {
            return response(&[("id", id), ("status", "error"), ("error", &fatal)]);
        }
        Counters::bump(&shared.counters.accepted);
        let (tx, rx) = mpsc::channel();
        queue.push_back(Job {
            key: job_key.clone(),
            id: id.to_owned(),
            deadline_at,
            reply: Some(tx),
        });
        shared.queue_cv.notify_one();
        rx
    };
    // Block this connection until its job resolves; every queued job is
    // answered exactly once (completed, failed, expired, or drained), so
    // the recv cannot hang past drain.
    rx.recv().unwrap_or_else(|_| {
        response(&[
            ("id", id),
            ("job", job_key),
            ("status", "error"),
            ("error", "daemon dropped the job (shutting down)"),
        ])
    })
}

fn stats_response(shared: &Arc<Shared>, id: &str) -> String {
    let c = &shared.counters;
    let store = shared.store.stats();
    let queued = shared.queue.lock().expect("queue lock").len();
    let pairs: Vec<(String, String)> = vec![
        ("id".into(), id.to_owned()),
        ("status".into(), "ok".into()),
        ("protocol".into(), PROTOCOL.into()),
        ("draining".into(), shared.is_draining().to_string()),
        ("queued".into(), queued.to_string()),
        (
            "queue_capacity".into(),
            shared.cfg.queue_capacity.to_string(),
        ),
        ("workers".into(), shared.cfg.workers.max(1).to_string()),
        (
            "accepted".into(),
            c.accepted.load(Ordering::SeqCst).to_string(),
        ),
        (
            "completed".into(),
            c.completed.load(Ordering::SeqCst).to_string(),
        ),
        ("failed".into(), c.failed.load(Ordering::SeqCst).to_string()),
        ("shed".into(), c.shed.load(Ordering::SeqCst).to_string()),
        (
            "expired".into(),
            c.expired.load(Ordering::SeqCst).to_string(),
        ),
        (
            "rejected".into(),
            c.rejected.load(Ordering::SeqCst).to_string(),
        ),
        (
            "drained".into(),
            c.drained.load(Ordering::SeqCst).to_string(),
        ),
        (
            "served_cached".into(),
            c.served_cached.load(Ordering::SeqCst).to_string(),
        ),
        (
            "adopted".into(),
            c.adopted.load(Ordering::SeqCst).to_string(),
        ),
        (
            "replayed".into(),
            c.replayed.load(Ordering::SeqCst).to_string(),
        ),
        ("cache_hits".into(), store.hits.to_string()),
        ("cache_misses".into(), store.misses.to_string()),
        ("cache_inserts".into(), store.inserts.to_string()),
        ("cache_evictions".into(), store.evictions.to_string()),
        ("cache_resident".into(), store.len.to_string()),
    ];
    let borrowed: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    response(&borrowed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::sync::atomic::AtomicU32;

    /// Test executor: `slow-*` jobs sleep, `fail-*` jobs raise a
    /// retryable error forever, `flaky` fails twice then succeeds,
    /// `heavy-*` jobs are heavy. Everything else echoes deterministically.
    struct MockExec {
        calls: AtomicU32,
        gate: Option<Arc<AtomicBool>>,
    }

    impl MockExec {
        fn boxed() -> Box<dyn JobExecutor> {
            Box::new(Self {
                calls: AtomicU32::new(0),
                gate: None,
            })
        }

        /// A mock whose `heavy-gated` jobs block until the returned flag
        /// is set: deterministic queue pressure with no dependence on
        /// host timing (a timed sleep can drain between a stats poll and
        /// the next submit on a loaded machine).
        fn gated() -> (Box<dyn JobExecutor>, Arc<AtomicBool>) {
            let flag = Arc::new(AtomicBool::new(false));
            let exec = Box::new(Self {
                calls: AtomicU32::new(0),
                gate: Some(Arc::clone(&flag)),
            });
            (exec, flag)
        }
    }

    impl JobExecutor for MockExec {
        fn validate(&self, job: &str) -> Result<(), String> {
            if job.starts_with("bogus") {
                Err(format!("unknown job `{job}`"))
            } else {
                Ok(())
            }
        }

        fn is_heavy(&self, job: &str) -> bool {
            job.starts_with("heavy-") || job.starts_with("slow-")
        }

        fn execute(&self, job: &str, _seed: u64) -> Result<String, PlatformError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            if job == "heavy-gated" {
                let gate = self.gate.as_ref().expect("gated executor");
                let deadline = Instant::now() + Duration::from_secs(120);
                while !gate.load(Ordering::SeqCst) {
                    assert!(Instant::now() < deadline, "gate never released");
                    std::thread::sleep(Duration::from_millis(5));
                }
                return Ok(format!("result for {job}\n"));
            }
            if let Some(ms) = job.strip_prefix("slow-") {
                let ms: u64 = ms.parse().unwrap_or(200);
                std::thread::sleep(Duration::from_millis(ms));
                return Ok(format!("slow result for {job}\n"));
            }
            if job.starts_with("fail-") {
                return Err(PlatformError::DeviceFault {
                    unit: "mock".into(),
                    detail: "always broken".into(),
                });
            }
            if job == "flaky" && self.calls.load(Ordering::SeqCst) <= 2 {
                return Err(PlatformError::CompileFailure("mock flake".into()));
            }
            Ok(format!("result for {job}\nline 2 of {job}\n"))
        }
    }

    struct TestDaemon {
        addr: SocketAddr,
        shutdown: Arc<AtomicBool>,
        handle: std::thread::JoinHandle<io::Result<ServeSummary>>,
    }

    fn spawn_daemon(cfg: ServeConfig, exec: Box<dyn JobExecutor>) -> TestDaemon {
        let server = Server::bind(cfg, exec).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));
        TestDaemon {
            addr,
            shutdown,
            handle,
        }
    }

    impl TestDaemon {
        fn stop(self) -> ServeSummary {
            self.shutdown.store(true, Ordering::SeqCst);
            self.handle
                .join()
                .expect("daemon thread")
                .expect("clean exit")
        }
    }

    struct Client {
        reader: io::BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = io::BufReader::new(stream.try_clone().expect("clone"));
            Self {
                reader,
                writer: stream,
            }
        }

        fn request(&mut self, line: &str) -> std::collections::BTreeMap<String, String> {
            writeln!(self.writer, "{line}").expect("write request");
            self.writer.flush().expect("flush");
            let mut reply = String::new();
            self.reader.read_line(&mut reply).expect("read reply");
            jsonl::parse_object(&reply).unwrap_or_else(|| panic!("flat JSON reply: {reply:?}"))
        }

        fn submit(&mut self, id: &str, job: &str) -> std::collections::BTreeMap<String, String> {
            self.request(&jsonl::write_object(&[
                ("op", "submit"),
                ("id", id),
                ("job", job),
            ]))
        }
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            ..ServeConfig::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dabench-serve-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ping_submit_and_cache_hit_roundtrip() {
        let daemon = spawn_daemon(quick_cfg(), MockExec::boxed());
        let mut client = Client::connect(daemon.addr);

        let pong = client.request("{\"op\":\"ping\",\"id\":\"p1\"}");
        assert_eq!(pong.get("status").map(String::as_str), Some("ok"));
        assert_eq!(pong.get("protocol").map(String::as_str), Some(PROTOCOL));

        let first = client.submit("1", "table-mock");
        assert_eq!(
            first.get("status").map(String::as_str),
            Some("ok"),
            "{first:?}"
        );
        assert_eq!(first.get("source").map(String::as_str), Some("executed"));
        assert_eq!(
            first.get("data").map(String::as_str),
            Some("result for table-mock\nline 2 of table-mock\n"),
            "multi-line data round-trips through escaping"
        );

        let second = client.submit("2", "table-mock");
        assert_eq!(second.get("source").map(String::as_str), Some("cache"));
        assert_eq!(second.get("data"), first.get("data"), "byte-identical");

        let stats = client.request("{\"op\":\"stats\",\"id\":\"s\"}");
        assert_eq!(stats.get("cache_hits").map(String::as_str), Some("1"));
        assert_eq!(stats.get("served_cached").map(String::as_str), Some("1"));

        let summary = daemon.stop();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.served_cached, 1);
        assert_eq!(summary.store.hits, 1);
    }

    #[test]
    fn unknown_jobs_and_malformed_requests_are_structured_errors() {
        let daemon = spawn_daemon(quick_cfg(), MockExec::boxed());
        let mut client = Client::connect(daemon.addr);

        let bad = client.submit("1", "bogus-zzz");
        assert_eq!(bad.get("status").map(String::as_str), Some("error"));
        assert!(bad.get("error").unwrap().contains("unknown job"), "{bad:?}");

        let garbage = client.request("this is not json");
        assert_eq!(garbage.get("status").map(String::as_str), Some("error"));
        assert!(
            garbage.get("error").unwrap().contains("hex"),
            "malformed requests carry a hex snippet: {garbage:?}"
        );

        let noop = client.request("{\"id\":\"x\"}");
        assert!(noop.get("error").unwrap().contains("missing op"));

        let summary = daemon.stop();
        assert_eq!(summary.rejected, 3);
        assert_eq!(summary.completed, 0);
    }

    #[test]
    fn full_queue_sheds_with_retry_after_instead_of_blocking() {
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..quick_cfg()
        };
        let daemon = spawn_daemon(cfg, MockExec::boxed());

        // Connection A occupies the single worker with a slow job.
        let mut a = Client::connect(daemon.addr);
        let a_thread = std::thread::spawn({
            let addr = daemon.addr;
            move || {
                let _ = addr;
                a.submit("a", "slow-400")
            }
        });
        std::thread::sleep(Duration::from_millis(100));

        // Connection B fills the queue; connection C must be shed fast.
        let mut b = Client::connect(daemon.addr);
        let b_thread = std::thread::spawn(move || b.submit("b", "slow-400"));
        std::thread::sleep(Duration::from_millis(100));

        let mut c = Client::connect(daemon.addr);
        let start = Instant::now();
        let shed = c.submit("c", "light-job");
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "shed responses must not wait for the queue"
        );
        assert_eq!(
            shed.get("status").map(String::as_str),
            Some("shed"),
            "{shed:?}"
        );
        assert_eq!(shed.get("reason").map(String::as_str), Some("queue full"));
        assert_eq!(shed.get("retry_after_ms").map(String::as_str), Some("250"));

        let a_reply = a_thread.join().expect("a");
        let b_reply = b_thread.join().expect("b");
        assert_eq!(a_reply.get("status").map(String::as_str), Some("ok"));
        assert_eq!(b_reply.get("status").map(String::as_str), Some("ok"));

        let summary = daemon.stop();
        assert_eq!(summary.shed, 1);
        assert_eq!(summary.completed, 2);
    }

    #[test]
    fn pressure_watermark_is_three_quarters_rounded_up_without_overflow() {
        // Matches the rational definition ceil(3c/4) wherever the naive
        // `depth * 4 >= capacity * 3` comparison is computable...
        for capacity in 1usize..=1000 {
            let expected = (3 * capacity).div_ceil(4);
            assert_eq!(pressure_watermark(capacity), expected, "cap={capacity}");
        }
        // ...and stays finite where that comparison would wrap.
        assert_eq!(pressure_watermark(usize::MAX), usize::MAX - usize::MAX / 4);
        assert!(pressure_watermark(usize::MAX) > usize::MAX / 2);
    }

    #[test]
    fn capacity_one_daemon_still_admits_jobs_when_idle() {
        // Regression: at queue_capacity 1 the watermark is 1, not 0 — an
        // idle daemon must execute light AND heavy jobs rather than
        // shedding everything under permanent "pressure".
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..quick_cfg()
        };
        let daemon = spawn_daemon(cfg, MockExec::boxed());
        let mut client = Client::connect(daemon.addr);

        let light = client.submit("l", "light-job");
        assert_eq!(
            light.get("status").map(String::as_str),
            Some("ok"),
            "{light:?}"
        );
        let heavy = client.submit("h", "heavy-sweep");
        assert_eq!(
            heavy.get("status").map(String::as_str),
            Some("ok"),
            "{heavy:?}"
        );

        let summary = daemon.stop();
        assert_eq!(summary.shed, 0);
        assert_eq!(summary.completed, 2);
    }

    #[test]
    fn pressure_sheds_heavy_jobs_but_admits_light_ones() {
        // Capacity 4, watermark at 3: with 3 queued, heavy is shed,
        // light still gets in. The executing blocker is gated on a flag
        // this test holds closed, so the queue cannot drain between the
        // depth observation and the heavy submit however loaded the
        // host is.
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 4,
            ..quick_cfg()
        };
        let (exec, release) = MockExec::gated();
        let daemon = spawn_daemon(cfg, exec);

        let mut blockers = Vec::new();
        for i in 0..4 {
            let mut c = Client::connect(daemon.addr);
            let id = format!("b{i}");
            blockers.push(std::thread::spawn(move || c.submit(&id, "heavy-gated")));
        }
        // Wait until one executes and three sit queued (depth == 3).
        // The depth is terminal while the gate is closed, so the long
        // deadline only matters when the host CPU is saturated (e.g.
        // the full workspace suite running in parallel).
        let mut stats_client = Client::connect(daemon.addr);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let stats = stats_client.request("{\"op\":\"stats\",\"id\":\"s\"}");
            if stats.get("queued").map(String::as_str) == Some("3") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "queue never reached depth 3: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        let mut heavy = Client::connect(daemon.addr);
        let shed = heavy.submit("h", "heavy-sweep");
        assert_eq!(
            shed.get("status").map(String::as_str),
            Some("shed"),
            "{shed:?}"
        );
        assert!(shed.get("reason").unwrap().contains("pressure"), "{shed:?}");

        // The light submit only *responds* once the job executes, which
        // needs the gate open — so prove admission-under-pressure via
        // stats (depth 3 -> 4 while the gate is still closed), then
        // release and collect the response.
        let mut light = Client::connect(daemon.addr);
        let light_thread = std::thread::spawn(move || light.submit("l", "light-job"));
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let stats = stats_client.request("{\"op\":\"stats\",\"id\":\"s\"}");
            if stats.get("queued").map(String::as_str) == Some("4") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "light job was not admitted under pressure: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        release.store(true, Ordering::SeqCst);
        let ok = light_thread.join().expect("light client");
        assert_eq!(ok.get("status").map(String::as_str), Some("ok"), "{ok:?}");
        for b in blockers {
            let r = b.join().expect("blocker client");
            assert_eq!(
                r.get("status").map(String::as_str),
                Some("ok"),
                "gated blocker must complete once released: {r:?}"
            );
        }
        let summary = daemon.stop();
        assert_eq!(summary.shed, 1);
    }

    #[test]
    fn queue_wait_deadline_expires_jobs_with_a_structured_response() {
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..quick_cfg()
        };
        let daemon = spawn_daemon(cfg, MockExec::boxed());

        let mut a = Client::connect(daemon.addr);
        let a_thread = std::thread::spawn(move || a.submit("a", "slow-400"));
        std::thread::sleep(Duration::from_millis(100));

        let mut b = Client::connect(daemon.addr);
        let reply = b.request(&jsonl::write_object(&[
            ("op", "submit"),
            ("id", "b"),
            ("job", "light-b"),
            ("deadline_ms", "1"),
        ]));
        assert_eq!(
            reply.get("status").map(String::as_str),
            Some("expired"),
            "{reply:?}"
        );

        let _ = a_thread.join();
        let summary = daemon.stop();
        assert_eq!(summary.expired, 1);
    }

    #[test]
    fn failed_jobs_report_the_platform_error() {
        let cfg = ServeConfig {
            max_retries: 1,
            ..quick_cfg()
        };
        let daemon = spawn_daemon(cfg, MockExec::boxed());
        let mut client = Client::connect(daemon.addr);
        let reply = client.submit("1", "fail-device");
        assert_eq!(
            reply.get("status").map(String::as_str),
            Some("failed"),
            "{reply:?}"
        );
        let error = reply.get("error").unwrap();
        assert!(error.contains("device fault"), "{error}");
        assert!(error.contains("after 1 retries"), "{error}");
        let summary = daemon.stop();
        assert_eq!(summary.failed, 1);
    }

    #[test]
    fn drain_op_answers_queued_jobs_and_exits_clean() {
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..quick_cfg()
        };
        let daemon = spawn_daemon(cfg, MockExec::boxed());

        let mut a = Client::connect(daemon.addr);
        let a_thread = std::thread::spawn(move || a.submit("a", "slow-300"));
        std::thread::sleep(Duration::from_millis(80));
        let mut b = Client::connect(daemon.addr);
        let b_thread = std::thread::spawn(move || b.submit("b", "light-queued"));
        std::thread::sleep(Duration::from_millis(80));

        let mut ctl = Client::connect(daemon.addr);
        let drained = ctl.request("{\"op\":\"drain\",\"id\":\"d\"}");
        assert_eq!(drained.get("draining").map(String::as_str), Some("true"));

        // In-flight job finishes; the queued one gets a drained response.
        let a_reply = a_thread.join().expect("a");
        assert_eq!(
            a_reply.get("status").map(String::as_str),
            Some("ok"),
            "{a_reply:?}"
        );
        let b_reply = b_thread.join().expect("b");
        assert_eq!(
            b_reply.get("status").map(String::as_str),
            Some("drained"),
            "{b_reply:?}"
        );

        let summary = daemon.handle.join().expect("thread").expect("clean");
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.drained, 1);
    }

    #[test]
    fn journaled_daemon_resumes_with_byte_identical_replay_and_adoption() {
        let dir = temp_dir("resume");

        // First daemon: complete one job, accept (but never run) another
        // by writing its journal records the way a SIGKILL would leave
        // them: completed for job A, accepted-only for job B.
        let cfg = ServeConfig {
            run_dir: Some(dir.clone()),
            ..quick_cfg()
        };
        let daemon = spawn_daemon(cfg, MockExec::boxed());
        let mut client = Client::connect(daemon.addr);
        let original = client.submit("1", "table-mock");
        assert_eq!(original.get("status").map(String::as_str), Some("ok"));
        drop(client);
        let _ = daemon.stop();

        // Simulate the kill residue: an accepted-but-unfinished job plus
        // a truncated tail.
        {
            use std::fs::OpenOptions;
            let path = RunJournal::path_in(&dir);
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            writeln!(
                f,
                "{{\"label\":\"orphan-job\",\"status\":\"accepted\",\"data\":\"queued\"}}"
            )
            .expect("append");
            write!(f, "{{\"label\":\"cut-mid-").expect("truncated tail");
        }

        // Second daemon resumes: replays A, adopts orphan-job.
        let cfg = ServeConfig {
            run_dir: Some(dir.clone()),
            resume: true,
            ..quick_cfg()
        };
        let server = Server::bind(cfg, MockExec::boxed()).expect("bind");
        let resume_line = server.resume_summary().expect("summary").to_owned();
        assert_eq!(
            resume_line,
            "resume: 1 replayed from journal, 1 adopted (re-run), 1 abandoned (truncated tail)"
        );
        let addr = server.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));

        let mut client = Client::connect(addr);
        // Replayed rendering comes back byte-identical, from cache, with
        // no re-execution.
        let replayed = client.submit("2", "table-mock");
        assert_eq!(replayed.get("source").map(String::as_str), Some("cache"));
        assert_eq!(replayed.get("data"), original.get("data"), "byte-identical");

        // The adopted job ran at startup; give it a moment, then expect a
        // cache answer for it too.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let adopted = client.submit("3", "orphan-job");
            if adopted.get("source").map(String::as_str) == Some("cache") {
                break;
            }
            assert!(Instant::now() < deadline, "adopted job never completed");
            std::thread::sleep(Duration::from_millis(20));
        }

        shutdown.store(true, Ordering::SeqCst);
        let summary = handle.join().expect("thread").expect("clean");
        assert_eq!(summary.replayed, 1);
        assert_eq!(summary.adopted, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submissions_during_drain_get_a_drained_response() {
        let daemon = spawn_daemon(quick_cfg(), MockExec::boxed());
        let mut client = Client::connect(daemon.addr);
        // Warm the cache first: cache hits must survive drain.
        let warm = client.submit("1", "warm-job");
        assert_eq!(warm.get("status").map(String::as_str), Some("ok"));

        let _ = client.request("{\"op\":\"drain\",\"id\":\"d\"}");
        let refused = client.submit("2", "cold-job");
        assert_eq!(
            refused.get("status").map(String::as_str),
            Some("drained"),
            "{refused:?}"
        );
        let cached = client.submit("3", "warm-job");
        assert_eq!(
            cached.get("source").map(String::as_str),
            Some("cache"),
            "{cached:?}"
        );

        let summary = daemon.handle.join().expect("thread").expect("clean");
        assert_eq!(summary.completed, 1);
    }

    #[test]
    fn retryable_failures_are_retried_to_success() {
        let cfg = ServeConfig {
            max_retries: 2,
            ..quick_cfg()
        };
        let daemon = spawn_daemon(cfg, MockExec::boxed());
        let mut client = Client::connect(daemon.addr);
        let reply = client.submit("1", "flaky");
        assert_eq!(
            reply.get("status").map(String::as_str),
            Some("ok"),
            "{reply:?}"
        );
        let summary = daemon.stop();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.failed, 0);
    }
}
