//! Multi-process sweep sharding: deterministic point partitioning, a
//! parent-side fleet supervisor, and a crash-safe merge of per-shard run
//! journals back into the canonical combined journal.
//!
//! The run journal ([`crate::supervise::RunJournal`]) is the merge
//! protocol: each shard worker appends to its own
//! `journal.shard-K.jsonl` (same `dabench-journal-v1` schema, plus
//! `started`/`heartbeat`/`shard` control records), the parent watches the
//! fleet — exit-status crash detection, journal-growth liveness, bounded
//! respawns with deterministic reassignment of a dead shard's unfinished
//! points — and [`merge_journals`] folds the shard journals into a
//! combined journal **byte-identical** to what a single-process run
//! would have written, at any shard count and any completion
//! interleaving. See `docs/sharding.md`.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};

use crate::supervise::{
    format_record, journal_parse_io_error, parse_journal, ParsedJournal, JOURNAL_FILE,
    JOURNAL_SCHEMA, STATUS_STARTED,
};

// ---------------------------------------------------------------------------
// Layout and planning
// ---------------------------------------------------------------------------

/// File name of shard `k`'s journal inside the run directory
/// (`journal.shard-K.jsonl`, next to the combined [`JOURNAL_FILE`]).
#[must_use]
pub fn shard_journal_name(shard: usize) -> String {
    format!("journal.shard-{shard}.jsonl")
}

/// Shard journals present in `dir`, as `(shard index, path)` sorted by
/// index. Only exact `journal.shard-K.jsonl` names match.
///
/// # Errors
///
/// Propagates directory-read failures; a missing `dir` lists as empty.
pub fn list_shard_journals(dir: &Path) -> io::Result<Vec<(usize, PathBuf)>> {
    let mut found = Vec::new();
    if !dir.is_dir() {
        return Ok(found);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("journal.shard-")
            .and_then(|rest| rest.strip_suffix(".jsonl"))
            .and_then(|k| k.parse::<usize>().ok())
        else {
            continue;
        };
        found.push((index, entry.path()));
    }
    found.sort();
    Ok(found)
}

/// Deterministically partition `labels` into at most `shards` round-robin
/// slices (label `i` goes to shard `i % shards`). Never returns an empty
/// shard: the shard count is capped at the label count (minimum one
/// slice, possibly empty, when `labels` is empty). The same inputs always
/// produce the same plan — respawns and `--resume` depend on it.
#[must_use]
pub fn plan_shards(labels: &[String], shards: usize) -> Vec<Vec<String>> {
    let slots = shards.max(1).min(labels.len().max(1));
    let mut plan = vec![Vec::new(); slots];
    for (i, label) in labels.iter().enumerate() {
        plan[i % slots].push(label.clone());
    }
    plan
}

/// Read and parse a journal file ([`parse_journal`] semantics: torn tail
/// tolerated, mid-file corruption is a hard error). A missing file parses
/// as empty — a shard killed before its first append lost nothing.
///
/// # Errors
///
/// I/O failures, schema mismatch, or mid-file corruption.
pub fn read_journal(path: &Path) -> io::Result<ParsedJournal> {
    if !path.exists() {
        return Ok(ParsedJournal::default());
    }
    let contents = std::fs::read_to_string(path)?;
    parse_journal(&contents).map_err(|e| journal_parse_io_error(path, &e))
}

/// Labels with a durable final record (completed or failed any way) in
/// `parsed` — the points a respawned worker must *not* re-run.
#[must_use]
pub fn final_labels(parsed: &ParsedJournal) -> BTreeSet<String> {
    parsed
        .records
        .iter()
        .filter(|r| r.is_final())
        .map(|r| r.label.clone())
        .collect()
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// A failure the parent synthesizes for a point no journal finalized —
/// a dead shard's dropped work after the respawn budget ran out. Merged
/// (and journaled) like a real failure record so nothing is silently
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticFailure {
    /// Status keyword to record (normally `failed`).
    pub status: String,
    /// Failure description naming the shard and why it died.
    pub data: String,
}

/// One point's merged fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedPoint {
    /// Final status keyword (`completed`, `failed`, `panicked`, …).
    pub status: String,
    /// Rendered result (completed) or failure description.
    pub data: String,
    /// Metrics digest journaled alongside a completed record, from the
    /// same source journal.
    pub metrics: Option<String>,
    /// Index into the merge's `sources` that supplied the record;
    /// `usize::MAX` for a [`SyntheticFailure`].
    pub source: usize,
}

/// Result of [`merge_journals`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeResult {
    /// The rebuilt combined journal: schema header plus one final record
    /// (and optional metrics record) per resolved point, in canonical
    /// `order` — byte-identical to a single-process run's journal.
    pub text: String,
    /// Per-label merged fate. Labels from `order` that no source and no
    /// synthetic failure resolved are absent (still pending).
    pub points: BTreeMap<String, MergedPoint>,
}

/// Fold journals into the canonical combined journal.
///
/// `order` is the sweep's canonical point order (the order a
/// single-process run journals in); `sources` are parsed journals in
/// precedence order — the existing combined journal first (so a
/// re-merge is idempotent and `--resume` keeps prior results), then the
/// shard journals ascending. For each label: the first source holding a
/// `completed` record wins (last such record within that source, with
/// the last metrics record from the *same* source); otherwise a
/// [`SyntheticFailure`] from the parent; otherwise the first source
/// holding a real failure record (last within that source). Control and
/// `started` records are stripped. The output is therefore independent
/// of shard count and completion interleaving.
#[must_use]
pub fn merge_journals(
    order: &[String],
    sources: &[ParsedJournal],
    synthetic: &BTreeMap<String, SyntheticFailure>,
) -> MergeResult {
    // One linear pass per source, folding each label's last record of
    // each kind — the merge stays O(records + labels·sources) instead of
    // re-scanning every source per label (quadratic at sweep scale; the
    // `journal_merge_1k` bench case pins this path).
    #[derive(Default)]
    struct LabelFold<'a> {
        completed: Option<&'a str>,
        metrics: Option<&'a str>,
        failure: Option<(&'a str, &'a str)>,
    }
    let folded: Vec<BTreeMap<&str, LabelFold<'_>>> = sources
        .iter()
        .map(|src| {
            let mut by_label: BTreeMap<&str, LabelFold<'_>> = BTreeMap::new();
            for rec in &src.records {
                if rec.is_control() {
                    continue;
                }
                let fold = by_label.entry(rec.label.as_str()).or_default();
                match (rec.status.as_deref(), rec.data.as_deref()) {
                    (Some("completed"), Some(d)) => fold.completed = Some(d),
                    (Some("metrics"), Some(d)) => fold.metrics = Some(d),
                    (Some("completed" | "metrics") | None, _) => {}
                    (Some(status), data) if status != STATUS_STARTED => {
                        fold.failure = Some((status, data.unwrap_or("")));
                    }
                    _ => {}
                }
            }
            by_label
        })
        .collect();

    let mut result = MergeResult {
        text: format!("{{\"schema\":\"{JOURNAL_SCHEMA}\"}}\n"),
        points: BTreeMap::new(),
    };
    for label in order {
        let mut chosen: Option<MergedPoint> = None;
        // Pass 1: first source with a completed record wins, with the
        // last metrics record from the *same* source.
        for (si, folds) in folded.iter().enumerate() {
            if let Some(fold) = folds.get(label.as_str()) {
                if let Some(data) = fold.completed {
                    chosen = Some(MergedPoint {
                        status: "completed".to_owned(),
                        data: data.to_owned(),
                        metrics: fold.metrics.map(str::to_owned),
                        source: si,
                    });
                    break;
                }
            }
        }
        // Pass 2: parent-synthesized failures for dropped points.
        if chosen.is_none() {
            if let Some(s) = synthetic.get(label) {
                chosen = Some(MergedPoint {
                    status: s.status.clone(),
                    data: s.data.clone(),
                    metrics: None,
                    source: usize::MAX,
                });
            }
        }
        // Pass 3: first source with a durable failure record.
        if chosen.is_none() {
            for (si, folds) in folded.iter().enumerate() {
                if let Some((status, data)) = folds.get(label.as_str()).and_then(|f| f.failure) {
                    chosen = Some(MergedPoint {
                        status: status.to_owned(),
                        data: data.to_owned(),
                        metrics: None,
                        source: si,
                    });
                    break;
                }
            }
        }
        if let Some(point) = chosen {
            result
                .text
                .push_str(&format_record(label, &point.status, &point.data));
            result.text.push('\n');
            if point.status == "completed" {
                if let Some(m) = &point.metrics {
                    result.text.push_str(&format_record(label, "metrics", m));
                    result.text.push('\n');
                }
            }
            result.points.insert(label.clone(), point);
        }
    }
    result
}

/// Atomically replace the combined journal in `dir` with merged `text`:
/// write a temp file, fsync it, and rename over [`JOURNAL_FILE`] — a
/// crash mid-merge leaves either the old journal or the new one, never a
/// torn hybrid.
///
/// # Errors
///
/// Propagates write/fsync/rename failures.
pub fn write_merged(dir: &Path, text: &str) -> io::Result<PathBuf> {
    use std::io::Write;
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{JOURNAL_FILE}.tmp"));
    let path = dir.join(JOURNAL_FILE);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Delete every shard journal in `dir` (after a successful merge — their
/// records now live in the combined journal).
///
/// # Errors
///
/// Propagates directory-read and unlink failures.
pub fn remove_shard_journals(dir: &Path) -> io::Result<()> {
    for (_, path) in list_shard_journals(dir)? {
        std::fs::remove_file(path)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fleet supervision
// ---------------------------------------------------------------------------

/// Parent-side fleet policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Respawns allowed per shard before its unfinished points become
    /// hard failures.
    pub max_respawns: u32,
    /// Worker heartbeat interval (the worker appends a heartbeat record
    /// this often; the parent flags a gap after missing two).
    pub heartbeat: Duration,
    /// Journal-growth stall after which a live worker is presumed hung,
    /// killed, and treated as a crash.
    pub stall_timeout: Duration,
    /// Parent poll interval.
    pub poll: Duration,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            max_respawns: 2,
            heartbeat: Duration::from_millis(200),
            stall_timeout: Duration::from_secs(10),
            poll: Duration::from_millis(50),
        }
    }
}

/// How a shard ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Final worker exited 0: every assigned point has a durable record.
    Clean,
    /// Final worker exited 2: finished, but some points failed.
    Partial,
    /// Respawn budget exhausted; `dropped` points never got a final
    /// record and must be synthesized as failures.
    Dead {
        /// Labels the shard died holding.
        dropped: Vec<String>,
    },
}

/// Per-shard supervision rollup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index (journal `journal.shard-K.jsonl`).
    pub shard: usize,
    /// Points originally assigned by the plan.
    pub assigned: Vec<String>,
    /// Respawns consumed.
    pub respawns: u32,
    /// Points re-assigned to respawned workers (sum over respawns).
    pub reassigned_points: u32,
    /// Distinct journal-growth stalls observed (once per episode).
    pub heartbeat_gaps: u32,
    /// One description per worker death (`killed by signal 9`, `exited
    /// with code 134`, `stalled …`), in order.
    pub deaths: Vec<String>,
    /// Final outcome.
    pub outcome: ShardOutcome,
}

struct LiveShard {
    index: usize,
    child: Child,
    assigned: Vec<String>,
    journal: PathBuf,
    last_len: u64,
    last_growth: Instant,
    in_gap: bool,
}

fn describe_exit(status: ExitStatus) -> String {
    if let Some(code) = status.code() {
        return format!("exited with code {code}");
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("killed by signal {sig}");
        }
    }
    "terminated without exit code".to_owned()
}

/// Supervise a fleet of shard workers until every shard resolves.
///
/// `spawn(shard, labels)` builds the worker [`Command`] (binary, args,
/// stdio) for one shard life; the supervisor spawns it, then watches:
///
/// - **Exit status**: 0 → [`ShardOutcome::Clean`], 2 →
///   [`ShardOutcome::Partial`]; anything else (including death by
///   signal — a SIGKILLed or OOM-killed worker) is a crash.
/// - **Liveness**: a live worker's journal grows at least every
///   heartbeat interval; no growth for `stall_timeout` means the
///   process is hung — it is killed and treated as a crash.
/// - **Crash**: the shard journal is re-read; points with durable final
///   records are kept, the rest are deterministically re-assigned to a
///   respawned worker (the worker re-adopts its journal and skips
///   completed points). After `max_respawns` the shard is
///   [`ShardOutcome::Dead`] and its unfinished points are reported as
///   dropped — never silently lost.
///
/// # Errors
///
/// Propagates spawn and wait failures (fleet-level I/O problems, not
/// worker crashes — those are the normal path here).
pub fn supervise_shards(
    dir: &Path,
    plan: &[Vec<String>],
    cfg: &ShardConfig,
    spawn: &mut dyn FnMut(usize, &[String]) -> Command,
) -> io::Result<Vec<ShardStatus>> {
    let mut statuses: Vec<ShardStatus> = plan
        .iter()
        .enumerate()
        .map(|(k, labels)| ShardStatus {
            shard: k,
            assigned: labels.clone(),
            respawns: 0,
            reassigned_points: 0,
            heartbeat_gaps: 0,
            deaths: Vec::new(),
            outcome: ShardOutcome::Clean,
        })
        .collect();

    let mut live: Vec<LiveShard> = Vec::new();
    for (k, labels) in plan.iter().enumerate() {
        if labels.is_empty() {
            continue;
        }
        let child = spawn(k, labels).spawn()?;
        live.push(LiveShard {
            index: k,
            child,
            assigned: labels.clone(),
            journal: dir.join(shard_journal_name(k)),
            last_len: 0,
            last_growth: Instant::now(),
            in_gap: false,
        });
    }

    while !live.is_empty() {
        let mut still = Vec::new();
        for mut shard in live {
            let exited = shard.child.try_wait()?;
            if let Some(status) = exited {
                let code = status.code();
                if code == Some(0) || code == Some(2) {
                    statuses[shard.index].outcome = if code == Some(0) {
                        ShardOutcome::Clean
                    } else {
                        ShardOutcome::Partial
                    };
                } else {
                    handle_death(
                        &mut statuses[shard.index],
                        &shard,
                        describe_exit(status),
                        cfg,
                        spawn,
                        &mut still,
                    )?;
                }
                continue;
            }
            // Still running: journal-growth liveness.
            let len = std::fs::metadata(&shard.journal).map_or(0, |m| m.len());
            if len != shard.last_len {
                shard.last_len = len;
                shard.last_growth = Instant::now();
                shard.in_gap = false;
            } else {
                let idle = shard.last_growth.elapsed();
                if !shard.in_gap && idle > cfg.heartbeat * 2 {
                    shard.in_gap = true;
                    statuses[shard.index].heartbeat_gaps += 1;
                }
                if idle > cfg.stall_timeout {
                    let _ = shard.child.kill();
                    let _ = shard.child.wait();
                    let detail = format!(
                        "stalled (no journal growth for {:.1} s); killed",
                        idle.as_secs_f64()
                    );
                    handle_death(
                        &mut statuses[shard.index],
                        &shard,
                        detail,
                        cfg,
                        spawn,
                        &mut still,
                    )?;
                    continue;
                }
            }
            still.push(shard);
        }
        live = still;
        if !live.is_empty() {
            std::thread::sleep(cfg.poll);
        }
    }
    Ok(statuses)
}

fn handle_death(
    status: &mut ShardStatus,
    dead: &LiveShard,
    detail: String,
    cfg: &ShardConfig,
    spawn: &mut dyn FnMut(usize, &[String]) -> Command,
    still: &mut Vec<LiveShard>,
) -> io::Result<()> {
    status.deaths.push(detail);
    // A torn tail is healed by the respawned worker; a journal the
    // parent cannot parse contributes no final records (the conservative
    // reading: re-run everything assigned).
    let parsed = read_journal(&dead.journal).unwrap_or_default();
    let done = final_labels(&parsed);
    let remaining: Vec<String> = dead
        .assigned
        .iter()
        .filter(|l| !done.contains(*l))
        .cloned()
        .collect();
    if remaining.is_empty() {
        // Died after finalizing every point: the records are all there.
        status.outcome = ShardOutcome::Clean;
        return Ok(());
    }
    if status.respawns < cfg.max_respawns {
        status.respawns += 1;
        status.reassigned_points += u32::try_from(remaining.len()).unwrap_or(u32::MAX);
        let child = spawn(dead.index, &remaining).spawn()?;
        still.push(LiveShard {
            index: dead.index,
            child,
            assigned: remaining,
            journal: dead.journal.clone(),
            last_len: 0,
            last_growth: Instant::now(),
            in_gap: false,
        });
    } else {
        status.outcome = ShardOutcome::Dead { dropped: remaining };
    }
    Ok(())
}

/// Render the fleet rollup for stderr: one headline, then a line per
/// death and per dead shard (dropped points named). Deterministic given
/// the same supervision history.
#[must_use]
pub fn render_rollups(statuses: &[ShardStatus]) -> String {
    let clean = statuses
        .iter()
        .filter(|s| s.outcome == ShardOutcome::Clean)
        .count();
    let partial = statuses
        .iter()
        .filter(|s| s.outcome == ShardOutcome::Partial)
        .count();
    let dead = statuses.len() - clean - partial;
    let respawns: u32 = statuses.iter().map(|s| s.respawns).sum();
    let reassigned: u32 = statuses.iter().map(|s| s.reassigned_points).sum();
    let gaps: u32 = statuses.iter().map(|s| s.heartbeat_gaps).sum();
    let mut out = format!(
        "shard rollup: {} shards — {clean} clean, {partial} partial, {dead} dead; {respawns} respawns, {reassigned} points reassigned, {gaps} heartbeat gaps\n",
        statuses.len(),
    );
    for s in statuses {
        for death in &s.deaths {
            out.push_str(&format!("  [shard {}] died: {death}\n", s.shard));
        }
        if let ShardOutcome::Dead { dropped } = &s.outcome {
            out.push_str(&format!(
                "  [shard {}] respawn budget exhausted after {} respawns; dropped: {}\n",
                s.shard,
                s.respawns,
                dropped.join(", ")
            ));
        }
    }
    out
}

/// Publish per-shard supervision counters on the obs bus
/// (`shard.respawns`, `shard.reassigned_points`, `shard.heartbeat_gaps`
/// under point contexts `shard-K`). A no-op unless a recorder is
/// enabled, like every obs emission.
pub fn emit_shard_counters(statuses: &[ShardStatus]) {
    for s in statuses {
        let index = 9000 + s.shard as u64;
        crate::obs::with_point(index, &format!("shard-{}", s.shard), || {
            crate::obs::counter("shard.respawns", f64::from(s.respawns));
            crate::obs::counter("shard.reassigned_points", f64::from(s.reassigned_points));
            crate::obs::counter("shard.heartbeat_gaps", f64::from(s.heartbeat_gaps));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::{JournalRecord, SHARD_CONTROL_LABEL, STATUS_HEARTBEAT, STATUS_STARTED};

    fn labels(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    fn journal(records: &[(&str, &str, &str)]) -> ParsedJournal {
        ParsedJournal {
            records: records
                .iter()
                .map(|(l, s, d)| JournalRecord {
                    label: (*l).to_owned(),
                    status: Some((*s).to_owned()),
                    data: Some((*d).to_owned()),
                })
                .collect(),
            valid_bytes: 0,
            dropped_tail: None,
        }
    }

    #[test]
    fn plan_is_round_robin_and_deterministic() {
        let ls = labels(&["a", "b", "c", "d", "e"]);
        let plan = plan_shards(&ls, 2);
        assert_eq!(plan, vec![labels(&["a", "c", "e"]), labels(&["b", "d"])]);
        assert_eq!(plan, plan_shards(&ls, 2));
    }

    #[test]
    fn plan_caps_shards_at_label_count() {
        let ls = labels(&["a", "b"]);
        assert_eq!(plan_shards(&ls, 8).len(), 2);
        assert_eq!(plan_shards(&[], 4), vec![Vec::<String>::new()]);
        assert_eq!(plan_shards(&ls, 0), vec![ls.clone()]);
    }

    #[test]
    fn shard_journal_names_round_trip_through_listing() {
        let dir = std::env::temp_dir().join(format!("dabench-shard-list-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for k in [2usize, 0, 1] {
            std::fs::write(dir.join(shard_journal_name(k)), "x").unwrap();
        }
        std::fs::write(dir.join("journal.jsonl"), "x").unwrap();
        std::fs::write(dir.join("journal.shard-x.jsonl"), "x").unwrap();
        let found = list_shard_journals(&dir).unwrap();
        assert_eq!(
            found.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_strips_control_records_and_orders_canonically() {
        let order = labels(&["a", "b"]);
        let shard0 = journal(&[
            (SHARD_CONTROL_LABEL, "shard", "shard=0"),
            ("b", STATUS_STARTED, "attempt=0"),
            ("b", "completed", "B"),
            (SHARD_CONTROL_LABEL, STATUS_HEARTBEAT, "t=1"),
        ]);
        let shard1 = journal(&[("a", STATUS_STARTED, "attempt=0"), ("a", "completed", "A")]);
        let merged = merge_journals(&order, &[shard0, shard1], &BTreeMap::new());
        assert_eq!(
            merged.text,
            format!(
                "{{\"schema\":\"{JOURNAL_SCHEMA}\"}}\n{}\n{}\n",
                format_record("a", "completed", "A"),
                format_record("b", "completed", "B"),
            )
        );
        assert_eq!(merged.points["a"].source, 1);
        assert_eq!(merged.points["b"].source, 0);
    }

    #[test]
    fn merge_prefers_first_source_and_keeps_metrics_from_same_source() {
        let order = labels(&["a"]);
        let combined = journal(&[("a", "completed", "old"), ("a", "metrics", "m-old")]);
        let shard = journal(&[("a", "completed", "new"), ("a", "metrics", "m-new")]);
        let merged = merge_journals(&order, &[combined, shard], &BTreeMap::new());
        assert_eq!(merged.points["a"].data, "old");
        assert_eq!(merged.points["a"].metrics.as_deref(), Some("m-old"));
    }

    #[test]
    fn merge_synthetic_failure_covers_dropped_points() {
        let order = labels(&["a", "b"]);
        let shard = journal(&[("a", "completed", "A"), ("b", STATUS_STARTED, "attempt=0")]);
        let mut synthetic = BTreeMap::new();
        synthetic.insert(
            "b".to_owned(),
            SyntheticFailure {
                status: "failed".to_owned(),
                data: "shard 0 killed by signal 9; respawn budget (0) exhausted".to_owned(),
            },
        );
        let merged = merge_journals(&order, &[shard], &synthetic);
        assert_eq!(merged.points["b"].status, "failed");
        assert_eq!(merged.points["b"].source, usize::MAX);
        assert!(merged.text.contains("respawn budget (0) exhausted"));
    }

    #[test]
    fn merge_falls_back_to_failure_records() {
        let order = labels(&["a"]);
        let shard = journal(&[("a", "timed-out", "exceeded 0.1 s deadline")]);
        let merged = merge_journals(&order, &[shard], &BTreeMap::new());
        assert_eq!(merged.points["a"].status, "timed-out");
        assert!(merged.points["a"].metrics.is_none());
    }

    #[test]
    fn merge_is_idempotent() {
        let order = labels(&["a", "b"]);
        let shard0 = journal(&[("a", "completed", "A"), ("a", "metrics", "M")]);
        let shard1 = journal(&[("b", "failed", "boom")]);
        let first = merge_journals(&order, &[shard0, shard1], &BTreeMap::new());
        let reparsed = parse_journal(&first.text).unwrap();
        let second = merge_journals(&order, &[reparsed], &BTreeMap::new());
        assert_eq!(first.text, second.text);
    }

    #[test]
    fn write_merged_replaces_atomically_and_cleanup_removes_shards() {
        let dir = std::env::temp_dir().join(format!("dabench-shard-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), "old").unwrap();
        std::fs::write(dir.join(shard_journal_name(0)), "x").unwrap();
        let path = write_merged(&dir, "new\n").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "new\n");
        assert!(!dir.join(format!("{JOURNAL_FILE}.tmp")).exists());
        remove_shard_journals(&dir).unwrap();
        assert!(list_shard_journals(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollup_render_names_deaths_and_drops() {
        let statuses = vec![
            ShardStatus {
                shard: 0,
                assigned: labels(&["a"]),
                respawns: 0,
                reassigned_points: 0,
                heartbeat_gaps: 0,
                deaths: Vec::new(),
                outcome: ShardOutcome::Clean,
            },
            ShardStatus {
                shard: 1,
                assigned: labels(&["b", "c"]),
                respawns: 1,
                reassigned_points: 2,
                heartbeat_gaps: 1,
                deaths: vec!["killed by signal 9".to_owned()],
                outcome: ShardOutcome::Dead {
                    dropped: labels(&["b", "c"]),
                },
            },
        ];
        let out = render_rollups(&statuses);
        assert!(out.starts_with(
            "shard rollup: 2 shards — 1 clean, 0 partial, 1 dead; 1 respawns, 2 points reassigned, 1 heartbeat gaps\n"
        ), "{out}");
        assert!(out.contains("[shard 1] died: killed by signal 9"), "{out}");
        assert!(out.contains("dropped: b, c"), "{out}");
    }
}
