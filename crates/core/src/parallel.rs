//! Deterministic scoped-thread parallel execution.
//!
//! The benchmark suite is a batch of independent, pure experiment points
//! (sweep cells, claim checks, sweep fractions), so it parallelizes
//! trivially — the only requirement is that parallel runs stay
//! *byte-identical* to sequential ones. [`par_map`] guarantees that by
//! collecting results in input order: the worker pool may evaluate points
//! in any interleaving, but the returned `Vec` (and therefore everything
//! rendered from it) is independent of scheduling.
//!
//! The worker count resolves, in priority order, from:
//!
//! 1. an explicit [`set_jobs`] call (the CLI's `--jobs N` flag),
//! 2. the `DABENCH_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Everything is dependency-free: `std::thread::scope` plus an atomic
//! work-stealing index, no channels, no rayon.

use crate::supervise::panic_message;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Explicit worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for all subsequent [`par_map`] calls.
///
/// Values are clamped to at least 1. This is what the CLI's `--jobs N`
/// flag calls; it takes precedence over `DABENCH_JOBS` and the detected
/// hardware parallelism.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n.max(1), Ordering::SeqCst);
}

/// The worker count [`par_map`] will use: [`set_jobs`] override, then the
/// `DABENCH_JOBS` environment variable, then the machine's available
/// parallelism (1 if detection fails).
#[must_use]
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("DABENCH_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Map `f` over `items` on a scoped worker pool, returning results in
/// input order.
///
/// Output is byte-identical to `items.iter().map(f).collect()` for any
/// pure `f`, whatever the worker count: scheduling only changes *when*
/// each point is evaluated, never where its result lands. Uses the
/// worker count from [`jobs`].
///
/// # Panics
///
/// Propagates the lowest-index panic raised by `f`, with the panicking
/// point's index attached to the payload so sweep failures are
/// diagnosable (`par_map: point 5 panicked: …`).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count, bypassing the global
/// setting (useful in tests that must not race on [`set_jobs`]).
///
/// # Panics
///
/// Propagates the lowest-index panic raised by `f`, with the panicking
/// point's index attached to the payload.
pub fn par_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    // Observability: each item records into its own child context, tagged
    // with its *input* index, on sequential and parallel paths alike — so
    // the merged trace is a function of the input order, not scheduling.
    let obs_fork = crate::obs::fork();
    let call = |i: usize, item: &T| obs_fork.enter(i as u64, || f(item));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(
                |(i, item)| match catch_unwind(AssertUnwindSafe(|| call(i, item))) {
                    Ok(u) => u,
                    Err(p) => panic!("par_map: point {i} panicked: {}", panic_message(p.as_ref())),
                },
            )
            .collect();
    }

    // Lowest-index panic seen by any worker; propagating the *first* input
    // that died (not whichever thread lost the race) keeps failures
    // deterministic enough to reproduce with `--jobs 1`.
    let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| call(i, &items[i]))) {
                            Ok(u) => local.push((i, u)),
                            Err(p) => {
                                let message = panic_message(p.as_ref());
                                let mut slot = first_panic.lock().expect("panic slot");
                                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                    *slot = Some((i, message));
                                }
                                break;
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panics are caught in-loop"))
            .collect()
    });

    if let Some((i, message)) = first_panic.into_inner().expect("panic slot") {
        panic!("par_map: point {i} panicked: {message}");
    }
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 4, 8, 128] {
            assert_eq!(
                par_map_with(workers, &items, |&x| x * x),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_with(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn non_copy_results_collect_in_order() {
        let items: Vec<usize> = (0..20).collect();
        let out = par_map_with(3, &items, |&i| format!("row-{i}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("row-{i}"));
        }
    }

    #[test]
    fn workers_actually_run_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        par_map_with(4, &items, |_| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(PEAK.load(Ordering::SeqCst) > 1);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        par_map_with(2, &items, |&i| {
            assert!(i != 5, "worker boom");
            i
        });
    }

    #[test]
    #[should_panic(expected = "par_map: point 5 panicked")]
    fn propagated_panics_name_the_point_index() {
        let items: Vec<u32> = (0..8).collect();
        par_map_with(3, &items, |&i| {
            assert!(i != 5, "boom at {i}");
            i
        });
    }

    #[test]
    #[should_panic(expected = "par_map: point 2 panicked")]
    fn sequential_path_also_names_the_point_index() {
        let items: Vec<u32> = (0..4).collect();
        par_map_with(1, &items, |&i| {
            assert!(i != 2, "boom");
            i
        });
    }

    #[test]
    fn lowest_index_panic_wins() {
        // Two panicking points: the propagated payload must name the
        // lowest index regardless of which worker loses the race.
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_with(4, &items, |&i| {
                assert!(!(i == 3 || i == 11), "boom at {i}");
                i
            });
        }))
        .unwrap_err();
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("point 3 panicked"), "{msg}");
    }

    #[test]
    fn jobs_env_var_is_honored_when_unset() {
        // `jobs()` itself races with `set_jobs` in other tests, so only
        // check the clamping contract of the resolved value.
        assert!(jobs() >= 1);
    }
}
