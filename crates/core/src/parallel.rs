//! Deterministic scoped-thread parallel execution.
//!
//! The benchmark suite is a batch of independent, pure experiment points
//! (sweep cells, claim checks, sweep fractions), so it parallelizes
//! trivially — the only requirement is that parallel runs stay
//! *byte-identical* to sequential ones. [`par_map`] guarantees that by
//! collecting results in input order: the worker pool may evaluate points
//! in any interleaving, but the returned `Vec` (and therefore everything
//! rendered from it) is independent of scheduling.
//!
//! The worker count resolves, in priority order, from:
//!
//! 1. an explicit [`set_jobs`] call (the CLI's `--jobs N` flag),
//! 2. the `DABENCH_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Everything is dependency-free: `std::thread::scope` plus an atomic
//! work-stealing index, no channels, no rayon.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Explicit worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for all subsequent [`par_map`] calls.
///
/// Values are clamped to at least 1. This is what the CLI's `--jobs N`
/// flag calls; it takes precedence over `DABENCH_JOBS` and the detected
/// hardware parallelism.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n.max(1), Ordering::SeqCst);
}

/// The worker count [`par_map`] will use: [`set_jobs`] override, then the
/// `DABENCH_JOBS` environment variable, then the machine's available
/// parallelism (1 if detection fails).
#[must_use]
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("DABENCH_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Map `f` over `items` on a scoped worker pool, returning results in
/// input order.
///
/// Output is byte-identical to `items.iter().map(f).collect()` for any
/// pure `f`, whatever the worker count: scheduling only changes *when*
/// each point is evaluated, never where its result lands. Uses the
/// worker count from [`jobs`].
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count, bypassing the global
/// setting (useful in tests that must not race on [`set_jobs`]).
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker.
pub fn par_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 4, 8, 128] {
            assert_eq!(
                par_map_with(workers, &items, |&x| x * x),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_with(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn non_copy_results_collect_in_order() {
        let items: Vec<usize> = (0..20).collect();
        let out = par_map_with(3, &items, |&i| format!("row-{i}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("row-{i}"));
        }
    }

    #[test]
    fn workers_actually_run_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        par_map_with(4, &items, |_| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(PEAK.load(Ordering::SeqCst) > 1);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        par_map_with(2, &items, |&i| {
            assert!(i != 5, "worker boom");
            i
        });
    }

    #[test]
    fn jobs_env_var_is_honored_when_unset() {
        // `jobs()` itself races with `set_jobs` in other tests, so only
        // check the clamping contract of the resolved value.
        assert!(jobs() >= 1);
    }
}
