//! # dabench-core
//!
//! The DABench-LLM benchmarking framework: a standardized, two-tier
//! methodology for profiling dataflow AI accelerators running LLM training
//! workloads, independent of any particular chip.
//!
//! The framework (Sec. IV of the paper) consists of:
//!
//! - **Tier 1 — intra-chip profiling** ([`tier1`]): resource allocation
//!   ratio (Eqs. 1–2), load imbalance (Eqs. 3–4), and resource-utilization
//!   efficiency including a roofline analysis at the global-memory level.
//! - **Tier 2 — inter-chip scalability and deployment** ([`tier2`]):
//!   scaling strategies classified through the DP/TP/PP lens, plus batch
//!   size and precision sweeps.
//! - **Supervised sweep execution** ([`supervise`]): per-point panic
//!   isolation, wall-clock deadlines, deterministic retries, and a
//!   crash-safe run journal enabling `--resume` (see
//!   `docs/supervision.md`).
//! - **Multi-process sharding** ([`shard`]): deterministic partitioning
//!   of sweep points across worker OS processes, a fleet supervisor with
//!   heartbeat liveness and bounded respawns, and a crash-safe merge of
//!   per-shard journals back into the byte-identical combined journal
//!   (see `docs/sharding.md`).
//! - **Observability** ([`obs`]): phase-scoped spans and counters with
//!   logical timestamps, deterministic under [`par_map`], exported as
//!   Chrome `trace_event` JSON and per-phase counter tables (see
//!   `docs/observability.md`).
//! - **Benchmark-as-a-service** ([`serve`]): a zero-dependency daemon
//!   speaking JSONL over TCP, with bounded-queue admission control,
//!   structured load shedding, a shared [`lru`] result store, graceful
//!   drain, and journal-backed crash-safe resume (see `docs/serve.md`).
//!
//! Chips plug in by implementing the [`Platform`] trait (and optionally
//! [`Scalable`]); the framework then derives every metric from the
//! platform-reported [`ChipProfile`].
//!
//! # Example
//!
//! ```
//! use dabench_core::metrics::load_imbalance;
//! use dabench_core::TaskProfile;
//!
//! // Two tasks with equal throughput are perfectly balanced (LI = 1).
//! let tasks = vec![
//!     TaskProfile::new("a", 100.0, 10.0),
//!     TaskProfile::new("b", 100.0, 10.0),
//! ];
//! assert!((load_imbalance(&tasks).unwrap() - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod compile;
mod error;
pub mod faults;
pub mod gen;
pub mod infer;
pub mod jsonl;
pub mod lru;
pub mod metrics;
pub mod obs;
pub mod parallel;
mod platform;
mod report;
pub mod rng;
pub mod serve;
pub mod shard;
pub mod supervise;
pub mod tier1;
pub mod tier2;

pub use bench::{
    iter_plan, regressions, BenchKind, BenchRecord, BenchReport, IterPlan, Regression, Summary,
};
pub use cache::{cache_stats, tier1_cached, CacheKey, CacheStats, Memoizable};
pub use compile::{clear_compile_cache, is_incremental, set_incremental, training_graph};
pub use error::PlatformError;
pub use faults::{DeadRect, Degradable, DegradedProfile, Fault, FaultKind, FaultSet, RecoveryCost};
pub use gen::{FaultIntensity, Invariant, MemoryEdge, ModelFamily, Scenario, ScenarioKind, Tier};
pub use infer::{
    max_admissible_batch, profile_inference, AdmissionProbe, InferModel, InferenceReport,
};
pub use lru::{LruStore, StoreStats};
pub use obs::{Phase, PointTrace, Recorder};
pub use parallel::{jobs, par_map, par_map_with, set_jobs};
pub use platform::{
    ChipProfile, ComputeUnitSpec, HardwareSpec, MemoryLevelSpec, MemoryLevelUsage, MemoryScope,
    ParallelStrategy, Platform, Scalable, ScalingProfile, SectionProfile, TaskProfile,
};
pub use report::{
    batch_saturation_point, BatchPoint, BoundKind, PrecisionPoint, Tier1Report, Tier2Report,
};
pub use rng::SplitMix64;
pub use serve::{JobExecutor, ServeConfig, ServeSummary, Server, PROTOCOL as SERVE_PROTOCOL};
pub use shard::{
    merge_journals, plan_shards, shard_journal_name, supervise_shards, MergeResult, MergedPoint,
    ShardConfig, ShardOutcome, ShardStatus, SyntheticFailure,
};
pub use supervise::{
    abandoned_threads, catch_labeled, parse_injections, supervise_point, with_point_label,
    InjectedErrorKind, Injection, PointOutcome, Replay, RunJournal, RunReport, SupervisePolicy,
};
