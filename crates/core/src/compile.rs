//! Cached, incremental construction of training-step dataflow graphs.
//!
//! Every platform compile path used to rebuild its operator graph from
//! scratch for every sweep point, even though adjacent points in the
//! fig7/8/9/11 and `gen` sweeps share most of their graph. This module is
//! the single entry point those paths now call:
//!
//! - [`training_graph`] memoizes whole graphs per [`TrainingWorkload`]
//!   (the workload is `Eq + Hash`, playing the role the tier-1
//!   [`crate::CacheKey`] plays for profiles), and
//! - when the previous point's graph has the **same topology** (same
//!   layer count, positional encoding, and activation family — the only
//!   model knobs that change the node/edge structure), it *patches* that
//!   graph via [`DataflowGraph::with_costs`] instead of rebuilding:
//!   re-derive the per-op costs with [`ops::step_costs`] (no name
//!   rendering, no interning, no edge construction) and share the frozen
//!   topology arena behind its `Arc`.
//!
//! # Invalidation rules
//!
//! A cached graph is keyed by the full workload, so any change hits a
//! different entry. The *patch basis* (most recently built graph) is only
//! reused when the topology triple matches; hidden size, FFN width,
//! vocab, batch size, sequence length, and precision changes all patch,
//! while layer-count or model-family changes rebuild.
//!
//! # Determinism
//!
//! The rendered output of a sweep must be byte-identical at any `--jobs`,
//! under `--shards`, and across `--resume`. Two regimes keep it so:
//!
//! - **Recorder off** (plain runs): a process-global [`LruStore`] plus a
//!   last-built basis slot. Caching is invisible here because a hit
//!   returns a value bitwise equal to a rebuild (proven by the
//!   differential test layer and the `intern_props` property tests).
//! - **Recorder on** (`--metrics`/`--trace-out`): the cache lives in the
//!   *per-point* observability context instead, so the new
//!   `compile.incremental_hits`/`misses`/`patched_nodes` and
//!   `graph.interned_symbols` counters depend only on the point's own
//!   call sequence, never on sweep scheduling. This mirrors how
//!   [`crate::tier1_cached`] bypasses its global cache when the recorder
//!   is on.
//!
//! # Escape hatch
//!
//! Set `DABENCH_NO_INCREMENTAL=1` (or call [`set_incremental`]) to force
//! every call down the full rebuild path — no caching, no patching, no
//! compile counters. The differential harness runs every sweep both ways
//! and asserts byte-identical renderings.

use crate::lru::LruStore;
use crate::obs;
use dabench_graph::{DataflowGraph, GraphBuilder};
use dabench_model::ops::{self, OpCost};
use dabench_model::TrainingWorkload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-point compile cache, stored inside the observability context when
/// the recorder is on (see [`crate::obs`]).
#[derive(Debug, Default)]
pub(crate) struct CompileScratch {
    map: HashMap<TrainingWorkload, Arc<DataflowGraph>>,
    last: Option<(TrainingWorkload, Arc<DataflowGraph>)>,
}

/// Incremental-compilation switch: 0 = read `DABENCH_NO_INCREMENTAL` on
/// first use, 1 = enabled, 2 = disabled.
static INCREMENTAL: AtomicU8 = AtomicU8::new(0);

/// Whole-graph memo used when the recorder is off. Capacity covers every
/// distinct workload of the largest paper sweep with headroom.
static GRAPH_CACHE: OnceLock<LruStore<TrainingWorkload, Arc<DataflowGraph>>> = OnceLock::new();

/// Most recently *built* graph — the patch basis when the recorder is off.
static LAST_BUILT: Mutex<Option<(TrainingWorkload, Arc<DataflowGraph>)>> = Mutex::new(None);

fn graph_cache() -> &'static LruStore<TrainingWorkload, Arc<DataflowGraph>> {
    GRAPH_CACHE.get_or_init(|| LruStore::new(256))
}

/// Whether incremental compilation (memoize + diff-and-patch) is active.
/// Initialized from the `DABENCH_NO_INCREMENTAL` environment variable on
/// first call: any non-empty value other than `0` disables it.
#[must_use]
pub fn is_incremental() -> bool {
    match INCREMENTAL.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = std::env::var("DABENCH_NO_INCREMENTAL")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            INCREMENTAL.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Force incremental compilation on or off for this process, overriding
/// the environment. Tests and the differential harness use this; clears
/// the caches so the next call starts from a clean slate.
pub fn set_incremental(on: bool) {
    INCREMENTAL.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    clear_compile_cache();
}

/// Drop every cached graph and patch basis (recorder-off state only; the
/// recorder-on scratch dies with its point context). The bench harness
/// calls this between cases so cold-path timings stay cold.
pub fn clear_compile_cache() {
    graph_cache().clear();
    *LAST_BUILT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// The only model knobs that change graph *topology* (node set + edges):
/// layer count, rope presence (positional encoding), and gate presence
/// (activation family). Everything else only re-scales costs.
fn same_topology(a: &TrainingWorkload, b: &TrainingWorkload) -> bool {
    let (ma, mb) = (a.model(), b.model());
    ma.num_layers == mb.num_layers
        && ma.positional == mb.positional
        && ma.activation == mb.activation
}

/// Outcome of one graph construction, for counter attribution.
enum Built {
    /// Patched the basis: topology shared, `n` node costs changed.
    Patched(Arc<DataflowGraph>, usize),
    /// Full rebuild from records.
    Full(Arc<DataflowGraph>),
}

impl Built {
    fn graph(&self) -> Arc<DataflowGraph> {
        match self {
            Built::Patched(g, _) | Built::Full(g) => Arc::clone(g),
        }
    }
}

/// Build the graph for `w`, patching `basis` when its topology matches.
fn build_or_patch(
    w: &TrainingWorkload,
    basis: Option<&(TrainingWorkload, Arc<DataflowGraph>)>,
) -> Built {
    if let Some((bw, bg)) = basis {
        if same_topology(bw, w) {
            let costs: Vec<OpCost> = ops::step_costs(w.model(), w.batch_size(), w.seq_len());
            if costs.len() == bg.node_count() {
                let patched = costs
                    .iter()
                    .enumerate()
                    .filter(|&(i, c)| bg.op(dabench_graph::NodeId(i)).cost() != *c)
                    .count();
                return Built::Patched(Arc::new(bg.with_costs(costs)), patched);
            }
        }
    }
    Built::Full(Arc::new(GraphBuilder::for_workload(w)))
}

/// The training-step dataflow graph of `w`, built through the incremental
/// compile cache.
///
/// Hot path of every platform compile: WSE kernel extraction, RDU
/// sectioning, IPU pipeline accounting, and GPU parallelism ladders all
/// resolve their graph (and its [`dabench_graph::StepSummary`]) here. The
/// returned graph is identical — bit-for-bit in every cost — to
/// `GraphBuilder::for_workload(w)`; only the time to produce it changes.
///
/// # Example
///
/// ```
/// use dabench_core::compile::training_graph;
/// use dabench_model::{ModelConfig, Precision, TrainingWorkload};
///
/// let w = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 4, 256, Precision::Fp16);
/// let g = training_graph(&w);
/// assert!((g.summary().total_flops - w.training_flops_per_step()).abs() < 1e-3);
/// ```
#[must_use]
pub fn training_graph(w: &TrainingWorkload) -> Arc<DataflowGraph> {
    if !is_incremental() {
        return Arc::new(GraphBuilder::for_workload(w));
    }
    if obs::is_enabled() {
        return training_graph_recorded(w);
    }
    let cache = graph_cache();
    if let Some(g) = cache.get(w) {
        return g;
    }
    let basis = LAST_BUILT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let built = build_or_patch(w, basis.as_ref()).graph();
    *LAST_BUILT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((w.clone(), Arc::clone(&built)));
    cache.insert(w.clone(), Arc::clone(&built));
    built
}

/// Recorder-on path: per-point scratch plus compile counters. All scratch
/// borrows are short and never re-enter the recorder; counters fire after
/// the borrow is released.
fn training_graph_recorded(w: &TrainingWorkload) -> Arc<DataflowGraph> {
    let hit = obs::with_compile_scratch(|s| s.map.get(w).cloned());
    let Some(hit) = hit else {
        // No open point context (e.g. recorder enabled mid-call): build
        // without caching so nothing observable depends on timing.
        return Arc::new(GraphBuilder::for_workload(w));
    };
    if let Some(g) = hit {
        obs::counter("compile.incremental_hits", 1.0);
        return g;
    }
    let basis = obs::with_compile_scratch(|s| s.last.clone()).flatten();
    let built = build_or_patch(w, basis.as_ref());
    obs::counter("compile.incremental_misses", 1.0);
    match &built {
        Built::Patched(_, patched) => {
            obs::counter("compile.patched_nodes", *patched as f64);
        }
        Built::Full(g) => {
            obs::counter("graph.interned_symbols", g.interned_symbol_count() as f64);
        }
    }
    let g = built.graph();
    obs::with_compile_scratch(|s| {
        s.last = Some((w.clone(), Arc::clone(&g)));
        s.map.insert(w.clone(), Arc::clone(&g));
    });
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};
    use std::sync::Mutex as StdMutex;

    /// The incremental switch and caches are process-global.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_incremental(true);
        g
    }

    fn w(hidden: u64, layers: u64, batch: u64) -> TrainingWorkload {
        TrainingWorkload::new(
            ModelConfig::gpt2_probe(hidden, layers),
            batch,
            256,
            Precision::Fp16,
        )
    }

    #[test]
    fn cached_graph_equals_fresh_build() {
        let _g = locked();
        clear_compile_cache();
        let wl = w(768, 3, 4);
        let cached = training_graph(&wl);
        let fresh = GraphBuilder::for_workload(&wl);
        assert_eq!(cached.node_count(), fresh.node_count());
        assert_eq!(cached.edge_count(), fresh.edge_count());
        for (id, node) in fresh.iter() {
            let c = cached.op(id);
            assert_eq!(c.name(), node.name());
            assert_eq!(c.cost(), node.cost());
        }
        // Second call is a pure cache hit: same Arc.
        let again = training_graph(&wl);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn adjacent_point_patches_instead_of_rebuilding() {
        let _g = locked();
        clear_compile_cache();
        let a = training_graph(&w(768, 3, 4));
        // Batch-size delta: same topology, different costs → patched.
        let b = training_graph(&w(768, 3, 8));
        assert!(a.shares_topology(&b), "batch delta must patch");
        // The patched costs are bitwise what a fresh build produces.
        let fresh = GraphBuilder::for_workload(&w(768, 3, 8));
        for (id, node) in fresh.iter() {
            assert_eq!(b.op(id).cost(), node.cost(), "node {id}");
        }
        // Layer-count delta changes topology → full rebuild.
        let c = training_graph(&w(768, 4, 8));
        assert!(!b.shares_topology(&c));
    }

    #[test]
    fn hidden_size_delta_patches() {
        let _g = locked();
        clear_compile_cache();
        let a = training_graph(&w(768, 3, 4));
        let b = training_graph(&w(1024, 3, 4));
        assert!(a.shares_topology(&b));
        let fresh = GraphBuilder::for_workload(&w(1024, 3, 4));
        assert!((b.summary().total_flops - fresh.summary().total_flops).abs() < f64::EPSILON);
    }

    #[test]
    fn family_change_rebuilds() {
        let _g = locked();
        clear_compile_cache();
        let a = training_graph(&w(768, 2, 4));
        let llama =
            TrainingWorkload::new(ModelConfig::llama2_probe(768, 2), 4, 256, Precision::Fp16);
        let b = training_graph(&llama);
        assert!(!a.shares_topology(&b), "gated MLP adds nodes");
        let fresh = GraphBuilder::for_workload(&llama);
        assert_eq!(b.node_count(), fresh.node_count());
    }

    #[test]
    fn disabled_incremental_always_rebuilds() {
        let _g = locked();
        set_incremental(false);
        let wl = w(768, 2, 4);
        let a = training_graph(&wl);
        let b = training_graph(&wl);
        assert!(!Arc::ptr_eq(&a, &b), "no caching when disabled");
        assert!(!a.shares_topology(&b), "no patching when disabled");
        // Results are still identical.
        assert_eq!(a.node_count(), b.node_count());
        assert!((a.total_flops() - b.total_flops()).abs() < f64::EPSILON);
        set_incremental(true);
    }

    #[test]
    fn recorded_path_emits_compile_counters() {
        let _g = locked();
        clear_compile_cache();
        obs::disable();
        obs::enable();
        obs::with_point(0, "compile-counters", || {
            let a = training_graph(&w(768, 2, 4)); // full build
            let _hit = training_graph(&w(768, 2, 4)); // hit
            let b = training_graph(&w(768, 2, 8)); // patch
            assert!(a.shares_topology(&b));
        });
        let traces = obs::take();
        obs::disable();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.counter_total("compile.incremental_hits"), Some(1.0));
        assert_eq!(t.counter_total("compile.incremental_misses"), Some(2.0));
        assert!(t.counter_total("compile.patched_nodes").unwrap() > 0.0);
        assert!(t.counter_total("graph.interned_symbols").unwrap() > 10.0);
    }
}
