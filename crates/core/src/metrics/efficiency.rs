//! Resource-utilization efficiency.

use serde::{Deserialize, Serialize};

/// Achieved-vs-peak compute efficiency of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyRecord {
    /// Achieved throughput, TFLOP/s.
    pub achieved_tflops: f64,
    /// Peak throughput, TFLOP/s.
    pub peak_tflops: f64,
    /// `achieved / peak` (`0..=1` for sane inputs).
    pub efficiency: f64,
}

/// Compute efficiency `achieved / peak`, or `None` for non-positive peak.
///
/// # Example
///
/// ```
/// use dabench_core::metrics::compute_efficiency;
/// let e = compute_efficiency(330.0, 1650.0).unwrap();
/// assert!((e.efficiency - 0.2).abs() < 1e-12);
/// ```
#[must_use]
pub fn compute_efficiency(achieved_tflops: f64, peak_tflops: f64) -> Option<EfficiencyRecord> {
    if peak_tflops <= 0.0 {
        return None;
    }
    Some(EfficiencyRecord {
        achieved_tflops,
        peak_tflops,
        efficiency: achieved_tflops / peak_tflops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_achieved_over_peak() {
        let e = compute_efficiency(50.0, 200.0).unwrap();
        assert!((e.efficiency - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_peak_is_none() {
        assert!(compute_efficiency(1.0, 0.0).is_none());
    }
}
