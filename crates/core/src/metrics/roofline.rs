//! Roofline model at the global-memory level (Sec. IV-B.3 of the paper).

use crate::report::BoundKind;
use serde::{Deserialize, Serialize};

/// A roofline: peak compute throughput and global-memory bandwidth.
///
/// # Example
///
/// ```
/// use dabench_core::metrics::Roofline;
/// use dabench_core::BoundKind;
///
/// // RDU-like: 278 TFLOP/s peak, 0.2 TB/s DDR.
/// let r = Roofline::new(278.0, 0.2e12);
/// // LLM training at AI ≈ 200 FLOPs/B is deep in the memory-bound region.
/// assert_eq!(r.classify(200.0), BoundKind::MemoryBound);
/// assert!(r.attainable_tflops(200.0) < 278.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    peak_tflops: f64,
    bandwidth_bytes_per_s: f64,
}

/// One evaluated workload point under a roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label of the workload configuration.
    pub label: String,
    /// Arithmetic intensity, FLOPs/byte.
    pub intensity: f64,
    /// Achieved throughput, TFLOP/s.
    pub achieved_tflops: f64,
    /// Attainable (roof) throughput at this intensity, TFLOP/s.
    pub attainable_tflops: f64,
    /// Which roof limits this point.
    pub bound: BoundKind,
}

impl Roofline {
    /// Create a roofline from peak TFLOP/s and bandwidth in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    #[must_use]
    pub fn new(peak_tflops: f64, bandwidth_bytes_per_s: f64) -> Self {
        assert!(peak_tflops > 0.0, "peak must be positive");
        assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
        Self {
            peak_tflops,
            bandwidth_bytes_per_s,
        }
    }

    /// Peak compute throughput, TFLOP/s.
    #[must_use]
    pub fn peak_tflops(&self) -> f64 {
        self.peak_tflops
    }

    /// Global-memory bandwidth, bytes/second.
    #[must_use]
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        self.bandwidth_bytes_per_s
    }

    /// The ridge point: the arithmetic intensity (FLOPs/byte) at which the
    /// memory roof meets the compute roof.
    #[must_use]
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_tflops * 1e12 / self.bandwidth_bytes_per_s
    }

    /// Attainable throughput at arithmetic intensity `ai`, TFLOP/s:
    /// `min(peak, ai · BW)`.
    #[must_use]
    pub fn attainable_tflops(&self, ai: f64) -> f64 {
        (ai * self.bandwidth_bytes_per_s / 1e12).min(self.peak_tflops)
    }

    /// Classify an intensity as compute- or memory-bound.
    #[must_use]
    pub fn classify(&self, ai: f64) -> BoundKind {
        if ai >= self.ridge_intensity() {
            BoundKind::ComputeBound
        } else {
            BoundKind::MemoryBound
        }
    }

    /// Evaluate a labelled workload point.
    #[must_use]
    pub fn evaluate(
        &self,
        label: impl Into<String>,
        ai: f64,
        achieved_tflops: f64,
    ) -> RooflinePoint {
        RooflinePoint {
            label: label.into(),
            intensity: ai,
            achieved_tflops,
            attainable_tflops: self.attainable_tflops(ai),
            bound: self.classify(ai),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_point_divides_regions() {
        let r = Roofline::new(100.0, 1e12); // ridge at 100 FLOPs/B
        assert!((r.ridge_intensity() - 100.0).abs() < 1e-9);
        assert_eq!(r.classify(99.0), BoundKind::MemoryBound);
        assert_eq!(r.classify(101.0), BoundKind::ComputeBound);
    }

    #[test]
    fn attainable_clamps_to_peak() {
        let r = Roofline::new(100.0, 1e12);
        assert!((r.attainable_tflops(50.0) - 50.0).abs() < 1e-9);
        assert!((r.attainable_tflops(1e6) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn wse_like_roofline_is_compute_bound_for_llms() {
        // 20 PB/s on-chip bandwidth: ridge below 0.1 FLOPs/B.
        let r = Roofline::new(1650.0, 20e15);
        assert!(r.ridge_intensity() < 0.1);
        assert_eq!(r.classify(8.9), BoundKind::ComputeBound);
    }

    #[test]
    fn rdu_like_roofline_is_memory_bound_for_llms() {
        let r = Roofline::new(278.0, 0.2e12);
        assert!(r.ridge_intensity() > 1000.0);
        assert_eq!(r.classify(300.0), BoundKind::MemoryBound);
    }

    #[test]
    fn evaluate_packages_the_point() {
        let r = Roofline::new(100.0, 1e12);
        let p = r.evaluate("cfg", 10.0, 5.0);
        assert_eq!(p.bound, BoundKind::MemoryBound);
        assert!(p.achieved_tflops <= p.attainable_tflops);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Roofline::new(1.0, 0.0);
    }
}
