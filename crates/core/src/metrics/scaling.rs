//! Scaling-efficiency metrics for the Tier-2 analysis.

use serde::{Deserialize, Serialize};

/// Classic strong/weak-scaling figures derived from a baseline and a
/// scaled run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingEfficiency {
    /// Units in the scaled run (chips, replicas, pipeline stages…).
    pub units: u32,
    /// Throughput ratio over the single-unit baseline.
    pub speedup: f64,
    /// `speedup / units` (`1.0` = perfect scaling).
    pub efficiency: f64,
    /// Karp–Flatt experimentally determined serial fraction; `None` when
    /// `units == 1` (undefined) or the speedup is degenerate.
    pub serial_fraction: Option<f64>,
}

/// Compute scaling figures from a baseline throughput and a scaled
/// throughput over `units` units.
///
/// Returns `None` for non-positive inputs or `units == 0`.
///
/// # Example
///
/// ```
/// use dabench_core::metrics::scaling_efficiency;
///
/// // 4 chips, 3.2× the throughput → 80% efficiency, Karp–Flatt e ≈ 0.083.
/// let s = scaling_efficiency(100.0, 320.0, 4).unwrap();
/// assert!((s.efficiency - 0.8).abs() < 1e-12);
/// let e = s.serial_fraction.unwrap();
/// assert!((e - 0.0833).abs() < 1e-3);
/// ```
#[must_use]
pub fn scaling_efficiency(
    baseline_throughput: f64,
    scaled_throughput: f64,
    units: u32,
) -> Option<ScalingEfficiency> {
    if baseline_throughput <= 0.0 || scaled_throughput <= 0.0 || units == 0 {
        return None;
    }
    let p = f64::from(units);
    let speedup = scaled_throughput / baseline_throughput;
    let serial_fraction = if units > 1 && speedup > 1.0 {
        // Karp–Flatt: e = (1/ψ − 1/p) / (1 − 1/p).
        Some(((1.0 / speedup) - (1.0 / p)) / (1.0 - 1.0 / p))
    } else {
        None
    };
    Some(ScalingEfficiency {
        units,
        speedup,
        efficiency: speedup / p,
        serial_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scaling() {
        let s = scaling_efficiency(10.0, 80.0, 8).unwrap();
        assert!((s.speedup - 8.0).abs() < 1e-12);
        assert!((s.efficiency - 1.0).abs() < 1e-12);
        assert!(s.serial_fraction.unwrap().abs() < 1e-12);
    }

    #[test]
    fn no_scaling_means_full_serial_fraction() {
        let s = scaling_efficiency(10.0, 10.0, 8).unwrap();
        assert!((s.speedup - 1.0).abs() < 1e-12);
        // ψ = 1 → not > 1 → Karp–Flatt undefined by our convention.
        assert!(s.serial_fraction.is_none());
    }

    #[test]
    fn serial_fraction_monotone_in_inefficiency() {
        let good = scaling_efficiency(10.0, 70.0, 8).unwrap();
        let bad = scaling_efficiency(10.0, 40.0, 8).unwrap();
        assert!(bad.serial_fraction.unwrap() > good.serial_fraction.unwrap());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(scaling_efficiency(0.0, 1.0, 2).is_none());
        assert!(scaling_efficiency(1.0, -1.0, 2).is_none());
        assert!(scaling_efficiency(1.0, 1.0, 0).is_none());
    }

    #[test]
    fn single_unit_has_no_serial_fraction() {
        let s = scaling_efficiency(5.0, 5.0, 1).unwrap();
        assert!(s.serial_fraction.is_none());
        assert!((s.efficiency - 1.0).abs() < 1e-12);
    }
}
