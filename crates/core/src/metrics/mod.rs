//! The framework's standardized metrics (Sec. IV-B of the paper).

mod allocation;
mod efficiency;
mod load_balance;
mod roofline;
mod scaling;

pub use allocation::{allocation_ratio, weighted_allocation_ratio, AllocationRecord};
pub use efficiency::{compute_efficiency, EfficiencyRecord};
pub use load_balance::{load_imbalance, weighted_load_imbalance};
pub use roofline::{Roofline, RooflinePoint};
pub use scaling::{scaling_efficiency, ScalingEfficiency};
