//! Load imbalance (Eqs. 3 and 4 of the paper).

use crate::platform::TaskProfile;

/// Eq. 3: the load-imbalance metric
///
/// ```text
/// LI = (1 / Σ R_i) · Σ (T_min / T_i) · R_i
/// ```
///
/// where `T_i` is the throughput of task `i`, `T_min` the slowest task's
/// throughput, and `R_i` the resources allocated to task `i`. `LI = 1`
/// means perfectly balanced (every task matches the bottleneck rate, no
/// resources idle waiting); values near 0 mean most resources sit on tasks
/// far faster than the bottleneck.
///
/// Returns `None` when `tasks` is empty, resources sum to zero, or any
/// throughput is non-positive.
///
/// # Example
///
/// ```
/// use dabench_core::metrics::load_imbalance;
/// use dabench_core::TaskProfile;
///
/// // One task 10× faster than the other, equal resources: LI = (0.1+1)/2.
/// let tasks = vec![
///     TaskProfile::new("fast", 100.0, 1.0),
///     TaskProfile::new("slow", 10.0, 1.0),
/// ];
/// assert!((load_imbalance(&tasks).unwrap() - 0.55).abs() < 1e-12);
/// ```
#[must_use]
pub fn load_imbalance(tasks: &[TaskProfile]) -> Option<f64> {
    if tasks.is_empty() {
        return None;
    }
    let t_min = tasks
        .iter()
        .map(|t| t.throughput)
        .fold(f64::INFINITY, f64::min);
    if t_min.is_nan() || t_min <= 0.0 {
        return None;
    }
    let total_r: f64 = tasks.iter().map(|t| t.resources).sum();
    if total_r <= 0.0 {
        return None;
    }
    let acc: f64 = tasks
        .iter()
        .map(|t| (t_min / t.throughput) * t.resources)
        .sum();
    Some(acc / total_r)
}

/// Eq. 4: runtime-weighted load imbalance across sections,
///
/// ```text
/// LI_total = Σ L_i · LI_i / Σ L_i
/// ```
///
/// `sections` holds `(runtime_s, LI_i)` pairs. Returns `None` when total
/// runtime is zero.
///
/// # Example
///
/// ```
/// use dabench_core::metrics::weighted_load_imbalance;
/// let li = weighted_load_imbalance(&[(3.0, 1.0), (1.0, 0.6)]).unwrap();
/// assert!((li - 0.9).abs() < 1e-12);
/// ```
#[must_use]
pub fn weighted_load_imbalance(sections: &[(f64, f64)]) -> Option<f64> {
    let total: f64 = sections.iter().map(|&(l, _)| l).sum();
    if total <= 0.0 {
        return None;
    }
    Some(sections.iter().map(|&(l, li)| l * li).sum::<f64>() / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(tp: f64, r: f64) -> TaskProfile {
        TaskProfile::new("t", tp, r)
    }

    #[test]
    fn perfectly_balanced_is_one() {
        let tasks = vec![task(5.0, 2.0), task(5.0, 8.0), task(5.0, 1.0)];
        assert!((load_imbalance(&tasks).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn li_bounded_between_zero_and_one() {
        let tasks = vec![task(1000.0, 1.0), task(1.0, 1.0)];
        let li = load_imbalance(&tasks).unwrap();
        assert!(li > 0.0 && li <= 1.0);
    }

    #[test]
    fn resources_weight_the_imbalance() {
        // Put nearly all resources on the slow task: LI approaches 1.
        let mostly_slow = vec![task(100.0, 1.0), task(1.0, 99.0)];
        // Put nearly all resources on the fast task: LI approaches 0.
        let mostly_fast = vec![task(100.0, 99.0), task(1.0, 1.0)];
        assert!(load_imbalance(&mostly_slow).unwrap() > 0.9);
        assert!(load_imbalance(&mostly_fast).unwrap() < 0.1);
    }

    #[test]
    fn single_task_is_balanced() {
        assert!((load_imbalance(&[task(7.0, 3.0)]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(load_imbalance(&[]).is_none());
        assert!(load_imbalance(&[task(0.0, 1.0)]).is_none());
        assert!(load_imbalance(&[task(-1.0, 1.0)]).is_none());
        assert!(load_imbalance(&[task(1.0, 0.0)]).is_none());
    }

    #[test]
    fn weighted_li_mixes_by_runtime() {
        let li = weighted_load_imbalance(&[(1.0, 0.2), (1.0, 0.8)]).unwrap();
        assert!((li - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_li_empty_is_none() {
        assert!(weighted_load_imbalance(&[]).is_none());
    }
}
