//! Resource allocation ratio (Eqs. 1 and 2 of the paper).

use serde::{Deserialize, Serialize};

/// One resource-allocation observation: how many units of a kind a
/// workload (or a section) occupies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationRecord {
    /// Resource kind, e.g. `"pe"`, `"pcu"`.
    pub kind: String,
    /// Units used by the workload (`R_used` / `R_i`).
    pub used: u64,
    /// Units available on the chip (`R_all`).
    pub available: u64,
}

impl AllocationRecord {
    /// Create a record.
    #[must_use]
    pub fn new(kind: impl Into<String>, used: u64, available: u64) -> Self {
        Self {
            kind: kind.into(),
            used,
            available,
        }
    }
}

/// Eq. 1: the plain allocation ratio `U = R_used / R_all`.
///
/// Returns `None` when `available` is zero.
///
/// # Example
///
/// ```
/// use dabench_core::metrics::allocation_ratio;
/// assert_eq!(allocation_ratio(780, 1000), Some(0.78));
/// assert_eq!(allocation_ratio(1, 0), None);
/// ```
#[must_use]
pub fn allocation_ratio(used: u64, available: u64) -> Option<f64> {
    (available > 0).then(|| used as f64 / available as f64)
}

/// Eq. 2: runtime-weighted allocation ratio across sections,
///
/// ```text
/// U = Σ L_i · (R_i / R_all)  /  Σ L_i
/// ```
///
/// `sections` holds `(runtime_s, used, available)` triples. Returns `None`
/// when the total runtime is zero or any `available` is zero.
///
/// # Example
///
/// ```
/// use dabench_core::metrics::weighted_allocation_ratio;
/// // A long section at 50% and a short one at 100%.
/// let u = weighted_allocation_ratio(&[(9.0, 50, 100), (1.0, 100, 100)]).unwrap();
/// assert!((u - 0.55).abs() < 1e-12);
/// ```
#[must_use]
pub fn weighted_allocation_ratio(sections: &[(f64, u64, u64)]) -> Option<f64> {
    let total_runtime: f64 = sections.iter().map(|&(l, _, _)| l).sum();
    if total_runtime <= 0.0 {
        return None;
    }
    let mut acc = 0.0;
    for &(runtime, used, available) in sections {
        let ratio = allocation_ratio(used, available)?;
        acc += runtime * ratio;
    }
    Some(acc / total_runtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ratio() {
        assert_eq!(allocation_ratio(25, 100), Some(0.25));
        assert_eq!(allocation_ratio(0, 100), Some(0.0));
        assert_eq!(allocation_ratio(100, 100), Some(1.0));
    }

    #[test]
    fn zero_available_is_none() {
        assert_eq!(allocation_ratio(10, 0), None);
    }

    #[test]
    fn weighted_single_section_equals_plain() {
        let w = weighted_allocation_ratio(&[(2.5, 30, 60)]).unwrap();
        assert!((w - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_zero_runtime_is_none() {
        assert_eq!(weighted_allocation_ratio(&[(0.0, 1, 2)]), None);
        assert_eq!(weighted_allocation_ratio(&[]), None);
    }

    #[test]
    fn weights_dominate_long_sections() {
        // 99% of the time at 10% allocation barely moved by a brief spike.
        let u = weighted_allocation_ratio(&[(99.0, 10, 100), (1.0, 100, 100)]).unwrap();
        assert!((u - 0.109).abs() < 1e-9);
    }

    #[test]
    fn weighted_propagates_bad_available() {
        assert_eq!(weighted_allocation_ratio(&[(1.0, 5, 0)]), None);
    }

    #[test]
    fn record_constructor() {
        let r = AllocationRecord::new("pe", 3, 4);
        assert_eq!(r.kind, "pe");
        assert_eq!((r.used, r.available), (3, 4));
    }
}
