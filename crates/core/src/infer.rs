//! Platform-agnostic autoregressive inference profiling.
//!
//! Training throughput (Tier 1/2) measures one optimizer step; serving an
//! LLM instead runs a *prefill* pass over the prompt followed by a long
//! chain of single-token *decode* steps that stream the growing KV cache
//! from memory. The two phases sit on opposite ends of the roofline —
//! prefill is dense-GEMM compute, decode is bandwidth at an arithmetic
//! intensity near the batch size — so a chip's serving profile is not
//! derivable from its training numbers.
//!
//! [`profile_inference`] takes an [`InferModel`] (how a platform feeds its
//! inference engine: sustained compute, the memory level holding weights +
//! KV cache, and the bandwidth between that level and the compute units)
//! plus an [`InferenceWorkload`], checks the KV cache fits, and derives
//! TTFT, decode throughput, and end-to-end tokens/s for both static and
//! continuous batching.

use crate::error::PlatformError;
use crate::metrics::Roofline;
use crate::obs;
use crate::platform::MemoryLevelUsage;
use crate::report::BoundKind;
use dabench_model::{BatchingMode, InferenceWorkload, PhaseCost};
use serde::{Deserialize, Serialize};

/// How a platform serves autoregressive inference: the compute rate it
/// sustains on transformer GEMMs, and the memory level that must hold the
/// weights plus the KV cache together with the bandwidth draining it.
///
/// Platform crates build one of these from their chip spec (e.g. WSE maps
/// the KV cache to wafer SRAM at fabric bandwidth; the RDU maps it to DDR).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferModel {
    /// Platform name (e.g. `"wse"`).
    pub platform: String,
    /// Peak dense compute at the serving precision, TFLOP/s.
    pub peak_tflops: f64,
    /// Fraction of peak sustained on transformer GEMMs (prefill and the
    /// per-token matmuls of decode).
    pub sustained_efficiency: f64,
    /// Bandwidth between the KV/weight level and the compute units, B/s.
    pub mem_bw_bytes_per_s: f64,
    /// Name of the memory level holding weights + KV cache.
    pub kv_level: String,
    /// Capacity of that level, bytes.
    pub kv_capacity_bytes: u64,
    /// Fixed overhead per kernel launch / decode step, seconds.
    pub step_overhead_s: f64,
}

/// Derived serving profile of one workload on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Platform name, copied from the [`InferModel`].
    pub platform: String,
    /// Batching mode the report was derived under.
    pub batching: BatchingMode,
    /// Time to first token, seconds. Under static batching this is the
    /// full-batch prefill; under continuous batching a new request only
    /// waits on its own prompt.
    pub ttft_s: f64,
    /// Full-batch prefill time, seconds.
    pub prefill_s: f64,
    /// Time to decode all `decode_len` tokens for the whole batch, seconds.
    pub decode_s: f64,
    /// Steady-state decode throughput, tokens/second (whole batch).
    pub decode_tokens_per_s: f64,
    /// Generated tokens per second of wall clock. Static batching pays the
    /// prefill inline; continuous batching overlaps prefill of incoming
    /// requests with decode of resident ones, so only decode bounds it.
    pub e2e_tokens_per_s: f64,
    /// Occupancy of the KV level: weights + peak KV cache against capacity.
    pub memory: MemoryLevelUsage,
    /// Peak KV-cache footprint alone, bytes.
    pub kv_cache_bytes: u64,
    /// Roofline classification of the prefill phase.
    pub prefill_bound: BoundKind,
    /// Roofline classification of the decode phase.
    pub decode_bound: BoundKind,
}

/// Time to execute one phase: the slower of its compute and its memory
/// traffic through the KV level, plus fixed overhead per launch.
fn phase_time(m: &InferModel, cost: &PhaseCost, launches: u64) -> f64 {
    let compute = cost.flops / (m.peak_tflops * 1e12 * m.sustained_efficiency);
    let memory = cost.total_bytes() / m.mem_bw_bytes_per_s;
    compute.max(memory) + launches as f64 * m.step_overhead_s
}

/// Profile `workload` on a platform described by `model`.
///
/// # Errors
///
/// [`PlatformError::OutOfMemory`] when the weights plus the peak KV cache
/// exceed the KV level's capacity.
pub fn profile_inference(
    model: &InferModel,
    workload: &InferenceWorkload,
) -> Result<InferenceReport, PlatformError> {
    obs::span(obs::Phase::Infer, "infer.profile", || {
        profile_inner(model, workload)
    })
}

fn profile_inner(
    model: &InferModel,
    workload: &InferenceWorkload,
) -> Result<InferenceReport, PlatformError> {
    let kv_bytes = workload.kv_cache_peak_bytes();
    let required = workload.weight_bytes().saturating_add(kv_bytes);
    if required > model.kv_capacity_bytes {
        return Err(PlatformError::OutOfMemory {
            level: model.kv_level.clone(),
            required_bytes: required,
            capacity_bytes: model.kv_capacity_bytes,
        });
    }

    let roofline = Roofline::new(model.peak_tflops, model.mem_bw_bytes_per_s);
    let prefill = workload.prefill_cost();
    let decode = workload.decode_cost();

    let prefill_s = obs::span(obs::Phase::Infer, "infer.prefill", || {
        phase_time(model, &prefill, 1)
    });
    let decode_s = obs::span(obs::Phase::Infer, "infer.decode", || {
        phase_time(model, &decode, workload.decode_len())
    });

    // Under continuous batching a new request's first token waits only on
    // its own prompt — the scheduler folds its prefill into slack left by
    // the (memory-bound) decode of resident sequences.
    let ttft_s = match workload.batching() {
        BatchingMode::Static => prefill_s,
        BatchingMode::Continuous => {
            let solo = workload
                .with_batch_size(1)
                .expect("batch 1 is within any validated workload's bounds");
            phase_time(model, &solo.prefill_cost(), 1)
        }
    };

    let generated = (workload.batch_size() * workload.decode_len()) as f64;
    let decode_tokens_per_s = generated / decode_s;
    let e2e_tokens_per_s = match workload.batching() {
        BatchingMode::Static => generated / (prefill_s + decode_s),
        BatchingMode::Continuous => decode_tokens_per_s,
    };

    obs::counter("infer.kv_cache_bytes", kv_bytes as f64);
    obs::counter("infer.generated_tokens", generated);

    Ok(InferenceReport {
        platform: model.platform.clone(),
        batching: workload.batching(),
        ttft_s,
        prefill_s,
        decode_s,
        decode_tokens_per_s,
        e2e_tokens_per_s,
        memory: MemoryLevelUsage {
            name: model.kv_level.clone(),
            used_bytes: required,
            capacity_bytes: model.kv_capacity_bytes,
        },
        kv_cache_bytes: kv_bytes,
        prefill_bound: roofline.classify(prefill.intensity),
        decode_bound: roofline.classify(decode.intensity),
    })
}

/// One platform's admission wall for a serving workload shape, as probed
/// by [`max_admissible_batch`]: the largest batch the platform admits,
/// plus the evidence for why the next size is rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionProbe {
    /// Largest admitted batch size (0 when even batch 1 OOMs).
    pub max_batch: u64,
    /// Memory level the first rejected size was checked against.
    pub kv_level: String,
    /// Bytes required at `max_batch + 1` — the first rejected size
    /// (`u64::MAX` when that size overflows workload validation).
    pub over_required_bytes: u64,
    /// Capacity the rejected size was checked against.
    pub over_capacity_bytes: u64,
}

/// Probe the admission wall of `workload`'s shape on one platform:
/// the largest batch size in `1..=limit` whose weights + peak KV cache
/// fit the platform's KV level. `model_for` maps a candidate workload to
/// the platform's [`InferModel`] — a closure rather than a fixed model
/// because some platforms (the IPU's tile-SRAM/DDR cliff) pick their
/// serving memory level per workload.
///
/// Admission is assumed monotone in batch (required bytes grow with
/// batch; a level switch only ever lands in a larger level), which the
/// binary search exploits. The `dabench gen` invariant checker
/// cross-validates this assumption against a linear batch ladder
/// ([`crate::gen::Invariant::OomWallConsistent`]).
#[must_use]
pub fn max_admissible_batch<F>(
    workload: &InferenceWorkload,
    limit: u64,
    mut model_for: F,
) -> AdmissionProbe
where
    F: FnMut(&InferenceWorkload) -> InferModel,
{
    // Mirrors `profile_inference`'s admission check exactly: weights +
    // peak KV cache against the KV level's capacity.
    let mut probe = |b: u64| match workload.with_batch_size(b) {
        Ok(w) => {
            let m = model_for(&w);
            let required = w.weight_bytes().saturating_add(w.kv_cache_peak_bytes());
            (required <= m.kv_capacity_bytes, Some((m, required)))
        }
        Err(_) => (false, None),
    };
    let limit = limit.max(1);
    // Invariant: `lo` fits (0 is the vacuous sentinel), `hi` does not
    // (limit + 1 is treated as beyond the caller's cap).
    let (mut lo, mut hi) = (0_u64, limit + 1);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid).0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (_, over) = probe(lo + 1);
    let (kv_level, over_required_bytes, over_capacity_bytes) = match over {
        Some((m, required)) => (m.kv_level, required, m.kv_capacity_bytes),
        None => {
            let m = model_for(workload);
            (m.kv_level, u64::MAX, m.kv_capacity_bytes)
        }
    };
    AdmissionProbe {
        max_batch: lo,
        kv_level,
        over_required_bytes,
        over_capacity_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabench_model::{ModelConfig, Precision};

    fn gpu_like() -> InferModel {
        InferModel {
            platform: "gpu".into(),
            peak_tflops: 312.0,
            sustained_efficiency: 0.45,
            mem_bw_bytes_per_s: 2.0e12,
            kv_level: "hbm".into(),
            kv_capacity_bytes: 80 * 1024 * 1024 * 1024,
            step_overhead_s: 20e-6,
        }
    }

    fn workload(batch: u64) -> InferenceWorkload {
        InferenceWorkload::new(ModelConfig::llama2_7b(), batch, 512, 128, Precision::Fp16).unwrap()
    }

    #[test]
    fn prefill_is_compute_bound_decode_is_memory_bound() {
        let r = profile_inference(&gpu_like(), &workload(8)).unwrap();
        assert_eq!(r.prefill_bound, BoundKind::ComputeBound);
        assert_eq!(r.decode_bound, BoundKind::MemoryBound);
    }

    #[test]
    fn decode_dominates_end_to_end_time() {
        let r = profile_inference(&gpu_like(), &workload(8)).unwrap();
        assert!(
            r.decode_s > r.prefill_s,
            "{} !> {}",
            r.decode_s,
            r.prefill_s
        );
        assert!(r.e2e_tokens_per_s < r.decode_tokens_per_s);
    }

    #[test]
    fn batching_raises_decode_throughput() {
        let t1 = profile_inference(&gpu_like(), &workload(1))
            .unwrap()
            .decode_tokens_per_s;
        let t16 = profile_inference(&gpu_like(), &workload(16))
            .unwrap()
            .decode_tokens_per_s;
        // Decode is memory-bound on streaming the (shared) weights, so
        // batching amortizes them: strongly sublinear but well above 1×.
        assert!(t16 / t1 > 4.0, "{}", t16 / t1);
        assert!(t16 / t1 < 16.0, "{}", t16 / t1);
    }

    #[test]
    fn continuous_batching_cuts_ttft_and_lifts_e2e() {
        let w = workload(16);
        let stat = profile_inference(&gpu_like(), &w).unwrap();
        let cont = profile_inference(
            &gpu_like(),
            &w.clone().with_batching(BatchingMode::Continuous),
        )
        .unwrap();
        assert!(
            cont.ttft_s < stat.ttft_s,
            "{} !< {}",
            cont.ttft_s,
            stat.ttft_s
        );
        assert!(cont.e2e_tokens_per_s > stat.e2e_tokens_per_s);
        // Steady-state decode itself is batching-mode independent.
        assert!((cont.decode_tokens_per_s - stat.decode_tokens_per_s).abs() < 1e-9);
    }

    #[test]
    fn kv_overflow_is_a_structured_oom() {
        let mut tiny = gpu_like();
        tiny.kv_capacity_bytes = 1024 * 1024 * 1024; // 1 GiB: weights alone overflow
        let err = profile_inference(&tiny, &workload(8)).unwrap_err();
        match err {
            PlatformError::OutOfMemory {
                level,
                required_bytes,
                capacity_bytes,
            } => {
                assert_eq!(level, "hbm");
                assert!(required_bytes > capacity_bytes);
            }
            other => panic!("expected OutOfMemory, got {other}"),
        }
    }

    #[test]
    fn fp8_kv_fits_where_fp16_overflows() {
        let mut m = gpu_like();
        let w16 = workload(64);
        // Capacity just below the fp16 requirement but above the fp8 one.
        let need16 = w16.weight_bytes() + w16.kv_cache_peak_bytes();
        m.kv_capacity_bytes = need16 - 1;
        assert!(profile_inference(&m, &w16).is_err());
        let w8 = w16.with_kv_precision(Precision::Fp8);
        assert!(profile_inference(&m, &w8).is_ok());
    }

    #[test]
    fn admission_probe_finds_the_exact_wall() {
        let m = gpu_like();
        let probe = max_admissible_batch(&workload(1), 4096, |_| m.clone());
        assert!(probe.max_batch >= 1, "a 7B model fits an 80 GiB level");
        // The wall is exact: max_batch fits, max_batch + 1 does not.
        let fits = profile_inference(
            &m,
            &workload(probe.max_batch).with_batching(BatchingMode::Static),
        );
        assert!(fits.is_ok());
        let over = profile_inference(&m, &workload(probe.max_batch + 1));
        assert!(matches!(over, Err(PlatformError::OutOfMemory { .. })));
        assert_eq!(probe.kv_level, "hbm");
        assert!(probe.over_required_bytes > probe.over_capacity_bytes);
    }

    #[test]
    fn admission_probe_reports_zero_when_weights_overflow() {
        let mut tiny = gpu_like();
        tiny.kv_capacity_bytes = 1024; // nothing fits
        let probe = max_admissible_batch(&workload(1), 64, |_| tiny.clone());
        assert_eq!(probe.max_batch, 0);
        assert!(probe.over_required_bytes > probe.over_capacity_bytes);
    }

    #[test]
    fn memory_usage_reports_weights_plus_kv() {
        let w = workload(8);
        let r = profile_inference(&gpu_like(), &w).unwrap();
        assert_eq!(
            r.memory.used_bytes,
            w.weight_bytes() + w.kv_cache_peak_bytes()
        );
        assert_eq!(r.kv_cache_bytes, w.kv_cache_peak_bytes());
        assert!(r.memory.utilization() > 0.0 && r.memory.utilization() < 1.0);
    }
}
