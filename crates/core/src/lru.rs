//! Shared, size-bounded, concurrency-safe LRU result store.
//!
//! The Tier-1 memo cache ([`crate::cache`]) and the benchmark daemon's
//! response store ([`crate::serve`]) both need the same thing: a bounded
//! map that many `par_map` workers and connection threads can hit
//! concurrently, that never grows past its capacity (a daemon serving
//! millions of identical requests must not trade a recompute for an OOM),
//! and whose hit/miss/eviction counters are exact — they feed admission
//! decisions, the `stats` protocol op, and the [`crate::obs`] bus.
//!
//! Recency is tracked with a monotonic use-tick per entry; eviction scans
//! for the least-recently-used entry. The scan is `O(len)`, which is
//! deliberate: capacities here are thousands at most, the scan touches no
//! allocation, and the simplicity keeps the store's invariants (bounded
//! length, exact counters) easy to verify — the contention property test
//! in `crates/core/tests/lru_contention.rs` hammers exactly those.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

/// Exact operation counters of an [`LruStore`], taken under the lock so
/// the totals are a consistent snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored (new keys and replacements alike).
    pub inserts: u64,
    /// Entries displaced to keep the store within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

/// A size-bounded, concurrency-safe LRU map.
///
/// All operations take `&self`; interior locking makes the store shareable
/// across threads without wrapper mutexes. `get` refreshes recency;
/// `insert` past capacity evicts the least-recently-used entry.
pub struct LruStore<K, V> {
    capacity: usize,
    inner: Mutex<Inner<K, V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruStore<K, V> {
    /// A store holding at most `capacity` entries (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                inserts: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, refreshing its recency on a hit. Returns a clone so
    /// the lock is never held while the caller uses the value.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock().expect("lru lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Store `value` under `key`, evicting the least-recently-used entry
    /// if the store is at capacity and `key` is new. Returns `true` if an
    /// entry was evicted.
    pub fn insert(&self, key: K, value: V) -> bool {
        let mut inner = self.inner.lock().expect("lru lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.inserts += 1;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return false;
        }
        let mut evicted = false;
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.evictions += 1;
                evicted = true;
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        evicted
    }

    /// Whether `key` is resident, without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().expect("lru lock").map.contains_key(key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("lru lock").map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters keep running).
    pub fn clear(&self) {
        self.inner.lock().expect("lru lock").map.clear();
    }

    /// Consistent snapshot of the operation counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("lru lock");
        StoreStats {
            hits: inner.hits,
            misses: inner.misses,
            inserts: inner.inserts,
            evictions: inner.evictions,
            len: inner.map.len(),
        }
    }

    /// Publish the counter totals to the [`crate::obs`] bus as
    /// `<prefix>.hits` / `.misses` / `.inserts` / `.evictions` /
    /// `.resident`. No-op when the recorder is disabled or no point
    /// context is open (see `docs/observability.md`).
    pub fn publish_obs(&self, prefix: &str) {
        let stats = self.stats();
        crate::obs::counter(&format!("{prefix}.hits"), stats.hits as f64);
        crate::obs::counter(&format!("{prefix}.misses"), stats.misses as f64);
        crate::obs::counter(&format!("{prefix}.inserts"), stats.inserts as f64);
        crate::obs::counter(&format!("{prefix}.evictions"), stats.evictions as f64);
        crate::obs::counter(&format!("{prefix}.resident"), stats.len as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_hits_after_insert_and_counts() {
        let store: LruStore<u32, String> = LruStore::new(4);
        assert_eq!(store.get(&1), None);
        store.insert(1, "one".into());
        assert_eq!(store.get(&1).as_deref(), Some("one"));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (1, 1, 1, 0));
        assert_eq!(s.len, 1);
    }

    #[test]
    fn capacity_is_a_hard_bound_and_lru_order_decides_eviction() {
        let store: LruStore<u32, u32> = LruStore::new(2);
        store.insert(1, 10);
        store.insert(2, 20);
        // Touch 1 so 2 becomes the least recently used.
        assert_eq!(store.get(&1), Some(10));
        let evicted = store.insert(3, 30);
        assert!(evicted);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&2), None, "LRU entry 2 was evicted");
        assert_eq!(store.get(&1), Some(10));
        assert_eq!(store.get(&3), Some(30));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn replacing_an_existing_key_never_evicts() {
        let store: LruStore<u32, u32> = LruStore::new(2);
        store.insert(1, 10);
        store.insert(2, 20);
        assert!(!store.insert(1, 11), "replacement must not evict");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&1), Some(11));
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let store: LruStore<u32, u32> = LruStore::new(0);
        assert_eq!(store.capacity(), 1);
        store.insert(1, 10);
        store.insert(2, 20);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn clear_keeps_counters_running() {
        let store: LruStore<u32, u32> = LruStore::new(4);
        store.insert(1, 10);
        let _ = store.get(&1);
        store.clear();
        assert!(store.is_empty());
        let s = store.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.inserts, 1);
    }
}
