//! Seeded scenario-space generation: difficulty tiers, deterministic
//! sampling, and the metamorphic invariant catalog.
//!
//! The paper's suite is a fixed 17-artifact set, and a fixed suite
//! saturates: once every platform model passes it, new modeling bugs hide
//! in the untested corners of the workload space. This module makes the
//! benchmark *generative*: [`sample`] draws an arbitrary number of
//! scenarios from the full workload space (model family × depth/width ×
//! GQA grouping × precision incl. FP8 KV × seq-len/batch × train-vs-infer
//! × parallelism degree × fault intensity) at a named difficulty [`Tier`],
//! fully determined by `(tier, seed, index)` — so any scenario can be
//! re-derived from its label alone, by any process, in any order.
//!
//! # RNG forking discipline
//!
//! Determinism across `--jobs` and `--shards` requires that scenario `i`
//! never depends on how many draws scenario `i-1` made. Every scenario
//! therefore forks its own [`SplitMix64`] stream from `(tier, seed,
//! index)`, and *within* a scenario each aspect (kind, shape, workload
//! dimensions, precision, faults, memory edge) draws from its own
//! sub-fork. Adding a draw to one aspect can never shift the values
//! another aspect sees, so the sampled space can grow without
//! invalidating existing seeds wholesale.
//!
//! # Metamorphic invariants
//!
//! A generated population doubles as a property-testing engine for the
//! platform models: [`Invariant`] names cross-scenario properties the
//! paper's models must obey (fault monotonicity, FP8 KV strictly smaller
//! than FP16, batch monotonicity up to the admission wall, OOM-wall
//! consistency, seeded determinism). The pure comparators in this module
//! ([`check_fault_monotone`], [`check_fp8_kv`], [`check_batch_ladder`],
//! [`check_determinism`]) turn observed numbers into [`Violation`]s; the
//! `dabench gen` driver derives the twin/ladder observations and feeds
//! them through. See `docs/generation.md`.

use crate::rng::SplitMix64;
use dabench_model::{InferenceWorkload, ModelConfig, Precision, TrainingWorkload};
use std::fmt;

/// A named difficulty tier of the scenario space.
///
/// Tiers are ordered: every axis of a higher tier dominates the one
/// below — larger shapes, longer contexts, bigger batches, denser fault
/// plans. `gen_props.rs` pins the ordering as a property over sampled
/// populations (mean FLOPs and mean fault density are non-decreasing in
/// tier rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// GPT-2-small-and-below shapes, short contexts, no faults.
    Baby,
    /// GPT-2 medium/large shapes, light fault plans.
    Easy,
    /// GPT-2-XL / small-LLaMA shapes, CB16 in the mix, moderate faults.
    Medium,
    /// LLaMA-2 7B/13B shapes with GQA, long contexts, heavy faults.
    Hard,
    /// 70B-shaped GQA, adversarial fault plans (every axis at once), and
    /// memory-edge serving configs sampled just under/over each
    /// platform's admission wall.
    Cosmic,
}

impl Tier {
    /// Every tier, in difficulty order.
    pub const ALL: [Tier; 5] = [
        Tier::Baby,
        Tier::Easy,
        Tier::Medium,
        Tier::Hard,
        Tier::Cosmic,
    ];

    /// Stable lower-case name used in labels, tables and CSV.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Tier::Baby => "baby",
            Tier::Easy => "easy",
            Tier::Medium => "medium",
            Tier::Hard => "hard",
            Tier::Cosmic => "cosmic",
        }
    }

    /// 0-based difficulty rank ([`Tier::Baby`] is 0).
    #[must_use]
    pub fn rank(self) -> u64 {
        Tier::ALL.iter().position(|t| *t == self).expect("listed") as u64
    }

    /// Parse a tier name as printed by [`Tier::as_str`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Tier> {
        Tier::ALL.iter().copied().find(|t| t.as_str() == name)
    }

    /// One-line description for `dabench gen --list-tiers`.
    #[must_use]
    pub const fn describe(self) -> &'static str {
        match self {
            Tier::Baby => "GPT-2 mini..small, batch<=8, seq<=1024, no faults",
            Tier::Easy => "GPT-2 medium..large, light faults (<=2% dead fabric)",
            Tier::Medium => "GPT-2 XL / LLaMA probes, CB16, moderate faults, drops",
            Tier::Hard => "LLaMA-2 7B/13B shapes, GQA, seq<=4096, heavy faults",
            Tier::Cosmic => "70B-shaped GQA, adversarial fault plans, memory-edge configs",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether a scenario exercises the training or the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// One supervised-training optimizer step (Tier-1/faults path).
    Train,
    /// Autoregressive serving: prefill + decode (inference path).
    Infer,
}

impl ScenarioKind {
    /// Stable lower-case name.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            ScenarioKind::Train => "train",
            ScenarioKind::Infer => "infer",
        }
    }
}

/// Transformer family the scenario's architecture is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// GPT-2 style: LayerNorm, GELU, learned positions, head dim 64.
    Gpt2,
    /// LLaMA-2 style: RMSNorm, SwiGLU, RoPE, head dim 128.
    Llama2,
}

impl ModelFamily {
    /// Stable lower-case name.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            ModelFamily::Gpt2 => "gpt2",
            ModelFamily::Llama2 => "llama2",
        }
    }
}

/// Memory-edge intent of a cosmic serving scenario: resolve the batch
/// size against each platform's *own* admission wall at evaluation time,
/// landing just under (must fit) or just over (must OOM) it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryEdge {
    /// Ordinary scenario: the sampled batch is used as-is.
    Off,
    /// Evaluate at the largest admissible batch (must fit).
    Under,
    /// Evaluate one past the largest admissible batch (must OOM).
    Over,
}

impl MemoryEdge {
    /// Stable name used in records (`-` when off).
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            MemoryEdge::Off => "-",
            MemoryEdge::Under => "under",
            MemoryEdge::Over => "over",
        }
    }
}

/// Fault intensities of one scenario — the core-side mirror of the
/// `dabench-faults` `PlanSpec` (core cannot depend on the faults crate;
/// `PlanSpec::from_intensity` converts, re-validating on the way in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultIntensity {
    /// Fraction of the compute fabric permanently dead (`0..=1`).
    pub dead_fraction: f64,
    /// Surviving fraction of interconnect bandwidth (`0..=1`).
    pub link_retained: f64,
    /// Transient task stalls to inject.
    pub transient_stalls: u32,
    /// Whole devices dropped.
    pub dropped_devices: u32,
}

impl FaultIntensity {
    /// No faults at all.
    #[must_use]
    pub const fn healthy() -> Self {
        Self {
            dead_fraction: 0.0,
            link_retained: 1.0,
            transient_stalls: 0,
            dropped_devices: 0,
        }
    }

    /// Whether this intensity injects nothing.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.dead_fraction == 0.0
            && self.link_retained == 1.0
            && self.transient_stalls == 0
            && self.dropped_devices == 0
    }

    /// Scalar fault density: a single number that grows with every axis,
    /// used to pin the tier-ordering property (higher tier ⇒ denser mean
    /// fault plans).
    #[must_use]
    pub fn density(&self) -> f64 {
        self.dead_fraction
            + (1.0 - self.link_retained)
            + 0.05 * f64::from(self.transient_stalls)
            + 0.05 * f64::from(self.dropped_devices)
    }
}

/// One sampled point of the workload space. Fully determined by
/// `(tier, seed, index)` — see [`sample`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Difficulty tier this scenario was drawn at.
    pub tier: Tier,
    /// Population seed.
    pub seed: u64,
    /// Index within the population.
    pub index: u64,
    /// Train or infer.
    pub kind: ScenarioKind,
    /// Architecture family.
    pub family: ModelFamily,
    /// Hidden size.
    pub hidden: u64,
    /// Decoder layers.
    pub layers: u64,
    /// Attention heads (derived from family head-dim rules).
    pub heads: u64,
    /// KV heads (`< heads` under GQA).
    pub kv_heads: u64,
    /// Batch size (sequences per step / concurrent requests).
    pub batch: u64,
    /// Sequence length (training) or prompt length (serving), tokens.
    pub seq: u64,
    /// Tokens decoded per request (serving only, 0 for training).
    pub decode: u64,
    /// Compute precision.
    pub precision: Precision,
    /// KV-cache storage precision (serving only; equals `precision` for
    /// training scenarios).
    pub kv_precision: Precision,
    /// Parallelism degree (1 = single chip; >1 maps to each platform's
    /// native scaling strategy).
    pub parallelism: u32,
    /// Sampled fault intensities (training scenarios only; serving
    /// scenarios are always healthy).
    pub faults: FaultIntensity,
    /// Memory-edge intent (cosmic serving scenarios only).
    pub memory_edge: MemoryEdge,
}

impl Scenario {
    /// The self-describing point label: `gen:<tier>:s<seed>:i<index>`.
    /// Any process can re-derive the full scenario from it via
    /// [`parse_label`] + [`sample`] — this is what lets shard workers
    /// evaluate generated points they never saw sampled.
    #[must_use]
    pub fn label(&self) -> String {
        format_label(self.tier, self.seed, self.index)
    }

    /// Build the architecture this scenario describes.
    #[must_use]
    pub fn model(&self) -> ModelConfig {
        let name = format!(
            "{}-h{}-l{}{}",
            self.family.as_str(),
            self.hidden,
            self.layers,
            if self.kv_heads < self.heads {
                format!("-kv{}", self.kv_heads)
            } else {
                String::new()
            }
        );
        let base = match self.family {
            ModelFamily::Gpt2 => ModelConfig::gpt2_probe(self.hidden, self.layers),
            ModelFamily::Llama2 => ModelConfig::llama2_probe(self.hidden, self.layers),
        };
        ModelConfig::builder(name)
            .hidden_size(self.hidden)
            .num_layers(self.layers)
            .num_heads(self.heads)
            .num_kv_heads(self.kv_heads)
            .ffn_hidden(base.ffn_hidden)
            .vocab_size(base.vocab_size)
            .max_seq_len(base.max_seq_len.max(self.seq + self.decode))
            .normalization(base.normalization)
            .activation(base.activation)
            .positional(base.positional)
            .tied_embeddings(base.tied_embeddings)
            .build()
    }

    /// The training workload of a [`ScenarioKind::Train`] scenario.
    #[must_use]
    pub fn training_workload(&self) -> TrainingWorkload {
        TrainingWorkload::new(self.model(), self.batch, self.seq, self.precision)
    }

    /// The serving workload of a [`ScenarioKind::Infer`] scenario.
    ///
    /// # Panics
    ///
    /// Never for sampler-produced scenarios: every tier menu is within
    /// the validated dimension bounds.
    #[must_use]
    pub fn inference_workload(&self) -> InferenceWorkload {
        InferenceWorkload::new(
            self.model(),
            self.batch,
            self.seq,
            self.decode.max(1),
            self.precision,
        )
        .expect("sampler menus stay within validated workload bounds")
        .with_kv_precision(self.kv_precision)
    }

    /// Model FLOPs of the scenario (one training step, or the full
    /// prefill+decode pass). Used by the tier-ordering property: the
    /// population mean is non-decreasing in tier rank.
    #[must_use]
    pub fn flops(&self) -> f64 {
        match self.kind {
            ScenarioKind::Train => {
                crate::compile::training_graph(&self.training_workload())
                    .summary()
                    .total_flops
            }
            ScenarioKind::Infer => {
                let w = self.inference_workload();
                w.prefill_cost().flops + w.decode_cost().flops
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} h={} L={} kvh={} B={} S={} prec={}",
            self.kind.as_str(),
            self.family.as_str(),
            self.hidden,
            self.layers,
            self.kv_heads,
            self.batch,
            self.seq,
            self.precision.as_str(),
        )
    }
}

/// Format the label of scenario `(tier, seed, index)` — see
/// [`Scenario::label`].
#[must_use]
pub fn format_label(tier: Tier, seed: u64, index: u64) -> String {
    format!("gen:{}:s{seed}:i{index}", tier.as_str())
}

/// Parse a `gen:<tier>:s<seed>:i<index>` label back into its coordinates.
/// Returns `None` for anything else (including non-gen experiment names),
/// so it can act as the dispatch predicate for generated points.
#[must_use]
pub fn parse_label(label: &str) -> Option<(Tier, u64, u64)> {
    let rest = label.strip_prefix("gen:")?;
    let mut parts = rest.split(':');
    let tier = Tier::parse(parts.next()?)?;
    let seed = parts.next()?.strip_prefix('s')?.parse().ok()?;
    let index = parts.next()?.strip_prefix('i')?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((tier, seed, index))
}

/// Per-tier sampling menus. Every field of a higher tier dominates the
/// one below — that is what makes the tier-ordering property hold by
/// construction rather than by luck.
struct TierMenu {
    families: &'static [ModelFamily],
    hidden: &'static [u64],
    layers: (u64, u64),
    kv_groups: &'static [u64],
    batch: &'static [u64],
    seq: &'static [u64],
    decode: &'static [u64],
    train_precision: &'static [Precision],
    kv_precision: &'static [Precision],
    parallelism: &'static [u32],
    dead: (f64, f64),
    link: (f64, f64),
    stalls: (u32, u32),
    drops: (u32, u32),
    edge_chance: f64,
}

fn menu(tier: Tier) -> TierMenu {
    use ModelFamily::{Gpt2, Llama2};
    match tier {
        Tier::Baby => TierMenu {
            families: &[Gpt2],
            hidden: &[256, 512, 768],
            layers: (2, 12),
            kv_groups: &[1],
            batch: &[1, 2, 4, 8],
            seq: &[128, 256, 512, 1024],
            decode: &[16, 32],
            train_precision: &[Precision::Fp32, Precision::Fp16],
            kv_precision: &[Precision::Fp16],
            parallelism: &[1],
            dead: (0.0, 0.0),
            link: (1.0, 1.0),
            stalls: (0, 0),
            drops: (0, 0),
            edge_chance: 0.0,
        },
        Tier::Easy => TierMenu {
            families: &[Gpt2],
            hidden: &[768, 1024, 1280],
            layers: (8, 24),
            kv_groups: &[1],
            batch: &[4, 8, 16, 32],
            seq: &[512, 1024],
            decode: &[32, 64],
            train_precision: &[Precision::Fp16, Precision::Bf16],
            kv_precision: &[Precision::Fp16, Precision::Fp8],
            parallelism: &[1, 2],
            dead: (0.0, 0.02),
            link: (0.95, 1.0),
            stalls: (0, 1),
            drops: (0, 0),
            edge_chance: 0.0,
        },
        Tier::Medium => TierMenu {
            families: &[Gpt2, Llama2],
            hidden: &[1280, 1600, 2048],
            layers: (16, 48),
            kv_groups: &[1],
            batch: &[8, 16, 32, 64],
            seq: &[1024, 2048],
            decode: &[64, 128],
            train_precision: &[Precision::Fp16, Precision::Bf16, Precision::Cb16],
            kv_precision: &[Precision::Fp16, Precision::Fp8],
            parallelism: &[1, 2, 4],
            dead: (0.0, 0.05),
            link: (0.9, 1.0),
            stalls: (0, 2),
            drops: (0, 1),
            edge_chance: 0.0,
        },
        Tier::Hard => TierMenu {
            families: &[Llama2],
            hidden: &[4096, 5120],
            layers: (32, 60),
            kv_groups: &[1, 4],
            batch: &[16, 32, 64],
            seq: &[2048, 4096],
            decode: &[128],
            train_precision: &[Precision::Fp16, Precision::Bf16],
            kv_precision: &[Precision::Fp16, Precision::Fp8],
            parallelism: &[1, 2, 4, 8],
            dead: (0.02, 0.10),
            link: (0.8, 0.95),
            stalls: (1, 4),
            drops: (0, 2),
            edge_chance: 0.0,
        },
        Tier::Cosmic => TierMenu {
            families: &[Llama2],
            hidden: &[8192],
            layers: (64, 96),
            kv_groups: &[8],
            batch: &[32, 64, 128],
            seq: &[2048, 4096],
            decode: &[128, 256],
            train_precision: &[Precision::Fp16, Precision::Bf16],
            kv_precision: &[Precision::Fp16, Precision::Fp8],
            parallelism: &[1, 4, 8, 16],
            dead: (0.10, 0.25),
            link: (0.5, 0.8),
            stalls: (2, 6),
            drops: (1, 3),
            edge_chance: 0.5,
        },
    }
}

fn choose<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> T {
    items[rng.below(items.len() as u64) as usize]
}

fn range_u64(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.below(hi - lo + 1)
}

fn range_u32(rng: &mut SplitMix64, lo: u32, hi: u32) -> u32 {
    lo + rng.below(u64::from(hi - lo) + 1) as u32
}

/// Head count of `hidden` under a family's head-dim rule, mirroring the
/// probe constructors (head dim 64 for GPT-2, 128 for LLaMA-2).
fn heads_of(family: ModelFamily, hidden: u64) -> u64 {
    let dim = match family {
        ModelFamily::Gpt2 => 64,
        ModelFamily::Llama2 => 128,
    };
    if hidden.is_multiple_of(dim) {
        hidden / dim
    } else {
        1
    }
}

/// Deterministically sample scenario `index` of population
/// `(tier, seed)`. Same arguments ⇒ identical scenario, on any machine,
/// in any process — the whole `--jobs`/`--shards` byte-identity story
/// rests on this function being a pure function of its inputs.
#[must_use]
pub fn sample(tier: Tier, seed: u64, index: u64) -> Scenario {
    let m = menu(tier);
    // Tier-salted base stream, then one fork per scenario, then one
    // sub-fork per aspect (see the module docs on forking discipline).
    let tier_seed = SplitMix64::fork(seed, 0x7EE2_0000 + tier.rank()).next_u64();
    let scenario_seed = SplitMix64::fork(tier_seed, index).next_u64();
    let mut kind_rng = SplitMix64::fork(scenario_seed, 0);
    let mut shape = SplitMix64::fork(scenario_seed, 1);
    let mut work = SplitMix64::fork(scenario_seed, 2);
    let mut prec = SplitMix64::fork(scenario_seed, 3);
    let mut fault = SplitMix64::fork(scenario_seed, 4);
    let mut edge = SplitMix64::fork(scenario_seed, 5);

    let kind = if kind_rng.next_f64() < 0.5 {
        ScenarioKind::Train
    } else {
        ScenarioKind::Infer
    };

    let family = choose(&mut shape, m.families);
    let hidden = choose(&mut shape, m.hidden);
    let layers = range_u64(&mut shape, m.layers.0, m.layers.1);
    let heads = heads_of(family, hidden);
    // Only keep a GQA grouping the head count actually divides into.
    let group = choose(&mut shape, m.kv_groups);
    let kv_heads = if group > 1 && heads.is_multiple_of(group) {
        heads / group
    } else {
        heads
    };

    let batch = choose(&mut work, m.batch);
    let seq = choose(&mut work, m.seq);
    let decode = choose(&mut work, m.decode);
    let parallelism = match kind {
        ScenarioKind::Train => choose(&mut work, m.parallelism),
        ScenarioKind::Infer => 1,
    };

    let precision = match kind {
        ScenarioKind::Train => choose(&mut prec, m.train_precision),
        // Serving computes in FP16/BF16 on every platform; FP8 exists
        // only as KV storage.
        ScenarioKind::Infer => choose(&mut prec, &[Precision::Fp16, Precision::Bf16]),
    };
    let kv_precision = match kind {
        ScenarioKind::Train => precision,
        ScenarioKind::Infer => choose(&mut prec, m.kv_precision),
    };

    let faults = match kind {
        ScenarioKind::Infer => FaultIntensity::healthy(),
        ScenarioKind::Train => FaultIntensity {
            dead_fraction: fault.uniform(m.dead.0, m.dead.1.max(m.dead.0 + f64::EPSILON)),
            link_retained: fault.uniform(m.link.0, m.link.1.max(m.link.0 + f64::EPSILON)),
            transient_stalls: range_u32(&mut fault, m.stalls.0, m.stalls.1),
            dropped_devices: range_u32(&mut fault, m.drops.0, m.drops.1),
        },
    };
    // Degenerate uniform draws (lo == hi) must still land exactly on the
    // menu value, not lo + epsilon noise.
    let faults = if m.dead == (0.0, 0.0) && m.link == (1.0, 1.0) && kind == ScenarioKind::Train {
        FaultIntensity {
            transient_stalls: faults.transient_stalls,
            dropped_devices: faults.dropped_devices,
            ..FaultIntensity::healthy()
        }
    } else {
        faults
    };

    let memory_edge = if kind == ScenarioKind::Infer && edge.next_f64() < m.edge_chance {
        if edge.next_f64() < 0.5 {
            MemoryEdge::Under
        } else {
            MemoryEdge::Over
        }
    } else {
        MemoryEdge::Off
    };

    Scenario {
        tier,
        seed,
        index,
        kind,
        family,
        hidden,
        layers,
        heads,
        kv_heads,
        batch,
        seq,
        decode: if kind == ScenarioKind::Infer {
            decode
        } else {
            0
        },
        precision,
        kv_precision,
        parallelism,
        faults,
        memory_edge,
    }
}

/// Sample the first `count` scenarios of population `(tier, seed)`.
#[must_use]
pub fn population(tier: Tier, seed: u64, count: u64) -> Vec<Scenario> {
    (0..count).map(|i| sample(tier, seed, i)).collect()
}

// ---------------------------------------------------------------------------
// Metamorphic invariants
// ---------------------------------------------------------------------------

/// A cross-scenario property every platform model must obey. The first
/// four are checked by `dabench gen` on every generated population; the
/// last is checked both in-process (re-sample + re-evaluate) and by the
/// `gen-determinism` CI job (`--jobs`/`--shards` byte-identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Adding faults never increases training throughput.
    FaultMonotone,
    /// An FP8 KV cache is strictly smaller than an FP16 one at equal
    /// shape (and never changes weight bytes).
    Fp8KvSmaller,
    /// Serving tokens/s is monotone non-decreasing in batch size up to
    /// the admission wall, within one memory level.
    BatchMonotone,
    /// OOM walls are consistent: once a batch size OOMs, every larger
    /// batch OOMs too, and the probed admission wall itself fits while
    /// wall+1 does not.
    OomWallConsistent,
    /// The same `(tier, seed, index)` always yields the same scenario and
    /// the same evaluated record, byte for byte.
    SeedDeterminism,
}

impl Invariant {
    /// Every invariant, in catalog order.
    pub const ALL: [Invariant; 5] = [
        Invariant::FaultMonotone,
        Invariant::Fp8KvSmaller,
        Invariant::BatchMonotone,
        Invariant::OomWallConsistent,
        Invariant::SeedDeterminism,
    ];

    /// Stable snake_case name used in reports and `DABENCH_INJECT`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Invariant::FaultMonotone => "fault_monotone",
            Invariant::Fp8KvSmaller => "fp8_kv_smaller",
            Invariant::BatchMonotone => "batch_monotone",
            Invariant::OomWallConsistent => "oom_wall_consistent",
            Invariant::SeedDeterminism => "seed_determinism",
        }
    }

    /// Parse a name as printed by [`Invariant::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Invariant> {
        Invariant::ALL.iter().copied().find(|i| i.name() == name)
    }

    /// One-line description for the invariant catalog table.
    #[must_use]
    pub const fn describe(self) -> &'static str {
        match self {
            Invariant::FaultMonotone => "throughput non-increasing as faults are added",
            Invariant::Fp8KvSmaller => "fp8 KV cache strictly smaller than fp16 at equal shape",
            Invariant::BatchMonotone => "tokens/s monotone in batch until the admission wall",
            Invariant::OomWallConsistent => "OOM walls consistent across adjacent batch sizes",
            Invariant::SeedDeterminism => "same seed => byte-identical scenario and record",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed violation of an [`Invariant`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant was violated.
    pub invariant: Invariant,
    /// Label of the scenario the observation came from.
    pub scenario: String,
    /// Platform the observation came from (`-` for shape-level checks).
    pub platform: String,
    /// Human-readable evidence (the numbers that contradict).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated: {} [{} on {}]: {}",
            self.invariant.name(),
            self.scenario,
            self.platform,
            self.detail
        )
    }
}

/// Relative tolerance for throughput comparisons: the models are
/// analytic, so anything beyond f64 noise is a real violation.
const REL_EPS: f64 = 1e-9;

/// [`Invariant::FaultMonotone`]: a degraded profile must not out-run the
/// healthy one.
#[must_use]
pub fn check_fault_monotone(
    platform: &str,
    scenario: &str,
    healthy_tps: f64,
    faulty_tps: f64,
) -> Option<Violation> {
    if faulty_tps <= healthy_tps * (1.0 + REL_EPS) {
        return None;
    }
    Some(Violation {
        invariant: Invariant::FaultMonotone,
        scenario: scenario.to_owned(),
        platform: platform.to_owned(),
        detail: format!("faulted {faulty_tps:.6e} tokens/s > healthy {healthy_tps:.6e}"),
    })
}

/// [`Invariant::Fp8KvSmaller`]: at equal shape, the FP8 cache must be
/// strictly smaller than the FP16 cache, and weight bytes untouched.
#[must_use]
pub fn check_fp8_kv(
    scenario: &str,
    fp16_kv_bytes: u64,
    fp8_kv_bytes: u64,
    fp16_weight_bytes: u64,
    fp8_weight_bytes: u64,
) -> Option<Violation> {
    if fp8_kv_bytes < fp16_kv_bytes && fp16_weight_bytes == fp8_weight_bytes {
        return None;
    }
    Some(Violation {
        invariant: Invariant::Fp8KvSmaller,
        scenario: scenario.to_owned(),
        platform: "-".to_owned(),
        detail: format!(
            "fp8 kv {fp8_kv_bytes} B vs fp16 kv {fp16_kv_bytes} B \
             (weights {fp8_weight_bytes} vs {fp16_weight_bytes} B)"
        ),
    })
}

/// One rung of a batch ladder: the batch size, the memory level the
/// report landed in (`None` on OOM), and the achieved tokens/s (`None`
/// on OOM).
#[derive(Debug, Clone, PartialEq)]
pub struct LadderPoint {
    /// Batch size of this rung.
    pub batch: u64,
    /// Memory level the platform served from, `None` when the point
    /// OOMed.
    pub level: Option<String>,
    /// Achieved tokens/s, `None` when the point OOMed.
    pub tokens_per_s: Option<f64>,
}

/// [`Invariant::BatchMonotone`] + [`Invariant::OomWallConsistent`] over a
/// batch ladder (ascending batch sizes of one scenario on one platform):
/// tokens/s must be non-decreasing between adjacent rungs *served from
/// the same memory level* (a level change — e.g. the IPU's tile-SRAM/DDR
/// cliff — legitimately resets throughput), and once any rung OOMs, every
/// larger rung must OOM too.
#[must_use]
pub fn check_batch_ladder(
    platform: &str,
    scenario: &str,
    ladder: &[LadderPoint],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut oom_at: Option<u64> = None;
    for pair in ladder.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if let (Some(ta), Some(tb)) = (a.tokens_per_s, b.tokens_per_s) {
            if a.level == b.level && tb < ta * (1.0 - REL_EPS) {
                out.push(Violation {
                    invariant: Invariant::BatchMonotone,
                    scenario: scenario.to_owned(),
                    platform: platform.to_owned(),
                    detail: format!(
                        "tokens/s dropped {ta:.6e} -> {tb:.6e} going B={} -> B={} \
                         within level {}",
                        a.batch,
                        b.batch,
                        a.level.as_deref().unwrap_or("?")
                    ),
                });
            }
        }
    }
    for p in ladder {
        match (p.tokens_per_s.is_some(), oom_at) {
            (false, None) => oom_at = Some(p.batch),
            (true, Some(wall)) => out.push(Violation {
                invariant: Invariant::OomWallConsistent,
                scenario: scenario.to_owned(),
                platform: platform.to_owned(),
                detail: format!("B={} fits although B={wall} already OOMed", p.batch),
            }),
            _ => {}
        }
    }
    out
}

/// [`Invariant::SeedDeterminism`]: two derivations of the same record
/// must agree byte for byte.
#[must_use]
pub fn check_determinism(scenario: &str, first: &str, second: &str) -> Option<Violation> {
    if first == second {
        return None;
    }
    let at = first
        .bytes()
        .zip(second.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| first.len().min(second.len()));
    Some(Violation {
        invariant: Invariant::SeedDeterminism,
        scenario: scenario.to_owned(),
        platform: "-".to_owned(),
        detail: format!("re-derived record differs at byte {at}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for tier in Tier::ALL {
            let s = sample(tier, 42, 7);
            assert_eq!(parse_label(&s.label()), Some((tier, 42, 7)));
        }
        assert_eq!(parse_label("table1"), None);
        assert_eq!(parse_label("gen:warp:s1:i0"), None);
        assert_eq!(parse_label("gen:baby:s1:i0:extra"), None);
        assert_eq!(parse_label("gen:baby:1:0"), None);
    }

    #[test]
    fn tier_parse_and_rank_agree_with_all() {
        for (i, tier) in Tier::ALL.iter().enumerate() {
            assert_eq!(tier.rank(), i as u64);
            assert_eq!(Tier::parse(tier.as_str()), Some(*tier));
        }
        assert_eq!(Tier::parse("galactic"), None);
    }

    #[test]
    fn sampling_is_a_pure_function() {
        for tier in Tier::ALL {
            for i in 0..32 {
                assert_eq!(sample(tier, 9, i), sample(tier, 9, i));
            }
        }
    }

    #[test]
    fn scenarios_build_valid_models() {
        for tier in Tier::ALL {
            for s in population(tier, 3, 16) {
                let m = s.model();
                assert!(m.hidden_size.is_multiple_of(m.num_heads), "{s:?}");
                assert!(m.num_heads.is_multiple_of(m.num_kv_heads), "{s:?}");
                assert!(s.flops() > 0.0, "{s:?}");
            }
        }
    }

    #[test]
    fn baby_is_faultless_and_edge_free() {
        for s in population(Tier::Baby, 123, 64) {
            assert!(s.faults.is_healthy(), "{s:?}");
            assert_eq!(s.memory_edge, MemoryEdge::Off);
            assert_eq!(s.parallelism, 1);
        }
    }

    #[test]
    fn cosmic_trains_carry_adversarial_plans() {
        let pop = population(Tier::Cosmic, 5, 64);
        let trains: Vec<_> = pop
            .iter()
            .filter(|s| s.kind == ScenarioKind::Train)
            .collect();
        assert!(!trains.is_empty());
        for s in &trains {
            assert!(s.faults.dead_fraction >= 0.10, "{s:?}");
            assert!(s.faults.link_retained <= 0.8 + 1e-12, "{s:?}");
            assert!(s.faults.transient_stalls >= 2, "{s:?}");
            assert!(s.faults.dropped_devices >= 1, "{s:?}");
        }
        assert!(
            pop.iter().any(|s| s.memory_edge != MemoryEdge::Off),
            "cosmic should sample memory-edge scenarios"
        );
    }

    #[test]
    fn infer_scenarios_are_healthy_and_serial() {
        for tier in Tier::ALL {
            for s in population(tier, 77, 32) {
                if s.kind == ScenarioKind::Infer {
                    assert!(s.faults.is_healthy());
                    assert_eq!(s.parallelism, 1);
                    assert!(s.decode > 0);
                } else {
                    assert_eq!(s.decode, 0);
                    assert_eq!(s.memory_edge, MemoryEdge::Off);
                }
            }
        }
    }

    #[test]
    fn fault_monotone_checker_flags_counterexample() {
        assert!(check_fault_monotone("wse", "gen:baby:s1:i0", 100.0, 99.0).is_none());
        assert!(check_fault_monotone("wse", "gen:baby:s1:i0", 100.0, 100.0).is_none());
        let v = check_fault_monotone("wse", "gen:baby:s1:i0", 100.0, 101.0).expect("violation");
        assert_eq!(v.invariant, Invariant::FaultMonotone);
        assert!(v.to_string().contains("fault_monotone"), "{v}");
    }

    #[test]
    fn fp8_checker_flags_counterexamples() {
        assert!(check_fp8_kv("s", 1000, 500, 77, 77).is_none());
        assert!(
            check_fp8_kv("s", 1000, 1000, 77, 77).is_some(),
            "not strict"
        );
        assert!(
            check_fp8_kv("s", 1000, 500, 77, 78).is_some(),
            "weights moved"
        );
    }

    #[test]
    fn ladder_checker_flags_drop_and_wall_hole() {
        let lvl = |n: &str| Some(n.to_owned());
        let ok = vec![
            LadderPoint {
                batch: 1,
                level: lvl("hbm"),
                tokens_per_s: Some(10.0),
            },
            LadderPoint {
                batch: 2,
                level: lvl("hbm"),
                tokens_per_s: Some(19.0),
            },
            LadderPoint {
                batch: 4,
                level: None,
                tokens_per_s: None,
            },
            LadderPoint {
                batch: 8,
                level: None,
                tokens_per_s: None,
            },
        ];
        assert!(check_batch_ladder("gpu", "s", &ok).is_empty());

        let drop = vec![
            LadderPoint {
                batch: 1,
                level: lvl("hbm"),
                tokens_per_s: Some(10.0),
            },
            LadderPoint {
                batch: 2,
                level: lvl("hbm"),
                tokens_per_s: Some(9.0),
            },
        ];
        let v = check_batch_ladder("gpu", "s", &drop);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::BatchMonotone);

        // A throughput reset across a *level change* is legitimate (the
        // IPU tile-SRAM -> DDR cliff).
        let cliff = vec![
            LadderPoint {
                batch: 1,
                level: lvl("tile-sram"),
                tokens_per_s: Some(100.0),
            },
            LadderPoint {
                batch: 2,
                level: lvl("streaming-ddr"),
                tokens_per_s: Some(5.0),
            },
        ];
        assert!(check_batch_ladder("ipu", "s", &cliff).is_empty());

        let hole = vec![
            LadderPoint {
                batch: 1,
                level: lvl("hbm"),
                tokens_per_s: Some(10.0),
            },
            LadderPoint {
                batch: 2,
                level: None,
                tokens_per_s: None,
            },
            LadderPoint {
                batch: 4,
                level: lvl("hbm"),
                tokens_per_s: Some(40.0),
            },
        ];
        let v = check_batch_ladder("gpu", "s", &hole);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::OomWallConsistent);
    }

    #[test]
    fn determinism_checker_names_the_byte() {
        assert!(check_determinism("s", "abc", "abc").is_none());
        let v = check_determinism("s", "abc", "abd").expect("violation");
        assert_eq!(v.invariant, Invariant::SeedDeterminism);
        assert!(v.detail.contains("byte 2"), "{}", v.detail);
    }

    #[test]
    fn invariant_names_round_trip() {
        for inv in Invariant::ALL {
            assert_eq!(Invariant::parse(inv.name()), Some(inv));
            assert!(!inv.describe().is_empty());
        }
        assert_eq!(Invariant::parse("gravity"), None);
    }
}
