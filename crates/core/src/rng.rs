//! Deterministic seeded randomness shared by the framework.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, statistically
//! solid generator whose entire state is one `u64`, so any derived
//! experiment artifact is fully reproducible from its seed alone. The
//! fault planner draws concrete fault coordinates from it, and the
//! supervision layer ([`crate::supervise`]) forks per-attempt retry seeds
//! from it so retried experiment points stay deterministic.

/// A SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Derive an independent stream for sub-experiment `index`.
    #[must_use]
    pub fn fork(seed: u64, index: u64) -> Self {
        let mut base = Self::new(seed);
        let salt = base.next_u64();
        Self::new(salt ^ index.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn forks_are_independent_but_reproducible() {
        let a = SplitMix64::fork(42, 0);
        let b = SplitMix64::fork(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, SplitMix64::fork(42, 0));
    }
}
