//! The platform abstraction every chip model implements.

use crate::error::PlatformError;
use dabench_model::TrainingWorkload;
use serde::{Deserialize, Serialize};

/// Where a memory level sits relative to the compute die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryScope {
    /// On-chip SRAM distributed with the compute units ("shared" tier in
    /// the paper's GPU-style classification).
    OnChip,
    /// Off-chip DRAM ("global" tier).
    OffChip,
}

/// Static description of one memory level of a chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevelSpec {
    /// Level name, e.g. `"pe-sram"`, `"ddr"`.
    pub name: String,
    /// Scope of the level.
    pub scope: MemoryScope,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Aggregate bandwidth in bytes/second, when publicly known.
    pub bandwidth_bytes_per_s: Option<f64>,
}

/// Static description of one compute-unit population of a chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeUnitSpec {
    /// Unit kind, e.g. `"pe"`, `"pcu"`, `"pmu"`, `"tile"`.
    pub kind: String,
    /// Total number of units of this kind on the chip.
    pub count: u64,
}

/// Static hardware description of a chip, assembled from vendor data
/// sheets (Sec. II-B of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Marketing name, e.g. `"Cerebras WSE-2"`.
    pub name: String,
    /// Compute-unit populations.
    pub compute_units: Vec<ComputeUnitSpec>,
    /// Peak throughput at 16-bit precision, TFLOP/s.
    pub peak_tflops: f64,
    /// Memory hierarchy.
    pub memory_levels: Vec<MemoryLevelSpec>,
}

impl HardwareSpec {
    /// Total units of a given kind, 0 when the kind is absent.
    #[must_use]
    pub fn unit_count(&self, kind: &str) -> u64 {
        self.compute_units
            .iter()
            .find(|u| u.kind == kind)
            .map_or(0, |u| u.count)
    }

    /// Look up a memory level by name.
    #[must_use]
    pub fn memory_level(&self, name: &str) -> Option<&MemoryLevelSpec> {
        self.memory_levels.iter().find(|l| l.name == name)
    }

    /// The global-memory level used for roofline analysis: the off-chip
    /// level if present, otherwise the (unified) on-chip level.
    #[must_use]
    pub fn global_memory(&self) -> Option<&MemoryLevelSpec> {
        self.memory_levels
            .iter()
            .find(|l| l.scope == MemoryScope::OffChip)
            .or_else(|| self.memory_levels.first())
    }
}

/// Profiling record of one schedulable task (a kernel on the WSE, an
/// operator on the RDU, a pipeline stage on the IPU).
///
/// `resources` is the number of compute units allocated to the task and
/// `throughput` its per-task processing rate (any consistent unit — the
/// load-imbalance metric is scale-free).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    /// Task name.
    pub name: String,
    /// Per-task throughput (items/s in any consistent unit).
    pub throughput: f64,
    /// Compute units allocated to the task.
    pub resources: f64,
}

impl TaskProfile {
    /// Create a task profile.
    #[must_use]
    pub fn new(name: impl Into<String>, throughput: f64, resources: f64) -> Self {
        Self {
            name: name.into(),
            throughput,
            resources,
        }
    }
}

/// Profiling record of one RDU-style *section*: a subgraph executed as a
/// unit, with its runtime used as weight in Eqs. 2 and 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionProfile {
    /// Section name.
    pub name: String,
    /// Wall-clock runtime of the section in seconds (`L_i`).
    pub runtime_s: f64,
    /// Per-resource-kind usage: `(kind, used, available)`.
    pub unit_usage: Vec<(String, u64, u64)>,
    /// Per-task profiles inside the section, for operator-level LI.
    pub tasks: Vec<TaskProfile>,
}

/// Runtime usage of one memory level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevelUsage {
    /// Level name, matching a [`MemoryLevelSpec`].
    pub name: String,
    /// Bytes in use for this workload.
    pub used_bytes: u64,
    /// Bytes available.
    pub capacity_bytes: u64,
}

impl MemoryLevelUsage {
    /// Used fraction of the level (`0..=1`).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity_bytes == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.capacity_bytes as f64
        }
    }
}

/// Everything a platform reports about executing one workload on one chip.
///
/// Exactly one of `tasks` / `sections` drives the Tier-1 metrics: chips
/// that map the whole graph at once (WSE, IPU) fill `tasks` and the
/// unsectioned `unit_usage`; section-sequential chips (RDU) fill
/// `sections`, and the framework applies the paper's time-weighted
/// averaging (Eqs. 2 and 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipProfile {
    /// Per-resource-kind allocation for whole-graph mappings:
    /// `(kind, used, available)`.
    pub unit_usage: Vec<(String, u64, u64)>,
    /// Task-level profiles for whole-graph mappings.
    pub tasks: Vec<TaskProfile>,
    /// Section profiles for section-sequential execution.
    pub sections: Vec<SectionProfile>,
    /// Memory usage per level.
    pub memory: Vec<MemoryLevelUsage>,
    /// Achieved compute throughput, TFLOP/s.
    pub achieved_tflops: f64,
    /// End-to-end training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Wall-clock time of one optimizer step, seconds.
    pub step_time_s: f64,
}

impl ChipProfile {
    /// Whether the profile is section-based (RDU-style).
    #[must_use]
    pub fn is_sectioned(&self) -> bool {
        !self.sections.is_empty()
    }
}

/// A dataflow accelerator model benchmarkable by the framework.
///
/// Implementations live in `dabench-wse`, `dabench-rdu`, `dabench-ipu` and
/// `dabench-gpu`.
pub trait Platform {
    /// Platform display name, e.g. `"cerebras-wse2"`.
    fn name(&self) -> &str;

    /// Static hardware description.
    fn spec(&self) -> HardwareSpec;

    /// Compile and execute `workload` on one chip, reporting the profile
    /// the framework's Tier-1 metrics are computed from.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] when the workload cannot be mapped
    /// (out of memory, unsupported configuration, compile failure).
    fn profile(&self, workload: &TrainingWorkload) -> Result<ChipProfile, PlatformError>;
}

/// A multi-chip (or multi-region) scaling strategy, classified through the
/// classical DP/TP/PP lens of Sec. IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelStrategy {
    /// Data parallelism with `replicas` model copies (intra-chip on WSE-2).
    DataParallel {
        /// Number of model replicas.
        replicas: u32,
    },
    /// Tensor parallelism across `degree` chips (RDU).
    TensorParallel {
        /// Number of chips operators are sharded over.
        degree: u32,
    },
    /// Pipeline parallelism across `devices` chips (IPU).
    PipelineParallel {
        /// Number of devices in the pipeline.
        devices: u32,
    },
    /// Cerebras weight-streaming mode (single chip, weights streamed from
    /// external memory).
    WeightStreaming,
}

/// Result of scaling a workload with a [`ParallelStrategy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingProfile {
    /// Strategy that produced this profile.
    pub strategy: ParallelStrategy,
    /// Aggregate training throughput, tokens/second.
    pub throughput_tokens_per_s: f64,
    /// Fraction of step time spent communicating (`0..=1`).
    pub communication_fraction: f64,
    /// Per-chip (or per-replica) resource allocation ratios after scaling:
    /// `(kind, ratio)`.
    pub per_unit_allocation: Vec<(String, f64)>,
    /// Free-form per-device detail (e.g. layers per IPU).
    pub detail: Vec<(String, f64)>,
}

/// Optional extension: platforms that support multi-chip / multi-region
/// scaling implement this alongside [`Platform`].
pub trait Scalable: Platform {
    /// Execute `workload` under `strategy`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Unsupported`] when the platform cannot realize the
    /// strategy (e.g. tensor parallelism on the WSE-2).
    fn scale(
        &self,
        workload: &TrainingWorkload,
        strategy: ParallelStrategy,
    ) -> Result<ScalingProfile, PlatformError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HardwareSpec {
        HardwareSpec {
            name: "test-chip".into(),
            compute_units: vec![ComputeUnitSpec {
                kind: "pe".into(),
                count: 100,
            }],
            peak_tflops: 10.0,
            memory_levels: vec![
                MemoryLevelSpec {
                    name: "sram".into(),
                    scope: MemoryScope::OnChip,
                    capacity_bytes: 1 << 20,
                    bandwidth_bytes_per_s: Some(1e12),
                },
                MemoryLevelSpec {
                    name: "ddr".into(),
                    scope: MemoryScope::OffChip,
                    capacity_bytes: 1 << 30,
                    bandwidth_bytes_per_s: Some(2e11),
                },
            ],
        }
    }

    #[test]
    fn unit_count_lookup() {
        assert_eq!(spec().unit_count("pe"), 100);
        assert_eq!(spec().unit_count("tile"), 0);
    }

    #[test]
    fn global_memory_prefers_off_chip() {
        let s = spec();
        assert_eq!(s.global_memory().unwrap().name, "ddr");
    }

    #[test]
    fn global_memory_falls_back_to_unified() {
        let mut s = spec();
        s.memory_levels.truncate(1);
        assert_eq!(s.global_memory().unwrap().name, "sram");
    }

    #[test]
    fn memory_usage_utilization() {
        let u = MemoryLevelUsage {
            name: "sram".into(),
            used_bytes: 512,
            capacity_bytes: 1024,
        };
        assert!((u.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_utilization_is_zero() {
        let u = MemoryLevelUsage {
            name: "x".into(),
            used_bytes: 10,
            capacity_bytes: 0,
        };
        assert_eq!(u.utilization(), 0.0);
    }
}
