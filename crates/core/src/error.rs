//! Framework-wide error type.

use std::error::Error;
use std::fmt;

/// Errors reported by platform models when profiling a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The workload does not fit in some memory level — the paper's
    /// observed failure mode on the WSE-2 beyond 72 layers and the IPU at
    /// 10 layers.
    OutOfMemory {
        /// Memory level that overflowed (e.g. `"pe-sram"`).
        level: String,
        /// Bytes the workload requires at that level.
        required_bytes: u64,
        /// Bytes available at that level.
        capacity_bytes: u64,
    },
    /// The platform cannot execute this configuration (unsupported
    /// strategy, too few devices, …).
    Unsupported(String),
    /// The platform's compiler could not map the workload.
    CompileFailure(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::OutOfMemory {
                level,
                required_bytes,
                capacity_bytes,
            } => write!(
                f,
                "out of memory at level `{level}`: need {required_bytes} B, have {capacity_bytes} B"
            ),
            PlatformError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
            PlatformError::CompileFailure(msg) => write!(f, "compilation failed: {msg}"),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_level_and_sizes() {
        let e = PlatformError::OutOfMemory {
            level: "pe-sram".into(),
            required_bytes: 100,
            capacity_bytes: 50,
        };
        let s = e.to_string();
        assert!(s.contains("pe-sram"));
        assert!(s.contains("100"));
        assert!(s.contains("50"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PlatformError>();
    }
}
