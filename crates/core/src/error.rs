//! Framework-wide error type.

use std::error::Error;
use std::fmt;

/// Errors reported by platform models when profiling a workload.
///
/// Marked `#[non_exhaustive]`: future fault modes may add variants, so
/// downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// The workload does not fit in some memory level — the paper's
    /// observed failure mode on the WSE-2 beyond 72 layers and the IPU at
    /// 10 layers.
    OutOfMemory {
        /// Memory level that overflowed (e.g. `"pe-sram"`).
        level: String,
        /// Bytes the workload requires at that level.
        required_bytes: u64,
        /// Bytes available at that level.
        capacity_bytes: u64,
    },
    /// The platform cannot execute this configuration (unsupported
    /// strategy, too few devices, …).
    Unsupported(String),
    /// The platform's compiler could not map the workload.
    CompileFailure(String),
    /// A hardware unit failed and the workload cannot be remapped around
    /// it.
    DeviceFault {
        /// Failed unit population (e.g. `"pe"`, `"pcu"`, `"ipu"`).
        unit: String,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// The workload still runs after faults, but only at a fraction of
    /// healthy throughput — reported as an error when a caller demanded
    /// full performance.
    Degraded {
        /// Surviving fraction of healthy throughput, `0..=1`.
        retained_fraction: f64,
    },
}

impl PlatformError {
    /// Whether a supervisor may retry the operation that produced this
    /// error.
    ///
    /// On real clusters, compile-service hiccups and device flakes are
    /// transient — a retried point often succeeds — while out-of-memory,
    /// unsupported-configuration, and degraded-throughput errors are
    /// deterministic properties of the configuration and will recur on
    /// every attempt. The supervision layer
    /// ([`crate::supervise::supervise_point`]) consults this to decide
    /// between retry-with-backoff and immediate failure.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PlatformError::CompileFailure(_) | PlatformError::DeviceFault { .. }
        )
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::OutOfMemory {
                level,
                required_bytes,
                capacity_bytes,
            } => write!(
                f,
                "out of memory at level `{level}`: need {required_bytes} B, have {capacity_bytes} B"
            ),
            PlatformError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
            PlatformError::CompileFailure(msg) => write!(f, "compilation failed: {msg}"),
            PlatformError::DeviceFault { unit, detail } => {
                write!(f, "device fault on `{unit}`: {detail}")
            }
            PlatformError::Degraded { retained_fraction } => write!(
                f,
                "running degraded at {:.1}% of healthy throughput",
                retained_fraction * 100.0
            ),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_level_and_sizes() {
        let e = PlatformError::OutOfMemory {
            level: "pe-sram".into(),
            required_bytes: 100,
            capacity_bytes: 50,
        };
        let s = e.to_string();
        assert!(s.contains("pe-sram"));
        assert!(s.contains("100"));
        assert!(s.contains("50"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PlatformError>();
    }

    #[test]
    fn display_covers_every_variant() {
        let variants = [
            PlatformError::OutOfMemory {
                level: "ddr".into(),
                required_bytes: 2,
                capacity_bytes: 1,
            },
            PlatformError::Unsupported("no tensor parallelism".into()),
            PlatformError::CompileFailure("grid width exceeded".into()),
            PlatformError::DeviceFault {
                unit: "pcu".into(),
                detail: "tile 3 offline".into(),
            },
            PlatformError::Degraded {
                retained_fraction: 0.85,
            },
        ];
        for e in &variants {
            assert!(!e.to_string().is_empty(), "empty Display for {e:?}");
        }
    }

    #[test]
    fn device_fault_display_names_unit_and_detail() {
        let e = PlatformError::DeviceFault {
            unit: "pe".into(),
            detail: "dead rectangle 12x40".into(),
        };
        let s = e.to_string();
        assert!(s.contains("pe"));
        assert!(s.contains("dead rectangle 12x40"));
    }

    #[test]
    fn transient_faults_are_retryable_deterministic_failures_are_not() {
        assert!(PlatformError::CompileFailure("mapper flake".into()).is_retryable());
        assert!(PlatformError::DeviceFault {
            unit: "pe".into(),
            detail: "transient".into(),
        }
        .is_retryable());
        assert!(!PlatformError::OutOfMemory {
            level: "sram".into(),
            required_bytes: 2,
            capacity_bytes: 1,
        }
        .is_retryable());
        assert!(!PlatformError::Unsupported("no tp".into()).is_retryable());
        assert!(!PlatformError::Degraded {
            retained_fraction: 0.5,
        }
        .is_retryable());
    }

    #[test]
    fn degraded_display_shows_percentage() {
        let e = PlatformError::Degraded {
            retained_fraction: 0.5,
        };
        assert!(e.to_string().contains("50.0%"));
    }
}
