//! Memoization of Tier-1 profiling results.
//!
//! The experiment suite evaluates the same `(platform configuration,
//! workload)` pairs dozens of times: `dabench check` re-derives everything
//! Figs. 7–12 already computed, and the Fig. 7/8/9 sweeps share most of
//! their probe grid. Platform models are pure functions of their spec,
//! compiler parameters, and workload, so Tier-1 results can be cached
//! process-wide and returned verbatim on re-evaluation — a cache hit is
//! `PartialEq`-equal to a cold compile by construction.
//!
//! Platforms opt in through [`Memoizable`], whose only obligation is a
//! *stable configuration token*: a string that changes whenever anything
//! influencing the profile changes (hardware spec, compiler parameters,
//! compilation mode). The cache key is that token plus the workload's
//! canonical `Debug` form. Keying on the full configuration — not just the
//! platform name — keeps sensitivity sweeps (which mutate specs) safe.

use crate::error::PlatformError;
use crate::platform::Platform;
use crate::report::Tier1Report;
use crate::tier1;
use dabench_model::TrainingWorkload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Platforms whose Tier-1 results may be memoized.
///
/// Implementors must guarantee that [`Platform::profile`] is a pure
/// function of the configuration encoded in [`Memoizable::cache_token`]
/// and the workload — true for every model in this repository.
pub trait Memoizable: Platform {
    /// A stable token uniquely identifying this platform instance's full
    /// configuration: hardware spec, compiler parameters, and (where
    /// applicable) compilation mode. Two instances with equal tokens must
    /// produce identical profiles for every workload.
    fn cache_token(&self) -> String;
}

/// Hit/miss counters of the process-wide Tier-1 cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a cold profile.
    pub misses: u64,
}

type Store = Mutex<HashMap<(String, String), Result<Tier1Report, PlatformError>>>;

static CACHE: OnceLock<Store> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn store() -> &'static Store {
    CACHE.get_or_init(Store::default)
}

/// [`tier1::run`], memoized on `(cache token, workload)`.
///
/// The lock is *not* held while profiling, so concurrent [`par_map`]
/// workers never serialize on a cold cache; two workers racing on the
/// same key both compute the (identical, pure) result and the second
/// insert is a no-op in effect.
///
/// When the [`crate::obs`] recorder is enabled the cache is bypassed
/// entirely: memoization would make span/counter attribution depend on
/// which racing point happened to miss first (see `docs/observability.md`).
///
/// [`par_map`]: crate::parallel::par_map
///
/// # Errors
///
/// Propagates the platform's [`PlatformError`] exactly as [`tier1::run`]
/// does; errors are cached too (a failing configuration fails fast on
/// re-evaluation).
pub fn tier1_cached<P: Memoizable>(
    platform: &P,
    workload: &TrainingWorkload,
) -> Result<Tier1Report, PlatformError> {
    // With the recorder on, *which* point performs the cold profile (and
    // therefore records its span events) would depend on thread
    // scheduling, making traces differ across `--jobs`. Bypass the cache
    // so every point records its own complete profile deterministically.
    if crate::obs::is_enabled() {
        return tier1::run(platform, workload);
    }
    let key = (platform.cache_token(), format!("{workload:?}"));
    if let Some(cached) = store().lock().expect("cache lock").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return cached.clone();
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let result = tier1::run(platform, workload);
    store()
        .lock()
        .expect("cache lock")
        .insert(key, result.clone());
    result
}

/// Current hit/miss counters (process-wide, across all platforms).
#[must_use]
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Drop every cached result (counters are left running).
pub fn clear_tier1_cache() {
    store().lock().expect("cache lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{ChipProfile, ComputeUnitSpec, HardwareSpec, TaskProfile};
    use dabench_model::{ModelConfig, Precision};
    use std::sync::atomic::AtomicU64 as ProfileCounter;

    static PROFILES: ProfileCounter = ProfileCounter::new(0);

    struct CountingChip {
        token: String,
        tflops: f64,
    }

    impl Platform for CountingChip {
        fn name(&self) -> &str {
            "counting-chip"
        }

        fn spec(&self) -> HardwareSpec {
            HardwareSpec {
                name: "counting-chip".into(),
                compute_units: vec![ComputeUnitSpec {
                    kind: "pe".into(),
                    count: 10,
                }],
                peak_tflops: 100.0,
                memory_levels: vec![],
            }
        }

        fn profile(&self, _w: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
            PROFILES.fetch_add(1, Ordering::SeqCst);
            Ok(ChipProfile {
                unit_usage: vec![("pe".into(), 8, 10)],
                tasks: vec![TaskProfile::new("k", 1.0, 8.0)],
                sections: vec![],
                memory: vec![],
                achieved_tflops: self.tflops,
                throughput_tokens_per_s: 1.0e4,
                step_time_s: 0.5,
            })
        }
    }

    impl Memoizable for CountingChip {
        fn cache_token(&self) -> String {
            self.token.clone()
        }
    }

    fn workload(batch: u64) -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), batch, 512, Precision::Fp16)
    }

    #[test]
    fn hit_equals_cold_compile_and_skips_profiling() {
        let chip = CountingChip {
            token: "cache-test-hit".into(),
            tflops: 40.0,
        };
        let w = workload(4);
        let cold = tier1_cached(&chip, &w).unwrap();
        let direct = tier1::run(&chip, &w).unwrap();
        let profiles_before = PROFILES.load(Ordering::SeqCst);
        let hit = tier1_cached(&chip, &w).unwrap();
        assert_eq!(PROFILES.load(Ordering::SeqCst), profiles_before);
        assert_eq!(cold, hit);
        assert_eq!(cold, direct);
    }

    #[test]
    fn distinct_tokens_do_not_collide() {
        let a = CountingChip {
            token: "cache-test-a".into(),
            tflops: 10.0,
        };
        let b = CountingChip {
            token: "cache-test-b".into(),
            tflops: 20.0,
        };
        let w = workload(8);
        let ra = tier1_cached(&a, &w).unwrap();
        let rb = tier1_cached(&b, &w).unwrap();
        assert!((ra.achieved_tflops - 10.0).abs() < 1e-12);
        assert!((rb.achieved_tflops - 20.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_workloads_do_not_collide() {
        let chip = CountingChip {
            token: "cache-test-workloads".into(),
            tflops: 30.0,
        };
        let ra = tier1_cached(&chip, &workload(2)).unwrap();
        let rb = tier1_cached(&chip, &workload(16)).unwrap();
        assert_ne!(ra.workload, rb.workload);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let chip = CountingChip {
            token: "cache-test-stats".into(),
            tflops: 5.0,
        };
        let w = workload(32);
        let before = cache_stats();
        let _ = tier1_cached(&chip, &w);
        let _ = tier1_cached(&chip, &w);
        let after = cache_stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
    }
}
