//! Memoization of Tier-1 profiling results.
//!
//! The experiment suite evaluates the same `(platform configuration,
//! workload)` pairs dozens of times: `dabench check` re-derives everything
//! Figs. 7–12 already computed, and the Fig. 7/8/9 sweeps share most of
//! their probe grid. Platform models are pure functions of their spec,
//! compiler parameters, and workload, so Tier-1 results can be cached
//! process-wide and returned verbatim on re-evaluation — a cache hit is
//! `PartialEq`-equal to a cold compile by construction.
//!
//! Platforms opt in through [`Memoizable`], whose only obligation is a
//! *stable configuration token*: a string that changes whenever anything
//! influencing the profile changes (hardware spec, compiler parameters,
//! compilation mode). Keying on the full configuration — not just the
//! platform name — keeps sensitivity sweeps (which mutate specs) safe.
//!
//! # Storage
//!
//! Results live in a process-wide, size-bounded, concurrency-safe
//! [`LruStore`] ([`TIER1_CACHE_CAPACITY`] entries), shared by the CLI's
//! one-shot sweeps and the long-running `dabench serve` daemon (see
//! [`crate::serve`]); a daemon serving unbounded request streams must not
//! grow the cache without bound, so cold entries are evicted
//! least-recently-used first and [`CacheStats::evictions`] counts them.
//!
//! # Key representation
//!
//! The lookup key is `(CacheKey, TrainingWorkload)`: the configuration
//! token is folded into a 128-bit [`CacheKey`] fingerprint that platforms
//! precompute at construction (so the hot lookup path performs no string
//! formatting or allocation — see `docs/benchmarking.md` for the measured
//! effect), while the workload side uses *exact* equality via the
//! workload's derived `Eq`/`Hash`, so workload collisions are impossible
//! by construction. Token fingerprints use two independent 64-bit FNV-1a
//! streams; with the handful of platform configurations a process ever
//! constructs, a 128-bit collision is not a realistic concern.

use crate::error::PlatformError;
use crate::lru::LruStore;
use crate::platform::Platform;
use crate::report::Tier1Report;
use crate::tier1;
use dabench_model::TrainingWorkload;
use std::sync::OnceLock;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 128-bit fingerprint of a platform configuration token.
///
/// Two independent FNV-1a streams over the token bytes (the second
/// stream perturbs its offset basis and byte stream so the halves do not
/// co-vary). Equal tokens always produce equal keys; distinct tokens
/// produce distinct keys with overwhelming probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    lo: u64,
    hi: u64,
}

impl CacheKey {
    /// Fingerprint `token`. Deterministic across runs and platforms.
    #[must_use]
    pub fn of_token(token: &str) -> Self {
        let mut lo = FNV_OFFSET;
        let mut hi = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        for &b in token.as_bytes() {
            lo = (lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            hi = (hi ^ u64::from(b ^ 0x5a)).wrapping_mul(FNV_PRIME);
        }
        CacheKey { lo, hi }
    }
}

/// Platforms whose Tier-1 results may be memoized.
///
/// Implementors must guarantee that [`Platform::profile`] is a pure
/// function of the configuration encoded in [`Memoizable::cache_token`]
/// and the workload — true for every model in this repository.
pub trait Memoizable: Platform {
    /// A stable token uniquely identifying this platform instance's full
    /// configuration: hardware spec, compiler parameters, and (where
    /// applicable) compilation mode. Two instances with equal tokens must
    /// produce identical profiles for every workload.
    fn cache_token(&self) -> String;

    /// The fingerprint used as the configuration half of the cache key.
    ///
    /// The default derives it from [`Memoizable::cache_token`] on every
    /// call; platforms on the sweep hot path override this with a key
    /// precomputed at construction so lookups allocate nothing. An
    /// override must equal `CacheKey::of_token(&self.cache_token())` at
    /// all times.
    fn cache_key(&self) -> CacheKey {
        CacheKey::of_token(&self.cache_token())
    }
}

/// Hit/miss/eviction counters of the process-wide Tier-1 cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a cold profile.
    pub misses: u64,
    /// Entries displaced to keep the cache within [`TIER1_CACHE_CAPACITY`].
    pub evictions: u64,
}

/// Capacity bound of the process-wide Tier-1 cache, in entries. Large
/// enough that a full `dabench all` sweep never evicts (the paper suite
/// touches a few hundred distinct `(configuration, workload)` pairs),
/// small enough that a long-running daemon cannot grow without bound.
pub const TIER1_CACHE_CAPACITY: usize = 4096;

type Store = LruStore<(CacheKey, TrainingWorkload), Result<Tier1Report, PlatformError>>;

static CACHE: OnceLock<Store> = OnceLock::new();

fn store() -> &'static Store {
    CACHE.get_or_init(|| LruStore::new(TIER1_CACHE_CAPACITY))
}

/// [`tier1::run`], memoized on `(cache key, workload)`.
///
/// The lock is *not* held while profiling, so concurrent [`par_map`]
/// workers never serialize on a cold cache; two workers racing on the
/// same key both compute the (identical, pure) result and the second
/// insert is a no-op in effect.
///
/// When the [`crate::obs`] recorder is enabled the cache is bypassed
/// entirely: memoization would make span/counter attribution depend on
/// which racing point happened to miss first (see `docs/observability.md`).
///
/// [`par_map`]: crate::parallel::par_map
///
/// # Errors
///
/// Propagates the platform's [`PlatformError`] exactly as [`tier1::run`]
/// does; errors are cached too (a failing configuration fails fast on
/// re-evaluation).
pub fn tier1_cached<P: Memoizable>(
    platform: &P,
    workload: &TrainingWorkload,
) -> Result<Tier1Report, PlatformError> {
    // With the recorder on, *which* point performs the cold profile (and
    // therefore records its span events) would depend on thread
    // scheduling, making traces differ across `--jobs`. Bypass the cache
    // so every point records its own complete profile deterministically.
    if crate::obs::is_enabled() {
        return tier1::run(platform, workload);
    }
    let key = (platform.cache_key(), workload.clone());
    if let Some(cached) = store().get(&key) {
        return cached;
    }
    let result = tier1::run(platform, workload);
    store().insert(key, result.clone());
    result
}

/// Current hit/miss/eviction counters (process-wide, across all
/// platforms).
#[must_use]
pub fn cache_stats() -> CacheStats {
    let stats = store().stats();
    CacheStats {
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
    }
}

/// Drop every cached result (counters are left running).
pub fn clear_tier1_cache() {
    store().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{ChipProfile, ComputeUnitSpec, HardwareSpec, TaskProfile};
    use dabench_model::{ModelConfig, Precision};
    use std::sync::atomic::{AtomicU64 as ProfileCounter, Ordering};

    static PROFILES: ProfileCounter = ProfileCounter::new(0);

    struct CountingChip {
        token: String,
        tflops: f64,
    }

    impl Platform for CountingChip {
        fn name(&self) -> &str {
            "counting-chip"
        }

        fn spec(&self) -> HardwareSpec {
            HardwareSpec {
                name: "counting-chip".into(),
                compute_units: vec![ComputeUnitSpec {
                    kind: "pe".into(),
                    count: 10,
                }],
                peak_tflops: 100.0,
                memory_levels: vec![],
            }
        }

        fn profile(&self, _w: &TrainingWorkload) -> Result<ChipProfile, PlatformError> {
            PROFILES.fetch_add(1, Ordering::SeqCst);
            Ok(ChipProfile {
                unit_usage: vec![("pe".into(), 8, 10)],
                tasks: vec![TaskProfile::new("k", 1.0, 8.0)],
                sections: vec![],
                memory: vec![],
                achieved_tflops: self.tflops,
                throughput_tokens_per_s: 1.0e4,
                step_time_s: 0.5,
            })
        }
    }

    impl Memoizable for CountingChip {
        fn cache_token(&self) -> String {
            self.token.clone()
        }
    }

    fn workload(batch: u64) -> TrainingWorkload {
        TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), batch, 512, Precision::Fp16)
    }

    #[test]
    fn hit_equals_cold_compile_and_skips_profiling() {
        let chip = CountingChip {
            token: "cache-test-hit".into(),
            tflops: 40.0,
        };
        let w = workload(4);
        let cold = tier1_cached(&chip, &w).unwrap();
        let direct = tier1::run(&chip, &w).unwrap();
        let profiles_before = PROFILES.load(Ordering::SeqCst);
        let hit = tier1_cached(&chip, &w).unwrap();
        assert_eq!(PROFILES.load(Ordering::SeqCst), profiles_before);
        assert_eq!(cold, hit);
        assert_eq!(cold, direct);
    }

    #[test]
    fn distinct_tokens_do_not_collide() {
        let a = CountingChip {
            token: "cache-test-a".into(),
            tflops: 10.0,
        };
        let b = CountingChip {
            token: "cache-test-b".into(),
            tflops: 20.0,
        };
        let w = workload(8);
        let ra = tier1_cached(&a, &w).unwrap();
        let rb = tier1_cached(&b, &w).unwrap();
        assert!((ra.achieved_tflops - 10.0).abs() < 1e-12);
        assert!((rb.achieved_tflops - 20.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_workloads_do_not_collide() {
        let chip = CountingChip {
            token: "cache-test-workloads".into(),
            tflops: 30.0,
        };
        let ra = tier1_cached(&chip, &workload(2)).unwrap();
        let rb = tier1_cached(&chip, &workload(16)).unwrap();
        assert_ne!(ra.workload, rb.workload);
    }

    #[test]
    fn workloads_differing_only_in_precision_do_not_collide() {
        let chip = CountingChip {
            token: "cache-test-precision".into(),
            tflops: 30.0,
        };
        let fp16 = workload(4);
        let bf16 = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 4, 512, Precision::Bf16);
        let ra = tier1_cached(&chip, &fp16).unwrap();
        let rb = tier1_cached(&chip, &bf16).unwrap();
        assert_ne!(ra.workload, rb.workload);
        assert_eq!(ra.workload, fp16.to_string());
        assert_eq!(rb.workload, bf16.to_string());
    }

    #[test]
    fn workloads_differing_only_in_seq_len_do_not_collide() {
        let chip = CountingChip {
            token: "cache-test-seqlen".into(),
            tflops: 30.0,
        };
        let short = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 4, 512, Precision::Fp16);
        let long = TrainingWorkload::new(ModelConfig::gpt2_probe(768, 2), 4, 2048, Precision::Fp16);
        let ra = tier1_cached(&chip, &short).unwrap();
        let rb = tier1_cached(&chip, &long).unwrap();
        assert_ne!(ra.workload, rb.workload);
    }

    #[test]
    fn cache_key_is_deterministic_and_token_sensitive() {
        let a = CacheKey::of_token("wse|SpecA");
        assert_eq!(a, CacheKey::of_token("wse|SpecA"));
        assert_ne!(a, CacheKey::of_token("wse|SpecB"));
        assert_ne!(a, CacheKey::of_token("wse|SpecA "));
        assert_ne!(CacheKey::of_token(""), CacheKey::of_token("\0"));
    }

    #[test]
    fn default_cache_key_matches_token_fingerprint() {
        let chip = CountingChip {
            token: "cache-test-default-key".into(),
            tflops: 1.0,
        };
        assert_eq!(chip.cache_key(), CacheKey::of_token(&chip.cache_token()));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let chip = CountingChip {
            token: "cache-test-stats".into(),
            tflops: 5.0,
        };
        let w = workload(32);
        let before = cache_stats();
        let _ = tier1_cached(&chip, &w);
        let _ = tier1_cached(&chip, &w);
        let after = cache_stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
    }
}
